"""One front door: the unified client API over every backend.

The repository grew three front-ends -- the deterministic simulator
(:class:`~repro.cluster.SimCluster`), the sharded KV store
(:class:`~repro.kv.store.KVCluster`) and the asyncio/UDP runtime
(:class:`~repro.runtime.cluster.LiveCluster`) -- each with its own
verbs and handle types.  :mod:`repro.api` puts one vocabulary in front
of all of them::

    from repro.api import open_cluster

    with open_cluster(backend="sim", protocol="persistent", seed=7) as c:
        writer, reader = c.session(0), c.session(1)
        writer.write_sync("hello")
        assert reader.read_sync() == "hello"
        c.crash(0)
        c.recover(0)
        assert c.check(criterion="atomic").ok

Swap ``backend="sim"`` for ``"kv"`` or ``"live"`` and the same program
runs against the sharded store or real UDP sockets.  Differences are
declared through :attr:`Cluster.capabilities` -- ``virtual_time``,
``sharding``, ``crash_injection``, ``trace`` -- and anything a backend
cannot do raises :class:`~repro.common.errors.CapabilityError` instead
of silently degrading.  See ``docs/api.md`` for the full guide,
capability matrix and old-call -> new-call migration table.

The low-level constructors remain supported (the adapters here are
thin and event-free); use them when a tool needs backend-specific
surface, and :func:`as_cluster` to lift an existing low-level cluster
into the façade.
"""

from repro.api.base import (
    BACKENDS,
    BACKEND_NAMES,
    Cluster,
    Session,
    as_cluster,
    open_cluster,
)
from repro.api.kv import DEFAULT_KEY, KVBackend
from repro.api.live import LiveBackend
from repro.api.sim import SimBackend
from repro.obs.metrics import MetricsSnapshot
from repro.api.types import (
    ALL_CAPABILITIES,
    CHECK_CRITERIA,
    CHECK_METHODS,
    CRASH_INJECTION,
    SHARDING,
    STORAGE_FAULTS,
    TRACE,
    VIRTUAL_TIME,
    ClusterStats,
    OpHandle,
    Verdict,
)

__all__ = [
    "ALL_CAPABILITIES",
    "BACKENDS",
    "BACKEND_NAMES",
    "CHECK_CRITERIA",
    "CHECK_METHODS",
    "CRASH_INJECTION",
    "Cluster",
    "ClusterStats",
    "DEFAULT_KEY",
    "KVBackend",
    "LiveBackend",
    "MetricsSnapshot",
    "OpHandle",
    "SHARDING",
    "STORAGE_FAULTS",
    "Session",
    "SimBackend",
    "TRACE",
    "VIRTUAL_TIME",
    "Verdict",
    "as_cluster",
    "open_cluster",
]
