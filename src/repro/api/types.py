"""Shared vocabulary of the unified façade: capabilities, handles, verdicts.

Everything a :class:`~repro.api.base.Cluster` returns to its callers is
defined here, backend-free:

* **capability flags** -- each backend declares a frozenset of what it
  can do (:data:`VIRTUAL_TIME`, :data:`SHARDING`,
  :data:`CRASH_INJECTION`, :data:`TRACE`), so callers branch on
  *capability*, never on backend type;
* :class:`OpHandle` -- the uniform client-side handle of one submitted
  operation (``settled`` / ``result`` / ``latency`` / ``add_callback``),
  wrapping whichever native handle the backend produced;
* :class:`Verdict` -- the one merged verification outcome, absorbing
  the single-register :class:`~repro.history.checker.AtomicityVerdict`
  and the KV store's per-key report into a single shape;
* :class:`ClusterStats` -- the run-wide counters every backend can
  report (zeros where a counter does not exist, e.g. kernel events on
  the live backend).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: The backend runs on a deterministic virtual clock that the caller
#: drives explicitly (``run`` / ``run_until`` / ``now``).
VIRTUAL_TIME = "virtual_time"
#: Keys are spread over shard pipelines with per-shard batching.
SHARDING = "sharding"
#: Processes can be crashed and recovered by the caller (fault verbs).
CRASH_INJECTION = "crash_injection"
#: The backend can capture a structured event trace of the run.
TRACE = "trace"
#: Stable storage faults can be injected (corrupt / lose / slow verbs).
STORAGE_FAULTS = "storage_faults"

#: Every defined capability flag.
ALL_CAPABILITIES = frozenset(
    {VIRTUAL_TIME, SHARDING, CRASH_INJECTION, TRACE, STORAGE_FAULTS}
)

#: Consistency criteria ``Cluster.check`` accepts.  ``"atomic"`` maps
#: to the criterion the running protocol promises (transient for the
#: transient algorithm, persistent otherwise); the rest are explicit.
CHECK_CRITERIA = ("atomic", "persistent", "transient", "regular", "safe")

#: Checker methods ``Cluster.check`` accepts.  ``"auto"`` lets the
#: backend pick (exhaustive search under its cap, the near-linear
#: white-box checker beyond it; the KV backend always checks per key).
#: The hyphenated spellings a :class:`Verdict` reports ("black-box",
#: "white-box") are accepted as aliases, so a reported method can be
#: passed straight back in.
CHECK_METHODS = ("auto", "blackbox", "whitebox", "per-key")


class OpHandle:
    """Uniform client-side handle of one submitted operation.

    Concrete backends subclass this around their native handle
    (:class:`~repro.sim.node.SimOperation`,
    :class:`~repro.kv.store.KVOperation`, a live future) but the caller
    only sees this surface.  ``latency`` is in the backend's own time
    base: virtual seconds on simulated backends, wall seconds on live.
    Attributes the native handle exposes beyond this surface (e.g.
    ``causal_logs`` on the simulator) remain reachable by delegation.
    """

    #: "read" or "write".
    kind: str
    #: The addressed key, or ``None`` for the anonymous register.
    key: Optional[str]
    #: The process the operation was submitted at (``None`` when the
    #: backend routed it, e.g. a KV session without a pinned pid).
    pid: Optional[int]

    @property
    def settled(self) -> bool:
        """Whether the operation finished or aborted."""
        raise NotImplementedError

    @property
    def done(self) -> bool:
        """Whether the operation completed successfully."""
        raise NotImplementedError

    @property
    def aborted(self) -> bool:
        """Whether the operation aborted (coordinator crash, failure)."""
        raise NotImplementedError

    @property
    def result(self) -> Any:
        """The read value (``None`` for writes or unsettled handles)."""
        raise NotImplementedError

    @property
    def latency(self) -> Optional[float]:
        """Submission-to-completion duration, or ``None`` if unsettled."""
        raise NotImplementedError

    def add_callback(self, callback: Callable[["OpHandle"], None]) -> None:
        """Run ``callback(handle)`` when the operation settles.

        Fires immediately if the handle already settled.  On the live
        backend the callback runs on the event-loop thread.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        state = "done" if self.done else ("aborted" if self.aborted else "pending")
        where = "" if self.key is None else f" key={self.key!r}"
        return f"{type(self).__name__}({self.kind}{where}, {state})"


@dataclass
class Verdict:
    """The merged outcome of one :meth:`~repro.api.base.Cluster.check`.

    One shape for every backend and criterion: the single-register
    checkers fill the scalar fields; the KV backend's per-key check
    additionally populates :attr:`per_key` (key -> child verdict) and
    folds the failures into :attr:`reason`.
    """

    ok: bool
    #: The criterion as requested ("atomic", "regular", ...).
    criterion: str
    #: The underlying criterion actually checked ("persistent",
    #: "transient", "regular", "safe").
    consistency: str
    #: Which checker ran: "black-box", "white-box" or "per-key".
    method: str
    #: Operations the verdict covers (for per-key checks: completed
    #: operations across all keys, matching the KV report).
    operations: int = 0
    #: Human-readable diagnostic for failures ("" when ok).
    reason: str = ""
    #: Witness linearization (black-box successes only).
    linearization: Optional[List[Any]] = None
    #: Pending operations the witness treats as absent (black-box only).
    dropped: Optional[List[Any]] = None
    #: Per-key child verdicts (per-key checks only).
    per_key: Optional[Dict[str, "Verdict"]] = None

    def __bool__(self) -> bool:
        return self.ok

    @property
    def failures(self) -> Dict[str, str]:
        """Failing keys -> diagnostics (empty for single-register checks)."""
        if not self.per_key:
            return {}
        return {
            key: child.reason
            for key, child in self.per_key.items()
            if not child.ok
        }

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"FAILED({self.reason!r})"
        keys = f", {len(self.per_key)} keys" if self.per_key is not None else ""
        return (
            f"Verdict({self.consistency}/{self.method}, "
            f"{self.operations} ops{keys}, {status})"
        )


@dataclass
class ClusterStats:
    """Run-wide counters of a cluster, uniform across backends.

    Counters a backend cannot measure stay zero (the live backend has
    no kernel, so ``kernel_events`` is 0 there); ``clock`` is virtual
    seconds on simulated backends and event-loop seconds on live.
    """

    clock: float = 0.0
    kernel_events: int = 0
    messages_sent: int = 0
    messages_dropped: int = 0
    stores_completed: int = 0
    crashes: int = 0
    recoveries: int = 0
    #: Extra backend-specific counters, by name.
    extra: Dict[str, Any] = field(default_factory=dict)
