"""The ``"kv"`` backend: the sharded key-value store behind the façade.

Adapts :class:`~repro.kv.store.KVCluster`.  Adds ``sharding`` to the
simulator's capabilities: operations address keys, keys map to shard
pipelines, and verification is per key.  Two vocabulary bridges make
keyed and keyless Session programs portable:

* an operation without a ``key`` targets :data:`DEFAULT_KEY`, so the
  anonymous-register programs of the other backends run unmodified;
* a session without a pinned ``pid`` lets the store route operations
  round-robin over the replicas (the other backends require a pid).

The adapter adds no kernel events and no randomness over the
low-level store, so seeded runs are byte-identical through either
surface.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.api.base import Cluster, Session
from repro.api.types import (
    CRASH_INJECTION,
    STORAGE_FAULTS,
    SHARDING,
    TRACE,
    VIRTUAL_TIME,
    ClusterStats,
    OpHandle,
    Verdict,
)
from repro.api.sim import (
    check_one_register,
    register_sim_metrics,
    sim_stats,
    sim_transcript,
)
from repro.common.errors import OperationAborted
from repro.history.history import History
from repro.kv.store import KVOperation, projection_check_method

#: Key an operation without an explicit ``key`` addresses -- the KV
#: backend's stand-in for the anonymous register of the other backends.
DEFAULT_KEY = "default"


class KVHandle(OpHandle):
    """Façade handle around a :class:`~repro.kv.store.KVOperation`.

    ``latency`` is submission-to-completion, queueing and batching
    delay included -- the client-side truth a service would measure.
    """

    __slots__ = ("raw", "kind", "key", "pid")

    def __init__(self, raw: KVOperation):
        self.raw = raw
        self.kind = raw.kind
        self.key = raw.key
        self.pid = raw.pid

    @property
    def settled(self) -> bool:
        return self.raw.settled

    @property
    def done(self) -> bool:
        return self.raw.done

    @property
    def aborted(self) -> bool:
        return self.raw.aborted

    @property
    def result(self) -> Any:
        return self.raw.result

    @property
    def latency(self) -> Optional[float]:
        return self.raw.latency

    @property
    def shard(self) -> int:
        """The shard pipeline the operation was routed to (kv only)."""
        return self.raw.shard

    def add_callback(self, callback: Callable[[OpHandle], None]) -> None:
        self.raw.add_callback(lambda _raw: callback(self))


class KVSession(Session):
    """A session over the store; ``pid=None`` lets the store route."""

    @property
    def ready(self) -> bool:
        # Shard pipelines queue client-side and retry across crashes,
        # so a session can always accept the next operation.
        return True

    def write(self, value: Any, key: Optional[str] = None) -> KVHandle:
        # Only None maps to the default key: an empty string must reach
        # the store's own validation, not silently alias "default".
        target = DEFAULT_KEY if key is None else key
        return self._observed(
            KVHandle(self.cluster.kv.write(target, value, pid=self.pid))
        )

    def read(self, key: Optional[str] = None) -> KVHandle:
        target = DEFAULT_KEY if key is None else key
        return self._observed(
            KVHandle(self.cluster.kv.read(target, pid=self.pid))
        )


class KVBackend(Cluster):
    """Façade adapter over :class:`~repro.kv.store.KVCluster`."""

    backend = "kv"
    capabilities = frozenset(
        {VIRTUAL_TIME, SHARDING, CRASH_INJECTION, TRACE, STORAGE_FAULTS}
    )

    def __init__(
        self,
        protocol: str = "persistent",
        num_processes: Optional[int] = None,
        seed: Optional[int] = None,
        existing: Optional[Any] = None,
        **options: Any,
    ):
        from repro.kv.store import KVCluster

        if existing is not None:
            self.kv = existing
        else:
            self.kv = KVCluster(
                protocol=protocol,
                num_processes=num_processes,
                seed=seed,
                **options,
            )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "KVBackend":
        self.kv.start()
        return self

    # -- identity ----------------------------------------------------------

    @property
    def protocol(self) -> str:
        return self.kv.protocol_name

    @property
    def num_processes(self) -> int:
        return self.kv.config.num_processes

    @property
    def seed(self) -> Optional[int]:
        return self.kv.config.seed

    @property
    def num_shards(self) -> int:
        return self.kv.num_shards

    @property
    def sim(self):
        """The underlying :class:`~repro.cluster.SimCluster`."""
        return self.kv.sim

    @property
    def config(self):
        return self.kv.config

    @property
    def kernel(self):
        return self.kv.kernel

    @property
    def recorder(self):
        return self.kv.recorder

    def session(self, pid: Optional[int] = None) -> KVSession:
        if pid is not None:
            self.kv.sim.node(pid)  # validates the range
        return KVSession(self, pid)

    # -- keys --------------------------------------------------------------

    def keys(self) -> List[str]:
        return self.kv.sim.registers

    def ensure_key(self, key: str, timeout: float = 10.0) -> None:
        self.kv.preload([key], timeout=timeout)

    def preload(self, keys: Sequence[str], timeout: float = 10.0) -> None:
        self.kv.preload(keys, timeout=timeout)

    # -- fault verbs -------------------------------------------------------

    def crash(self, pid: int) -> None:
        self.kv.crash(pid)

    def recover(self, pid: int, wait: bool = True, timeout: float = 5.0) -> None:
        self.kv.recover(pid, wait=wait, timeout=timeout)

    def partition(self, group_a: Sequence[int], group_b: Sequence[int]) -> None:
        self.kv.sim.network.partition(set(group_a), set(group_b))

    def heal(self) -> None:
        self.kv.sim.network.heal_all()

    def corrupt_record(self, pid: int, key: str) -> bool:
        return self.kv.sim.node(pid).storage.corrupt(key)

    def lose_stores(self, pid: int, count: int = 1) -> None:
        self.kv.sim.node(pid).storage.lose_next_stores(count)

    def slow_storage(self, pid: int, extra_latency: float) -> None:
        storage = self.kv.sim.node(pid).storage
        if extra_latency <= 0.0:
            storage.clear_slow()
        else:
            storage.set_slow(extra_latency)

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.kv.now

    def run(self, duration: Optional[float] = None, max_events: int = 1_000_000) -> None:
        self.kv.run(duration, max_events=max_events)

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: Optional[float] = None,
        poll_every: int = 1,
        max_events: int = 1_000_000,
    ) -> bool:
        return self.kv.run_until(
            predicate, timeout=timeout, poll_every=poll_every,
            max_events=max_events,
        )

    def defer(self, delay: float, fn: Callable, *args: Any) -> None:
        self.kv.kernel.schedule(delay, fn, *args)

    def wait(
        self, handle: OpHandle, timeout: float = 5.0, expect_done: bool = False
    ) -> OpHandle:
        self.kv.wait(handle.raw, timeout=timeout)
        if expect_done and handle.aborted:
            raise OperationAborted(
                f"{handle.kind} of {handle.key!r} aborted by a crash"
            )
        return handle

    # -- verification ------------------------------------------------------

    @property
    def history(self) -> History:
        return self.kv.history

    def check(self, criterion: str = "atomic", method: str = "auto") -> Verdict:
        """Per-key verification: every touched key's projection, merged.

        ``method="auto"`` (and the explicit ``"per-key"``) apply the
        store's own policy
        (:func:`~repro.kv.store.projection_check_method`): exhaustive
        black-box search on small projections, the white-box tag
        checker beyond; ``"blackbox"`` / ``"whitebox"`` force one
        checker for every key.
        """
        resolved = self._resolve_criterion(criterion)
        method = self._validate_method(method)
        per_key: Dict[str, Verdict] = {}
        for key, history in sorted(self.kv.per_key_histories().items()):
            operations = history.operations()
            if not operations:
                continue
            key_method = method
            if method in ("auto", "per-key"):
                key_method = projection_check_method(len(operations))
            per_key[key] = check_one_register(
                self, history, self.kv.recorder, criterion, key_method
            )
        failures = {
            key: child.reason for key, child in per_key.items() if not child.ok
        }
        return Verdict(
            ok=not failures,
            criterion=criterion,
            consistency=resolved,
            method="per-key",
            operations=len(self.kv.history.completed_operations()),
            reason="; ".join(
                f"{key}: {reason}" for key, reason in sorted(failures.items())
            ),
            per_key=per_key,
        )

    # -- observability -----------------------------------------------------

    def stats(self) -> ClusterStats:
        stats = sim_stats(self.kv.sim)
        stats.extra["kv_completed"] = self.kv.completed_operations
        stats.extra["kv_aborted"] = self.kv.aborted_operations
        return stats

    def _register_metrics(self, registry) -> None:
        register_sim_metrics(registry, self.kv.sim)
        kv = self.kv
        registry.gauge("kv.shards", fn=lambda: kv.num_shards)
        registry.gauge("kv.completed", fn=lambda: kv.completed_operations)
        registry.gauge("kv.aborted", fn=lambda: kv.aborted_operations)

    @property
    def flight_recorder(self):
        return self.kv.flight_recorder

    def transcript(self) -> Optional[List[str]]:
        return sim_transcript(self.kv.sim)
