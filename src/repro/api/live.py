"""The ``"live"`` backend: asyncio/UDP nodes behind the façade.

Adapts :class:`~repro.runtime.cluster.LiveCluster`: real datagrams on
localhost, real ``fsync`` ed files, wall-clock time.  Sessions submit
operations without blocking (the coroutine is scheduled on the
cluster's event-loop thread and the returned
:class:`~repro.api.types.OpHandle` settles when it completes), so the
non-blocking half of the vocabulary works here too; ``latency`` is
wall seconds.

What the backend cannot do is declared, not approximated: it has no
``virtual_time`` capability, so ``run``/``run_until``/``now``/``defer``
raise :class:`~repro.common.errors.CapabilityError` (there is no
virtual clock to drive -- real time passes on its own), as do
``partition``/``heal`` (real sockets, no link control) and seeding
(``seed`` must stay ``None``).  Crash injection works: nodes crash and
recover through the filesystem.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional

from repro.api.base import Cluster, Session
from repro.api.sim import check_one_register
from repro.api.types import CRASH_INJECTION, ClusterStats, OpHandle, Verdict
from repro.common.errors import ConfigurationError, OperationAborted, ReproError
from repro.history.history import History
from repro.history.partition import partition_history


class LiveHandle(OpHandle):
    """Façade handle around a live operation's in-flight future.

    All state derives from the future itself: a settled future answers
    ``done``/``aborted``/``result`` immediately, regardless of whether
    the loop thread has run the completion callback yet (futures wake
    waiters *before* done-callbacks, so callback-cached state would
    lag behind ``wait()``).
    """

    __slots__ = ("kind", "key", "pid", "_future", "_submitted", "_completed")

    def __init__(self, kind: str, key: Optional[str], pid: int, future):
        self.kind = kind
        self.key = key
        self.pid = pid
        self._future = future
        self._submitted = time.monotonic()
        self._completed: Optional[float] = None
        future.add_done_callback(self._on_done)

    def _on_done(self, _future) -> None:
        if self._completed is None:
            self._completed = time.monotonic()

    @property
    def settled(self) -> bool:
        return self._future.done()

    @property
    def done(self) -> bool:
        return self._future.done() and self._future.exception() is None

    @property
    def aborted(self) -> bool:
        return self._future.done() and self._future.exception() is not None

    @property
    def error(self) -> Optional[BaseException]:
        """What the operation failed with, if it aborted."""
        return self._future.exception() if self._future.done() else None

    @property
    def result(self) -> Any:
        if not self.done:
            return None
        return self._future.result()

    @property
    def latency(self) -> Optional[float]:
        """Submission-to-completion wall seconds."""
        if not self._future.done():
            return None
        if self._completed is None:
            # The waiter beat the loop thread's done-callback; stamp
            # completion now (an overestimate of at most that race).
            self._completed = time.monotonic()
        return self._completed - self._submitted

    def add_callback(self, callback: Callable[[OpHandle], None]) -> None:
        # Runs on the cluster's event-loop thread.
        self._future.add_done_callback(lambda _future: callback(self))


class LiveSession(Session):
    """A session pinned to one live node."""

    @property
    def ready(self) -> bool:
        return not self.cluster.live.nodes[self.pid].crashed

    def write(self, value: Any, key: Optional[str] = None) -> LiveHandle:
        live = self.cluster.live
        return self._observed(LiveHandle(
            "write", key, self.pid, live.submit(live.awrite(self.pid, value, key=key))
        ))

    def read(self, key: Optional[str] = None) -> LiveHandle:
        live = self.cluster.live
        return self._observed(LiveHandle(
            "read", key, self.pid, live.submit(live.aread(self.pid, key=key))
        ))


class LiveBackend(Cluster):
    """Façade adapter over :class:`~repro.runtime.cluster.LiveCluster`."""

    backend = "live"
    capabilities = frozenset({CRASH_INJECTION})

    def __init__(
        self,
        protocol: str = "persistent",
        num_processes: Optional[int] = None,
        seed: Optional[int] = None,
        existing: Optional[Any] = None,
        **options: Any,
    ):
        from repro.runtime.cluster import LiveCluster

        if seed is not None:
            raise ConfigurationError(
                "the live backend is not seedable (real sockets, real "
                "time); use backend='sim' or 'kv' for deterministic runs"
            )
        if existing is not None:
            self.live = existing
        else:
            self.live = LiveCluster(
                protocol=protocol,
                num_processes=3 if num_processes is None else num_processes,
                **options,
            )
        #: ``(pid, exception)`` of failed non-blocking recoveries.
        self.recovery_errors: List[tuple] = []

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "LiveBackend":
        self.live.start()
        return self

    def close(self) -> None:
        self.live.close()

    # -- identity ----------------------------------------------------------

    @property
    def protocol(self) -> str:
        return self.live.protocol_name

    @property
    def num_processes(self) -> int:
        return self.live.num_processes

    @property
    def recorder(self):
        return self.live.recorder

    def session(self, pid: Optional[int] = None) -> LiveSession:
        if pid is None:
            raise ConfigurationError(
                "the live backend needs an explicit pid per session"
            )
        if not 0 <= pid < self.live.num_processes:
            raise ConfigurationError(f"pid {pid} out of range")
        return LiveSession(self, pid)

    # -- keys --------------------------------------------------------------

    def keys(self) -> List[str]:
        return self.live.registers

    def ensure_key(self, key: str, timeout: float = 10.0) -> None:
        self.live.ensure_register(key)

    # -- fault verbs -------------------------------------------------------

    def crash(self, pid: int) -> None:
        self.live.crash_node(pid)

    def recover(self, pid: int, wait: bool = True, timeout: float = 5.0) -> None:
        """Restart node ``pid``.

        With ``wait=False`` the recovery proceeds on the loop thread;
        a failure (node not crashed, readiness timeout) is recorded in
        :attr:`recovery_errors` instead of vanishing with the
        fire-and-forgotten future.
        """
        if wait:
            self.live.recover_node(pid, timeout=timeout)
            return
        future = self.live.submit(self._arecover(pid, timeout))

        def harvest(done_future) -> None:
            error = done_future.exception()
            if error is not None:
                self.recovery_errors.append((pid, error))

        future.add_done_callback(harvest)

    async def _arecover(self, pid: int, timeout: float) -> None:
        self.live.nodes[pid].recover()
        await self.live.nodes[pid].wait_ready(timeout=timeout)

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        raise self._unsupported("now", "virtual-time clock control")

    def defer(self, delay: float, fn: Callable, *args: Any) -> None:
        raise self._unsupported("defer", "virtual-time clock control")

    def wait(
        self, handle: OpHandle, timeout: float = 5.0, expect_done: bool = False
    ) -> OpHandle:
        try:
            handle._future.result(timeout=timeout)
            return handle
        except Exception:
            # Classify by the future's state, not the exception type:
            # on 3.11+ concurrent.futures.TimeoutError IS the builtin
            # TimeoutError, so an operation that settled by *failing*
            # with a timeout (asyncio.wait_for in the node) is
            # indistinguishable from our wait giving up by type alone.
            error = (
                handle._future.exception() if handle._future.done() else None
            )
            if not handle._future.done():
                # Only this wait gave up; the operation stays in
                # flight (bounded by the cluster's op_timeout).
                raise ReproError(
                    f"live {handle.kind} did not settle within {timeout}s"
                ) from None
            if error is not None and expect_done:
                raise OperationAborted(
                    f"{handle.kind} at p{handle.pid} failed: {error}"
                ) from error
            return handle

    # -- verification ------------------------------------------------------

    @property
    def history(self) -> History:
        return self.live.recorder.history

    def check(self, criterion: str = "atomic", method: str = "auto") -> Verdict:
        history = self.history
        if self.live.registers:
            history = partition_history(
                history,
                self.live.recorder.register_of,
                registers=set(self.live.registers),
            ).get(None, History())
        return check_one_register(
            self, history, self.live.recorder, criterion, method
        )

    # -- observability -----------------------------------------------------

    def stats(self) -> ClusterStats:
        nodes = self.live.nodes
        sent = sum(node.transport.messages_sent for node in nodes)
        received = sum(node.transport.messages_received for node in nodes)
        return ClusterStats(
            clock=self.live._clock(),
            # kernel_events stays 0: real time has no event loop counter
            # comparable to the simulator's.
            messages_sent=sent,
            # UDP gives no per-datagram loss signal; sent-minus-received
            # is the best available estimate (in-flight datagrams and
            # crash-muted receivers count as dropped).
            messages_dropped=max(0, sent - received),
            stores_completed=sum(
                node.storage.stores_completed for node in nodes
            ),
            crashes=sum(node.incarnation for node in nodes),
            recoveries=sum(node.recoveries for node in nodes),
        )

    def _register_metrics(self, registry) -> None:
        live = self.live
        nodes = live.nodes
        registry.gauge("kernel.clock", fn=live._clock)
        registry.gauge(
            "net.messages_sent",
            fn=lambda: sum(n.transport.messages_sent for n in nodes),
        )
        registry.gauge(
            "net.messages_delivered",
            fn=lambda: sum(n.transport.messages_received for n in nodes),
        )
        registry.gauge(
            "net.messages_dropped",
            fn=lambda: max(
                0,
                sum(n.transport.messages_sent for n in nodes)
                - sum(n.transport.messages_received for n in nodes),
            ),
        )
        registry.gauge(
            "storage.stores_completed",
            fn=lambda: sum(n.storage.stores_completed for n in nodes),
        )
        registry.gauge(
            "node.crashes", fn=lambda: sum(n.incarnation for n in nodes)
        )
        registry.gauge(
            "node.recoveries", fn=lambda: sum(n.recoveries for n in nodes)
        )
        registry.gauge(
            "trace.flight_recorded",
            fn=lambda: live.flight_recorder.total,
        )

    @property
    def flight_recorder(self):
        return self.live.flight_recorder
