"""The ``"sim"`` backend: the deterministic simulator behind the façade.

A thin adapter over :class:`~repro.cluster.SimCluster` -- no extra
kernel events, no extra randomness, so a seeded run behaves
byte-identically whether it is driven through the façade or the
low-level API.  Declares ``virtual_time``, ``crash_injection`` and
``trace``; sharding lives in the ``"kv"`` backend.

Verification-relevant shared logic (projecting the anonymous register,
resolving ``method="auto"``, mapping the checker outcomes onto the one
:class:`~repro.api.types.Verdict` shape) is module-level so the KV and
live adapters reuse it.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.api.base import Cluster, Session
from repro.api.types import (
    CRASH_INJECTION,
    STORAGE_FAULTS,
    TRACE,
    VIRTUAL_TIME,
    ClusterStats,
    OpHandle,
    Verdict,
)
from repro.common.errors import ConfigurationError, OperationAborted
from repro.history.checker import MAX_OPERATIONS, check_history
from repro.history.history import History
from repro.history.recorder import HistoryRecorder
from repro.history.register_checker import check_tagged_history
from repro.history.regular_checker import check_regularity, check_safety
from repro.sim.node import SimOperation


class SimHandle(OpHandle):
    """Façade handle around a :class:`~repro.sim.node.SimOperation`."""

    __slots__ = ("raw", "kind", "key", "pid")

    def __init__(self, raw: SimOperation):
        self.raw = raw
        self.kind = raw.kind
        self.key = raw.register
        self.pid = raw.pid

    @property
    def settled(self) -> bool:
        return self.raw.settled

    @property
    def done(self) -> bool:
        return self.raw.done

    @property
    def aborted(self) -> bool:
        return self.raw.aborted

    @property
    def result(self) -> Any:
        return self.raw.result

    @property
    def latency(self) -> Optional[float]:
        return self.raw.latency

    @property
    def causal_logs(self) -> Optional[int]:
        """Causal stable-storage logs the operation cost (sim only)."""
        return self.raw.causal_logs

    def add_callback(self, callback: Callable[[OpHandle], None]) -> None:
        self.raw.add_callback(lambda _raw: callback(self))


class SimSession(Session):
    """A session pinned to one simulated process."""

    @property
    def ready(self) -> bool:
        node = self.cluster.sim.node(self.pid)
        if node.crashed or not node.ready:
            return False
        protocol = node.protocol
        return not (protocol.busy if hasattr(protocol, "busy") else False)

    def write(self, value: Any, key: Optional[str] = None) -> SimHandle:
        return self._observed(
            SimHandle(self.cluster.sim.write(self.pid, value, key=key))
        )

    def read(self, key: Optional[str] = None) -> SimHandle:
        return self._observed(
            SimHandle(self.cluster.sim.read(self.pid, key=key))
        )

    def write_sync(self, value, key=None, timeout=5.0):
        # The raw op is already settled here; _observed fires the
        # latency callback immediately.
        return self._observed(SimHandle(
            self.cluster.sim.write_sync(self.pid, value, key=key, timeout=timeout)
        ))

    def read_sync(self, key=None, timeout=5.0):
        # Mirrors SimCluster.read_sync (register readiness barrier
        # included) but keeps the handle so the latency is observed.
        sim = self.cluster.sim
        if key is not None:
            sim.ensure_register(key)
            sim.wait_register(key, timeout=timeout)
        handle = self._observed(SimHandle(sim.read(self.pid, key=key)))
        sim.wait(handle.raw, timeout=timeout)
        if handle.aborted:
            raise OperationAborted(
                f"read at p{self.pid} aborted by a crash"
            )
        return handle.result


class SimBackend(Cluster):
    """Façade adapter over :class:`~repro.cluster.SimCluster`."""

    backend = "sim"
    capabilities = frozenset(
        {VIRTUAL_TIME, CRASH_INJECTION, TRACE, STORAGE_FAULTS}
    )

    def __init__(
        self,
        protocol: str = "persistent",
        num_processes: Optional[int] = None,
        seed: Optional[int] = None,
        existing: Optional[Any] = None,
        **options: Any,
    ):
        from repro.cluster import SimCluster

        if existing is not None:
            self.sim = existing
        else:
            self.sim = SimCluster(
                protocol=protocol,
                num_processes=num_processes,
                seed=seed,
                **options,
            )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SimBackend":
        self.sim.start()
        return self

    # -- identity ----------------------------------------------------------

    @property
    def protocol(self) -> str:
        return self.sim.protocol_name

    @property
    def num_processes(self) -> int:
        return self.sim.config.num_processes

    @property
    def seed(self) -> Optional[int]:
        return self.sim.config.seed

    @property
    def config(self):
        """The low-level :class:`~repro.common.config.ClusterConfig`."""
        return self.sim.config

    @property
    def kernel(self):
        """The simulation kernel (virtual-time backends only)."""
        return self.sim.kernel

    @property
    def recorder(self) -> HistoryRecorder:
        return self.sim.recorder

    def node(self, pid: int):
        """The low-level simulated node (prefer :meth:`session`)."""
        return self.sim.node(pid)

    def session(self, pid: Optional[int] = None) -> SimSession:
        if pid is None:
            raise ConfigurationError(
                "the sim backend needs an explicit pid per session"
            )
        self.sim.node(pid)  # validates the range
        return SimSession(self, pid)

    # -- keys --------------------------------------------------------------

    def keys(self) -> List[str]:
        return self.sim.registers

    def ensure_key(self, key: str, timeout: float = 10.0) -> None:
        self.sim.ensure_register(key)
        self.sim.wait_register(key, timeout=timeout)

    def preload(self, keys: Sequence[str], timeout: float = 10.0) -> None:
        for key in keys:
            self.sim.ensure_register(key)
        for key in keys:
            self.sim.wait_register(key, timeout=timeout)

    # -- fault verbs -------------------------------------------------------

    def crash(self, pid: int) -> None:
        self.sim.crash(pid)

    def recover(self, pid: int, wait: bool = True, timeout: float = 5.0) -> None:
        self.sim.recover(pid, wait=wait, timeout=timeout)

    def partition(self, group_a: Sequence[int], group_b: Sequence[int]) -> None:
        self.sim.network.partition(set(group_a), set(group_b))

    def heal(self) -> None:
        self.sim.network.heal_all()

    def corrupt_record(self, pid: int, key: str) -> bool:
        return self.sim.node(pid).storage.corrupt(key)

    def lose_stores(self, pid: int, count: int = 1) -> None:
        self.sim.node(pid).storage.lose_next_stores(count)

    def slow_storage(self, pid: int, extra_latency: float) -> None:
        storage = self.sim.node(pid).storage
        if extra_latency <= 0.0:
            storage.clear_slow()
        else:
            storage.set_slow(extra_latency)

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def run(self, duration: Optional[float] = None, max_events: int = 1_000_000) -> None:
        self.sim.run(duration, max_events=max_events)

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: Optional[float] = None,
        poll_every: int = 1,
        max_events: int = 1_000_000,
    ) -> bool:
        return self.sim.run_until(
            predicate, timeout=timeout, poll_every=poll_every,
            max_events=max_events,
        )

    def defer(self, delay: float, fn: Callable, *args: Any) -> None:
        self.sim.kernel.schedule(delay, fn, *args)

    def wait(
        self, handle: OpHandle, timeout: float = 5.0, expect_done: bool = False
    ) -> OpHandle:
        self.sim.wait(handle.raw, timeout=timeout)
        if expect_done and handle.aborted:
            raise OperationAborted(
                f"{handle.kind} at p{handle.pid} aborted by a crash"
            )
        return handle

    # -- verification ------------------------------------------------------

    @property
    def history(self) -> History:
        return self.sim.history

    def check(self, criterion: str = "atomic", method: str = "auto") -> Verdict:
        history = self.sim.history
        if self.sim.registers:
            history = self.sim.per_register_histories().get(None, History())
        return check_one_register(
            self, history, self.sim.recorder, criterion, method
        )

    # -- observability -----------------------------------------------------

    def stats(self) -> ClusterStats:
        return sim_stats(self.sim)

    def _register_metrics(self, registry) -> None:
        register_sim_metrics(registry, self.sim)

    @property
    def flight_recorder(self):
        return self.sim.flight_recorder

    def transcript(self) -> Optional[List[str]]:
        return sim_transcript(self.sim)


# -- shared verification/observability helpers -------------------------------


def check_one_register(
    cluster: Cluster,
    history: History,
    recorder: HistoryRecorder,
    criterion: str,
    method: str,
    initial_value: Any = None,
) -> Verdict:
    """One register's history -> the merged :class:`Verdict`.

    Shared by the sim and live adapters (and per key by the KV one):
    resolves ``"atomic"`` against the cluster's protocol, picks the
    checker for ``method="auto"`` (exhaustive black-box search under
    its cap, the near-linear white-box tag checker beyond it) and maps
    whichever verdict type the checker produced onto :class:`Verdict`.
    """
    resolved = cluster._resolve_criterion(criterion)
    method = cluster._validate_method(method)
    if method == "per-key":
        raise ConfigurationError(
            "method 'per-key' is the KV backend's checker; single-register "
            "backends take 'auto', 'blackbox' or 'whitebox'"
        )
    if resolved in ("regular", "safe"):
        checker = check_regularity if resolved == "regular" else check_safety
        verdict = checker(history, initial_value=initial_value)
        return Verdict(
            ok=verdict.ok,
            criterion=criterion,
            consistency=verdict.criterion,
            method="black-box",
            operations=verdict.operations,
            reason="; ".join(verdict.violations),
        )
    if method == "auto":
        method = (
            "blackbox"
            if len(history.operations()) <= MAX_OPERATIONS
            else "whitebox"
        )
    if method == "blackbox":
        verdict = check_history(
            history, criterion=resolved, initial_value=initial_value
        )
        return Verdict(
            ok=verdict.ok,
            criterion=criterion,
            consistency=resolved,
            method="black-box",
            operations=verdict.operations,
            reason=verdict.reason,
            linearization=verdict.linearization,
            dropped=verdict.dropped,
        )
    result = check_tagged_history(
        history, recorder, criterion=resolved, initial_value=initial_value
    )
    return Verdict(
        ok=result.ok,
        criterion=criterion,
        consistency=resolved,
        method="white-box",
        operations=result.operations,
        reason="; ".join(result.violations),
    )


def sim_stats(sim) -> ClusterStats:
    """Run-wide counters of a :class:`~repro.cluster.SimCluster`."""
    return ClusterStats(
        clock=sim.kernel.now,
        kernel_events=sim.kernel.events_processed,
        messages_sent=sim.network.messages_sent,
        messages_dropped=sim.network.messages_dropped,
        stores_completed=sum(
            node.storage.stores_completed for node in sim.nodes
        ),
        crashes=sum(node.crash_count for node in sim.nodes),
        recoveries=sim.trace.count("recover"),
    )


def register_sim_metrics(registry, sim) -> None:
    """Install the uniform gauge catalog over a simulated cluster.

    Every gauge is pull-based: it reads a counter the engine already
    maintains, so registering them adds nothing to the hot path.  The
    KV adapter layers its shard-level metrics on top of this set; the
    live adapter mirrors the same names from its transports (see the
    metrics catalog in ``docs/observability.md``).
    """
    kernel, network, trace = sim.kernel, sim.network, sim.trace
    nodes = sim.nodes
    registry.gauge("kernel.clock", fn=lambda: kernel.now)
    registry.gauge("kernel.events", fn=lambda: kernel.events_processed)
    registry.gauge("net.messages_sent", fn=lambda: network.messages_sent)
    registry.gauge(
        "net.messages_delivered", fn=lambda: network.messages_delivered
    )
    registry.gauge("net.messages_dropped", fn=lambda: network.messages_dropped)
    registry.gauge("net.bytes_sent", fn=lambda: network.bytes_sent)
    registry.gauge(
        "storage.stores_completed",
        fn=lambda: sum(n.storage.stores_completed for n in nodes),
    )
    registry.gauge(
        "storage.stores_lost_to_crash",
        fn=lambda: sum(n.storage.stores_lost_to_crash for n in nodes),
    )
    registry.gauge(
        "storage.bytes_logged",
        fn=lambda: sum(n.storage.bytes_logged for n in nodes),
    )
    registry.gauge(
        "storage.footprint_bytes",
        fn=lambda: sum(n.storage.log_bytes for n in nodes),
    )
    registry.gauge(
        "storage.records",
        fn=lambda: sum(n.storage.log_records for n in nodes),
    )
    registry.gauge(
        "node.crashes", fn=lambda: sum(n.crash_count for n in nodes)
    )
    registry.gauge("node.recoveries", fn=lambda: trace.count("recover"))
    recovery_hist = registry.histogram("node.recovery_time")
    for node in nodes:
        # Backfill recoveries that completed before the registry was
        # attached (it is created lazily), then observe live ones.
        for duration in node.recovery_times:
            recovery_hist.observe(duration)
        node.on_recovery_time = recovery_hist.observe
    registry.gauge(
        "trace.flight_recorded",
        fn=lambda: trace.ring.total if trace.ring is not None else 0,
    )


def sim_transcript(sim) -> Optional[List[str]]:
    """Captured trace lines of a simulated run (``None`` off-capture)."""
    if not sim.trace.capturing:
        return None
    return [str(event) for event in sim.trace.events]
