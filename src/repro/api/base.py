"""The façade contract: ``Cluster`` and ``Session``, plus ``open_cluster``.

One front door for every backend.  A :class:`Cluster` is a context
manager over a running deployment -- the deterministic simulator
(``backend="sim"``), the sharded KV store on the simulator
(``backend="kv"``) or the asyncio/UDP runtime (``backend="live"``) --
and exposes one vocabulary everywhere::

    from repro.api import open_cluster

    with open_cluster(backend="sim", protocol="persistent") as cluster:
        s0, s1 = cluster.session(0), cluster.session(1)
        s0.write_sync("hello")
        assert s1.read_sync() == "hello"
        cluster.crash(0)
        cluster.recover(0)
        assert cluster.check().ok

The same program runs unmodified against any backend; what differs is
declared, not special-cased: each backend carries a ``capabilities``
frozenset (:mod:`repro.api.types`), and anything outside it --
virtual-time clock control on live, partitions over real sockets --
raises :class:`~repro.common.errors.CapabilityError` with the reason.

The pre-existing constructors (:class:`~repro.cluster.SimCluster`,
:class:`~repro.kv.store.KVCluster`,
:class:`~repro.runtime.cluster.LiveCluster`) remain the low-level
layer; the backend adapters here wrap them without adding any events
or randomness, so seeded runs behave byte-identically through either
surface.  :func:`as_cluster` wraps a low-level cluster in its adapter
(and passes façade clusters through), which is how the workload
runners accept both.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence

from repro.api.types import (
    CHECK_CRITERIA,
    CHECK_METHODS,
    ClusterStats,
    OpHandle,
    Verdict,
)
from repro.common.errors import CapabilityError, ConfigurationError
from repro.history.history import History
from repro.obs.metrics import Histogram, MetricsRegistry, MetricsSnapshot
from repro.obs.ring import RingTrace

#: Names ``open_cluster`` accepts, mapped in :data:`BACKENDS` below.
BACKEND_NAMES = ("sim", "kv", "live")

#: Default virtual/wall-clock budget for synchronous operations.
DEFAULT_SYNC_TIMEOUT = 5.0


class Session:
    """A client's handle on one process of a cluster.

    Sessions issue operations; the cluster routes, settles and checks
    them.  ``write``/``read`` return immediately with an
    :class:`~repro.api.types.OpHandle`; the ``*_sync`` variants drive
    the backend (virtual clock or blocking call) until the operation
    settles.  ``key`` addresses a named register instance everywhere;
    ``None`` is the backend's default target (the anonymous register,
    or the KV backend's default key).
    """

    def __init__(self, cluster: "Cluster", pid: Optional[int]):
        self.cluster = cluster
        self.pid = pid
        # Per-op latency histograms, resolved once per session (the
        # pre-resolved-handle discipline of repro.obs).
        registry = cluster.registry
        self._latency_hists: Dict[str, Histogram] = {
            "read": registry.histogram("op.read.latency"),
            "write": registry.histogram("op.write.latency"),
        }

    def _observed(self, handle: OpHandle) -> OpHandle:
        """Feed ``handle``'s latency into the session histograms.

        The callback fires synchronously when the operation settles
        (immediately for already-settled handles); it schedules no
        events and consumes no randomness, so observation never
        perturbs a seeded run.
        """
        handle.add_callback(self._record_latency)
        return handle

    def _record_latency(self, handle: OpHandle) -> None:
        latency = handle.latency
        if latency is None:
            return
        hist = self._latency_hists.get(handle.kind)
        if hist is not None:
            hist.observe(latency)

    @property
    def ready(self) -> bool:
        """Whether this session's process can accept an operation now.

        ``False`` while the process is crashed, still recovering, or
        (single-register backends) busy with an outstanding operation.
        Backends that queue client-side (the KV store's shard
        pipelines) are always ready.
        """
        raise NotImplementedError

    def write(self, value: Any, key: Optional[str] = None) -> OpHandle:
        """Submit a write; returns its handle immediately."""
        raise NotImplementedError

    def read(self, key: Optional[str] = None) -> OpHandle:
        """Submit a read; returns its handle immediately."""
        raise NotImplementedError

    def write_sync(
        self,
        value: Any,
        key: Optional[str] = None,
        timeout: float = DEFAULT_SYNC_TIMEOUT,
    ) -> OpHandle:
        """Write and drive the backend until the write returns.

        Raises :class:`~repro.common.errors.OperationAborted` if the
        coordinator crashed mid-operation.
        """
        handle = self.write(value, key=key)
        return self.cluster.wait(handle, timeout=timeout, expect_done=True)

    def read_sync(
        self, key: Optional[str] = None, timeout: float = DEFAULT_SYNC_TIMEOUT
    ) -> Any:
        """Read and drive the backend until the value is returned."""
        handle = self.read(key=key)
        self.cluster.wait(handle, timeout=timeout, expect_done=True)
        return handle.result

    def __repr__(self) -> str:
        return f"Session(pid={self.pid}, backend={self.cluster.backend!r})"


class Cluster:
    """Backend-agnostic handle on one running cluster.

    Subclasses adapt one concrete backend; callers program against
    this surface and branch -- when they must -- on
    :attr:`capabilities`, never on the adapter type.
    """

    #: Backend name ("sim", "kv", "live").
    backend: str = "?"
    #: What this backend can do; see :mod:`repro.api.types`.
    capabilities: FrozenSet[str] = frozenset()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Cluster":
        """Boot every process; returns ``self`` for chaining."""
        raise NotImplementedError

    def close(self) -> None:
        """Tear the cluster down (a no-op on simulated backends)."""

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- identity ----------------------------------------------------------

    @property
    def protocol(self) -> str:
        """Name of the register protocol the cluster runs."""
        raise NotImplementedError

    @property
    def num_processes(self) -> int:
        raise NotImplementedError

    @property
    def seed(self) -> Optional[int]:
        """The deterministic seed, or ``None`` (live backend)."""
        return None

    def session(self, pid: Optional[int] = None) -> Session:
        """A session bound to process ``pid``.

        ``None`` asks the backend to route operations itself -- only
        backends with client-side routing (the KV store's round-robin)
        support it; the others require an explicit pid.
        """
        raise NotImplementedError

    # -- keys --------------------------------------------------------------

    def keys(self) -> List[str]:
        """Named register instances provisioned so far, sorted."""
        raise NotImplementedError

    def ensure_key(self, key: str, timeout: float = 10.0) -> None:
        """Provision register instance ``key`` and wait until ready."""
        raise NotImplementedError

    def preload(self, keys: Sequence[str], timeout: float = 10.0) -> None:
        """Provision many keys up front (one readiness barrier)."""
        for key in keys:
            self.ensure_key(key, timeout=timeout)

    # -- fault verbs -------------------------------------------------------

    def crash(self, pid: int) -> None:
        """Crash process ``pid`` immediately."""
        raise NotImplementedError

    def recover(self, pid: int, wait: bool = True, timeout: float = 5.0) -> None:
        """Restart process ``pid``; by default wait until it is ready."""
        raise NotImplementedError

    def partition(self, group_a: Sequence[int], group_b: Sequence[int]) -> None:
        """Block every link between the two groups (both directions)."""
        raise self._unsupported("partition", "network partitions")

    def heal(self) -> None:
        """Unblock every link a :meth:`partition` blocked."""
        raise self._unsupported("heal", "network partitions")

    def corrupt_record(self, pid: int, key: str) -> bool:
        """Make ``pid``'s durable record under ``key`` unreadable.

        ``key`` is the raw storage key (``"writing"``/``"written"``
        for the anonymous register, ``"<register>/writing"`` for named
        slots).  Returns whether a record was present.  Requires the
        ``storage_faults`` capability.
        """
        raise self._unsupported("corrupt_record", "storage fault injection")

    def lose_stores(self, pid: int, count: int = 1) -> None:
        """Silently drop ``pid``'s next ``count`` acknowledged stores."""
        raise self._unsupported("lose_stores", "storage fault injection")

    def slow_storage(self, pid: int, extra_latency: float) -> None:
        """Add ``extra_latency`` to ``pid``'s stores until cleared.

        Pass ``0.0`` to end the window.
        """
        raise self._unsupported("slow_storage", "storage fault injection")

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """The virtual clock, in seconds (``virtual_time`` backends).

        The live backend raises
        :class:`~repro.common.errors.CapabilityError` -- real time
        passes on its own; its loop clock is readable via
        ``stats().clock``.
        """
        raise NotImplementedError

    def run(self, duration: Optional[float] = None, max_events: int = 1_000_000) -> None:
        """Advance the virtual clock by ``duration`` (or to quiescence)."""
        raise self._unsupported("run", "virtual-time clock control")

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: Optional[float] = None,
        poll_every: int = 1,
        max_events: int = 1_000_000,
    ) -> bool:
        """Advance the virtual clock until ``predicate()`` holds."""
        raise self._unsupported("run_until", "virtual-time clock control")

    def defer(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` on the backend's clock.

        The hook closed-loop drivers chain their next invocation on;
        virtual-time backends put it on the kernel, live backends on
        the event loop.
        """
        raise NotImplementedError

    def wait(
        self,
        handle: OpHandle,
        timeout: float = DEFAULT_SYNC_TIMEOUT,
        expect_done: bool = False,
    ) -> OpHandle:
        """Block (or drive the virtual clock) until ``handle`` settles.

        With ``expect_done`` an aborted operation raises
        :class:`~repro.common.errors.OperationAborted` -- the ``*_sync``
        contract.
        """
        raise NotImplementedError

    def wait_all(
        self, handles: Sequence[OpHandle], timeout: float = DEFAULT_SYNC_TIMEOUT
    ) -> List[OpHandle]:
        """Wait until every handle settles."""
        for handle in handles:
            self.wait(handle, timeout=timeout)
        return list(handles)

    # -- verification ------------------------------------------------------

    @property
    def history(self) -> History:
        """The recorded invocation/reply/crash/recovery history."""
        raise NotImplementedError

    def check(self, criterion: str = "atomic", method: str = "auto") -> Verdict:
        """Check the recorded history; returns the merged verdict.

        ``criterion`` is one of :data:`~repro.api.types.CHECK_CRITERIA`
        ("atomic" resolves to what the running protocol promises);
        ``method`` one of :data:`~repro.api.types.CHECK_METHODS`.  The
        KV backend checks each key's projection and reports per key;
        the single-register backends judge the anonymous register's
        history.
        """
        raise NotImplementedError

    # -- observability -----------------------------------------------------

    def stats(self) -> ClusterStats:
        """Run-wide counters (zeros where the backend has none)."""
        raise NotImplementedError

    @property
    def registry(self) -> MetricsRegistry:
        """This cluster's metrics registry (created on first use).

        Backends install pull-gauges over their native counters via
        :meth:`_register_metrics`; sessions resolve their latency
        histograms here.  Reading counters through the registry costs
        nothing on the hot path -- values are sampled at
        :meth:`metrics` time.
        """
        registry = getattr(self, "_metrics_registry", None)
        if registry is None:
            registry = MetricsRegistry()
            self._register_metrics(registry)
            self._metrics_registry = registry
        return registry

    def _register_metrics(self, registry: MetricsRegistry) -> None:
        """Hook: install this backend's gauges (see ``docs/observability.md``)."""

    def metrics(self) -> MetricsSnapshot:
        """A frozen, backend-uniform snapshot of every instrument.

        Snapshots are diffable (``later.diff(earlier)`` isolates a
        phase) and mergeable (``a.merge(b)`` aggregates runs); see
        :class:`repro.obs.metrics.MetricsSnapshot`.
        """
        return self.registry.snapshot()

    @property
    def flight_recorder(self) -> Optional[RingTrace]:
        """The always-on bounded event ring, or ``None`` when disabled.

        Decode with :meth:`~repro.obs.ring.RingTrace.to_trace_events`,
        or export via ``to_jsonl()`` / ``to_chrome_trace()``.
        """
        return None

    def transcript(self) -> Optional[List[str]]:
        """Captured trace events as strings, or ``None`` (no capture)."""
        return None

    # -- helpers -----------------------------------------------------------

    def _unsupported(self, verb: str, feature: str) -> CapabilityError:
        return CapabilityError(
            f"the {self.backend!r} backend does not support {feature} "
            f"({verb}); check Cluster.capabilities before calling it"
        )

    def _resolve_criterion(self, criterion: str) -> str:
        """Map the requested criterion to the one actually checked."""
        if criterion not in CHECK_CRITERIA:
            raise ConfigurationError(
                f"unknown criterion {criterion!r} (expected one of "
                f"{CHECK_CRITERIA})"
            )
        if criterion == "atomic":
            return "transient" if self.protocol == "transient" else "persistent"
        return criterion

    #: Reported :attr:`Verdict.method` spellings, normalized back to
    #: the request tokens so ``check(method=verdict.method)`` works.
    _METHOD_ALIASES = {"black-box": "blackbox", "white-box": "whitebox"}

    @classmethod
    def _validate_method(cls, method: str) -> str:
        method = cls._METHOD_ALIASES.get(method, method)
        if method not in CHECK_METHODS:
            raise ConfigurationError(
                f"unknown checker method {method!r} (expected one of "
                f"{CHECK_METHODS})"
            )
        return method

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(backend={self.backend!r}, "
            f"protocol={self.protocol!r}, processes={self.num_processes})"
        )


def open_cluster(
    backend: str = "sim",
    protocol: str = "persistent",
    num_processes: Optional[int] = None,
    seed: Optional[int] = None,
    **options: Any,
) -> Cluster:
    """Open a cluster behind the unified façade.

    ``backend`` selects the deployment: ``"sim"`` (the deterministic
    single-register simulator), ``"kv"`` (the sharded key-value store
    on the simulator) or ``"live"`` (asyncio/UDP nodes on localhost).
    ``options`` are forwarded to the backend's low-level constructor
    (e.g. ``num_shards``/``batch_window`` for kv, ``storage_root`` for
    live, ``capture_trace``/``config`` for the simulated ones).

    The returned :class:`Cluster` is not yet started: use it as a
    context manager, or call :meth:`Cluster.start` explicitly.
    """
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {backend!r} (expected one of {BACKEND_NAMES})"
        ) from None
    return factory(
        protocol=protocol, num_processes=num_processes, seed=seed, **options
    )


def as_cluster(cluster: Any) -> Cluster:
    """Wrap a low-level cluster in its façade adapter.

    Façade clusters pass through; :class:`~repro.cluster.SimCluster`,
    :class:`~repro.kv.store.KVCluster` and
    :class:`~repro.runtime.cluster.LiveCluster` instances are wrapped
    (sharing state with the original -- no copy, no reset).  Anything
    else raises :class:`~repro.common.errors.ConfigurationError`.
    """
    if isinstance(cluster, Cluster):
        return cluster
    from repro.api.kv import KVBackend
    from repro.api.live import LiveBackend
    from repro.api.sim import SimBackend
    from repro.cluster import SimCluster
    from repro.kv.store import KVCluster
    from repro.runtime.cluster import LiveCluster

    if isinstance(cluster, SimCluster):
        return SimBackend(existing=cluster)
    if isinstance(cluster, KVCluster):
        return KVBackend(existing=cluster)
    if isinstance(cluster, LiveCluster):
        return LiveBackend(existing=cluster)
    raise ConfigurationError(
        f"cannot adapt {type(cluster).__name__} to the repro.api facade"
    )


def _backends() -> Dict[str, Callable[..., Cluster]]:
    from repro.api.kv import KVBackend
    from repro.api.live import LiveBackend
    from repro.api.sim import SimBackend

    return {"sim": SimBackend, "kv": KVBackend, "live": LiveBackend}


class _BackendRegistry(dict):
    """Lazy backend table: resolves adapters on first use."""

    def __missing__(self, name: str) -> Callable[..., Cluster]:
        table = _backends()
        self.update(table)
        if name not in table:
            raise KeyError(name)
        return table[name]


#: backend name -> adapter factory, resolved lazily to avoid import
#: cycles (the adapters import the low-level clusters).
BACKENDS: Dict[str, Callable[..., Cluster]] = _BackendRegistry()
