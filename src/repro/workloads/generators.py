"""Closed-loop workload drivers for simulated clusters.

The paper's experiments are closed-loop: each workstation repeatedly
issues an operation, waits for it to return, and issues the next
(50 sequential writes in the first experiment).  The classes here
reproduce that pattern on the simulator, where "waiting" means chaining
the next invocation off the previous handle's completion callback so
that multiple clients stay concurrent in virtual time.

The runner drives the unified façade (:mod:`repro.api`): it accepts a
façade :class:`~repro.api.base.Cluster` or a raw
:class:`~repro.cluster.SimCluster` (lifted via
:func:`~repro.api.base.as_cluster`) and issues operations through
per-process :class:`~repro.api.base.Session` objects -- no
backend-specific calls, so any virtual-time backend with session
readiness works.

Clients are crash-aware: when a client's operation aborts because its
process crashed, the client waits for the process to recover and then
continues with its remaining plan -- matching the model, where a
recovered process simply resumes its algorithm.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.api.base import as_cluster
from repro.api.types import OpHandle
from repro.common.errors import ConfigurationError, ProtocolError
from repro.history.events import READ, WRITE

#: How often a blocked client re-checks its process, seconds.
CLIENT_RETRY_INTERVAL = 1e-3


class UniqueValues:
    """Generates values that never repeat across the whole run.

    Unique values keep histories unambiguous: a read result identifies
    exactly one write, which both checkers rely on for precise
    diagnostics.
    """

    def __init__(self, prefix: str = "v"):
        self._prefix = prefix
        self._counter = 0

    def __call__(self, pid: int) -> str:
        value = f"{self._prefix}{self._counter}-p{pid}"
        self._counter += 1
        return value


@dataclass(frozen=True)
class OperationMix:
    """A randomized read/write mix.

    ``read_fraction`` of operations are reads; the rest are writes with
    values from ``value_factory``.
    """

    read_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read_fraction must be in [0, 1]")

    def plan(
        self, num_operations: int, rng: random.Random
    ) -> List[str]:
        """Draw a kind sequence of length ``num_operations``."""
        return [
            READ if rng.random() < self.read_fraction else WRITE
            for _ in range(num_operations)
        ]


@dataclass
class ClientPlan:
    """The operation sequence one client will execute."""

    pid: int
    kinds: List[str]

    def __post_init__(self) -> None:
        for kind in self.kinds:
            if kind not in (READ, WRITE):
                raise ConfigurationError(f"unknown kind {kind!r}")


@dataclass
class WorkloadReport:
    """What happened when a workload ran."""

    handles: List[OpHandle] = field(default_factory=list)
    completed: int = 0
    aborted: int = 0
    #: Operations never invoked (the run ended first).
    unissued: int = 0

    @property
    def issued(self) -> int:
        return len(self.handles)


class WorkloadRunner:
    """Executes client plans concurrently on a virtual-time cluster.

    ``cluster`` may be a façade :class:`~repro.api.base.Cluster` or a
    raw :class:`~repro.cluster.SimCluster` (lifted automatically).
    """

    def __init__(
        self,
        cluster,
        plans: Sequence[ClientPlan],
        values: Optional[UniqueValues] = None,
    ):
        self._cluster = as_cluster(cluster)
        self._plans = list(plans)
        self._sessions = {}
        for plan in self._plans:
            if not 0 <= plan.pid < self._cluster.num_processes:
                raise ConfigurationError(f"plan pid {plan.pid} out of range")
            self._sessions[plan.pid] = self._cluster.session(plan.pid)
        self._report = WorkloadReport()
        self._remaining = {plan.pid: list(plan.kinds) for plan in self._plans}
        self._active = 0
        # ``values`` may be shared across runners (e.g. the phases of a
        # scenario) so written values stay unique over the whole run.
        self._values = values if values is not None else UniqueValues()

    def run(
        self,
        timeout: float = 60.0,
        poll_every: int = 1,
        max_events: int = 1_000_000,
    ) -> WorkloadReport:
        """Drive all plans to completion (or until ``timeout`` of virtual time).

        ``poll_every`` amortizes the drain predicate over a stride of
        kernel events (see :meth:`repro.sim.kernel.Kernel.run_until`).
        With a stride, up to ``poll_every - 1`` leftover protocol
        events (e.g. timers) may execute after the last client settles
        -- harmless for the report, but it moves the stop position, so
        the default stays 1 for replay-exact runs (the determinism
        goldens capture the full event sequence).  ``max_events`` caps
        kernel callbacks; raise it for soak-scale plans.
        """
        self._active = sum(1 for kinds in self._remaining.values() if kinds)
        for plan in self._plans:
            if self._remaining[plan.pid]:
                self._next_op(plan.pid)
        self._cluster.run_until(
            lambda: self._active == 0, timeout=timeout, poll_every=poll_every,
            max_events=max_events,
        )
        self._report.unissued = sum(len(k) for k in self._remaining.values())
        return self._report

    # -- internal ----------------------------------------------------------

    def _next_op(self, pid: int) -> None:
        kinds = self._remaining[pid]
        if not kinds:
            self._active -= 1
            return
        session = self._sessions[pid]
        if not session.ready:
            # Process is down, recovering, or its recovery replay has
            # the machinery busy: try again shortly.
            self._cluster.defer(CLIENT_RETRY_INTERVAL, self._next_op, pid)
            return
        kind = kinds.pop(0)
        try:
            if kind == WRITE:
                handle = session.write(self._values(pid))
            else:
                handle = session.read()
        except ProtocolError:
            # Lost a race with protocol-internal activity; retry.
            kinds.insert(0, kind)
            self._cluster.defer(CLIENT_RETRY_INTERVAL, self._next_op, pid)
            return
        self._report.handles.append(handle)
        handle.add_callback(lambda h, pid=pid: self._on_settled(pid, h))

    def _on_settled(self, pid: int, handle: OpHandle) -> None:
        if handle.done:
            self._report.completed += 1
        else:
            self._report.aborted += 1
        # Invoke the next operation from a fresh kernel event rather
        # than inside the settling call stack.
        self._cluster.defer(0.0, self._next_op, pid)


def run_closed_loop(
    cluster,
    operations_per_client: int = 20,
    read_fraction: float = 0.5,
    pids: Optional[Iterable[int]] = None,
    seed: int = 0,
    timeout: float = 60.0,
    poll_every: int = 1,
) -> WorkloadReport:
    """Convenience wrapper: uniform random mix on the given processes."""
    if pids is None:
        pids = range(as_cluster(cluster).num_processes)
    rng = random.Random(seed)
    mix = OperationMix(read_fraction=read_fraction)
    plans = [
        ClientPlan(pid=pid, kinds=mix.plan(operations_per_client, rng))
        for pid in pids
    ]
    return WorkloadRunner(cluster, plans).run(timeout=timeout, poll_every=poll_every)
