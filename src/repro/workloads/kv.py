"""Closed-loop key-value workloads: zipfian keys, read/write mixes.

Production key traffic is skewed -- a few hot keys absorb most
operations.  :class:`ZipfianKeys` draws keys with the classic
``P(rank k) ~ 1 / k**s`` popularity law; ``s ~ 0.99`` is the YCSB
default.  :class:`KVWorkloadRunner` drives N closed-loop clients over a
:class:`~repro.kv.store.KVCluster`: each client picks a key and an
operation kind, submits, waits for completion, and immediately issues
the next -- so the offered concurrency is exactly the client count,
and throughput is bounded by how much of that concurrency the store's
shard pipelines can actually exploit.

Clients are crash-aware: an operation aborted by its coordinator's
crash is counted and the client moves on (at-most-once semantics; the
per-key history keeps the aborted invocation pending, which the
atomicity checkers handle).
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.api.base import as_cluster
from repro.common.errors import ConfigurationError
from repro.workloads.generators import UniqueValues

#: Default predicate-poll stride for the KV drain loop: the per-event
#: Python predicate call is amortized 16x, at the cost of at most 15
#: leftover pipeline events executing after the last client finishes.
DRAIN_POLL_STRIDE = 16


class ZipfianKeys:
    """Draws keys from a fixed universe with zipfian popularity.

    Rank 1 is the hottest key.  Key ranks are shuffled once (seeded)
    so the hot keys are not always the lexicographically first ones.
    """

    def __init__(
        self,
        num_keys: int = 64,
        s: float = 0.99,
        prefix: str = "key",
        seed: int = 0,
    ):
        if num_keys < 1:
            raise ConfigurationError("num_keys must be >= 1")
        if s < 0:
            raise ConfigurationError("zipf exponent must be >= 0")
        self.num_keys = num_keys
        self.s = s
        width = len(str(num_keys - 1))
        self.keys = [f"{prefix}-{i:0{width}d}" for i in range(num_keys)]
        random.Random(seed).shuffle(self.keys)
        weights = [1.0 / (rank ** s) for rank in range(1, num_keys + 1)]
        total = sum(weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0

    def draw(self, rng: random.Random) -> str:
        """One key, zipf-distributed by rank."""
        return self.keys[bisect.bisect_left(self._cumulative, rng.random())]


@dataclass
class KVWorkloadReport:
    """What happened when a KV workload ran."""

    completed: int = 0
    aborted: int = 0
    #: Operations never submitted (the run ended first).
    unissued: int = 0
    #: Virtual time the workload occupied, seconds.
    duration: float = 0.0
    #: Completed-operation latencies, seconds (submission to reply).
    latencies: List[float] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Completed operations per second of *simulated* time."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)


class KVWorkloadRunner:
    """N closed-loop clients over the sharded store.

    ``kv`` may be a façade :class:`~repro.api.kv.KVBackend` or a raw
    :class:`~repro.kv.store.KVCluster` (lifted automatically); each
    client issues through a :class:`~repro.api.base.Session` pinned to
    its replica.
    """

    def __init__(
        self,
        kv,
        num_clients: int = 16,
        operations_per_client: Union[int, Sequence[int]] = 20,
        read_fraction: float = 0.5,
        keys: Optional[ZipfianKeys] = None,
        seed: int = 0,
        pids: Optional[List[int]] = None,
        values: Optional[UniqueValues] = None,
    ):
        if num_clients < 1:
            raise ConfigurationError("num_clients must be >= 1")
        # A per-client sequence lets callers hit an exact total budget
        # (the scenario runner distributes a phase's share this way);
        # a plain int keeps the uniform classic behavior.
        if isinstance(operations_per_client, int):
            if operations_per_client < 1:
                raise ConfigurationError("operations_per_client must be >= 1")
            per_client = [operations_per_client] * num_clients
        else:
            per_client = list(operations_per_client)
            if len(per_client) != num_clients:
                raise ConfigurationError(
                    "operations_per_client sequence must have one entry "
                    "per client"
                )
            if any(count < 0 for count in per_client) or sum(per_client) < 1:
                raise ConfigurationError(
                    "per-client operation counts must be >= 0 and sum >= 1"
                )
        if not 0.0 <= read_fraction <= 1.0:
            raise ConfigurationError("read_fraction must be in [0, 1]")
        self._kv = as_cluster(kv)
        self._num_clients = num_clients
        self._read_fraction = read_fraction
        self._keys = keys if keys is not None else ZipfianKeys(seed=seed)
        self._rng = random.Random(seed)
        # ``values`` may be shared across runners (scenario phases) so
        # written values stay unique over the whole run.
        self._values = values if values is not None else UniqueValues()
        self._report = KVWorkloadReport()
        self._remaining = per_client
        self._active = 0
        # Replicas clients are pinned to; restricting this keeps a run
        # live when some replicas never recover (crash-stop scenarios).
        if pids is None:
            pids = list(range(self._kv.num_processes))
        elif not pids or any(
            not 0 <= pid < self._kv.num_processes for pid in pids
        ):
            raise ConfigurationError("pids must be a non-empty list of replica ids")
        self._pids = list(pids)
        self._sessions = {pid: self._kv.session(pid) for pid in self._pids}

    def run(
        self,
        timeout: float = 120.0,
        preload: bool = True,
        poll_every: int = DRAIN_POLL_STRIDE,
        max_events: int = 1_000_000,
    ) -> KVWorkloadReport:
        """Drive every client to completion (or until ``timeout``).

        With ``preload`` (the default) the key universe's register
        instances are provisioned and initialized before the measured
        window opens, so throughput reflects steady state rather than
        first-touch initialization logs.

        The drain predicate is amortized with ``poll_every`` (see
        :meth:`repro.sim.kernel.Kernel.run_until`): after the last
        client settles, at most ``poll_every - 1`` leftover pipeline
        events execute before the run stops, a negligible tail on the
        measured duration.  Pass ``poll_every=1`` for replay-exact
        stops.
        """
        if preload:
            self._kv.preload(self._keys.keys, timeout=timeout)
        started_at = self._kv.now
        self._active = self._num_clients
        for client in range(self._num_clients):
            # Client affinity: client i talks to replica i mod N, like
            # a connection pinned to its nearest server.
            self._next_op(client, self._pids[client % len(self._pids)])
        self._kv.run_until(
            lambda: self._active == 0, timeout=timeout, poll_every=poll_every,
            max_events=max_events,
        )
        self._report.unissued = sum(self._remaining)
        self._report.duration = self._kv.now - started_at
        return self._report

    def _next_op(self, client: int, pid: int) -> None:
        if self._remaining[client] == 0:
            self._active -= 1
            return
        self._remaining[client] -= 1
        key = self._keys.draw(self._rng)
        session = self._sessions[pid]
        if self._rng.random() < self._read_fraction:
            handle = session.read(key)
        else:
            handle = session.write(self._values(pid), key)
        handle.add_callback(
            lambda h, client=client, pid=pid: self._on_settled(client, pid, h)
        )

    def _on_settled(self, client: int, pid: int, handle) -> None:
        if handle.done:
            self._report.completed += 1
            latency = handle.latency
            if latency is not None:
                self._report.latencies.append(latency)
        else:
            self._report.aborted += 1
        # Issue the next operation from a fresh kernel event rather
        # than inside the settling call stack.
        self._kv.defer(0.0, self._next_op, client, pid)


def run_kv_closed_loop(
    kv,
    num_clients: int = 16,
    operations_per_client: int = 20,
    read_fraction: float = 0.5,
    num_keys: int = 64,
    zipf_s: float = 0.99,
    seed: int = 0,
    timeout: float = 120.0,
    preload: bool = True,
) -> KVWorkloadReport:
    """Convenience wrapper: zipfian closed-loop mix on ``kv``."""
    keys = ZipfianKeys(num_keys=num_keys, s=zipf_s, seed=seed)
    runner = KVWorkloadRunner(
        kv,
        num_clients=num_clients,
        operations_per_client=operations_per_client,
        read_fraction=read_fraction,
        keys=keys,
        seed=seed,
    )
    return runner.run(timeout=timeout, preload=preload)
