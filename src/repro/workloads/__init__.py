"""Workload generation for experiments and soak tests."""

from repro.workloads.generators import (
    ClientPlan,
    OperationMix,
    UniqueValues,
    WorkloadReport,
    WorkloadRunner,
    run_closed_loop,
)

__all__ = [
    "ClientPlan",
    "OperationMix",
    "UniqueValues",
    "WorkloadReport",
    "WorkloadRunner",
    "run_closed_loop",
]
