"""Workload generation for experiments and soak tests."""

from repro.workloads.generators import (
    ClientPlan,
    OperationMix,
    UniqueValues,
    WorkloadReport,
    WorkloadRunner,
    run_closed_loop,
)
from repro.workloads.kv import (
    KVWorkloadReport,
    KVWorkloadRunner,
    ZipfianKeys,
    run_kv_closed_loop,
)

__all__ = [
    "ClientPlan",
    "KVWorkloadReport",
    "KVWorkloadRunner",
    "OperationMix",
    "UniqueValues",
    "WorkloadReport",
    "WorkloadRunner",
    "ZipfianKeys",
    "run_closed_loop",
    "run_kv_closed_loop",
]
