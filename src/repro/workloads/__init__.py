"""Closed-loop workload drivers for experiments, benchmarks and scenarios.

Reproduces the paper's closed-loop pattern -- each client issues an
operation, waits for the reply, issues the next -- on the simulator,
where "waiting" means chaining invocations off completion callbacks so
clients stay concurrent in virtual time.  Two drivers:

* :class:`~repro.workloads.generators.WorkloadRunner` /
  :func:`~repro.workloads.generators.run_closed_loop` -- per-process
  operation plans against the single register of a
  :class:`~repro.cluster.SimCluster`;
* :class:`~repro.workloads.kv.KVWorkloadRunner` /
  :func:`~repro.workloads.kv.run_kv_closed_loop` -- N clients drawing
  :class:`~repro.workloads.kv.ZipfianKeys` against the sharded
  :class:`~repro.kv.store.KVCluster`.

Both are crash-aware (an operation aborted by its coordinator's crash
is counted and the client carries on) and fully seeded; the scenario
layer (:mod:`repro.scenarios`) composes them into multi-phase runs.
"""

from repro.workloads.generators import (
    ClientPlan,
    OperationMix,
    UniqueValues,
    WorkloadReport,
    WorkloadRunner,
    run_closed_loop,
)
from repro.workloads.kv import (
    KVWorkloadReport,
    KVWorkloadRunner,
    ZipfianKeys,
    run_kv_closed_loop,
)

__all__ = [
    "ClientPlan",
    "KVWorkloadReport",
    "KVWorkloadRunner",
    "OperationMix",
    "UniqueValues",
    "WorkloadReport",
    "WorkloadRunner",
    "ZipfianKeys",
    "run_closed_loop",
    "run_kv_closed_loop",
]
