"""repro -- Robust emulations of shared memory in a crash-recovery model.

A faithful, executable reproduction of Guerraoui & Levy, *Robust
Emulations of Shared Memory in a Crash-Recovery Model* (ICDCS 2004):

* the log-optimal **persistent** and **transient** atomic register
  emulations (Figures 4 and 5 of the paper) plus the crash-stop
  baselines they extend (ABD, Lynch-Shvartsman);
* a deterministic discrete-event simulator calibrated to the paper's
  testbed, and an asyncio/UDP runtime running the same protocol code;
* black-box and white-box checkers for the paper's two consistency
  criteria, and engine-level measurement of the paper's cost metric
  (causal logs per operation);
* a sharded key-value store (:mod:`repro.kv`) multiplexing many
  register instances over one cluster, with batching and per-key
  atomicity checking;
* a declarative scenario suite (:mod:`repro.scenarios`): named,
  seed-reproducible fault/workload programs -- rolling crashes,
  partitions, loss bursts, the 100k-operation soak -- with
  incremental verification (``python -m repro soak --list``);
* experiment harnesses regenerating every figure of the evaluation.

Quickstart::

    from repro import SimCluster

    cluster = SimCluster(protocol="persistent", num_processes=5)
    cluster.start()
    cluster.write_sync(pid=0, value="hello")
    assert cluster.read_sync(pid=1) == "hello"
    cluster.crash(0)
    cluster.recover(0, wait=True)
    assert cluster.read_sync(pid=0) == "hello"
    assert cluster.check_atomicity().ok

Key-value quickstart::

    from repro import KVCluster

    kv = KVCluster(protocol="persistent", num_processes=5, num_shards=8)
    kv.start()
    kv.write_sync("user:42", {"name": "ada"})
    assert kv.read_sync("user:42") == {"name": "ada"}
    assert kv.check_atomicity().ok
"""

from repro.cluster import SimCluster
from repro.common.config import (
    ClusterConfig,
    NetworkConfig,
    StorageConfig,
    PAPER_DELTA,
    PAPER_LAMBDA,
)
from repro.common.errors import (
    ConfigurationError,
    NotRecoveredError,
    OperationAborted,
    ProcessCrashed,
    ProtocolError,
    ReproError,
    StorageError,
    TransportError,
)
from repro.common.timestamps import Tag, bottom_tag
from repro.common.values import SizedValue
from repro.history.checker import (
    AtomicityVerdict,
    check_persistent_atomicity,
    check_transient_atomicity,
)
from repro.history.history import History
from repro.history.partition import partition_history
from repro.kv import (
    ConsistentHashShardMap,
    HashShardMap,
    KVAtomicityReport,
    KVCluster,
    ShardMap,
)
from repro.metrics import RunMetrics, collect_metrics
from repro.protocol.registry import PROTOCOLS, get_protocol_class
from repro.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioResult,
    get_scenario,
    list_scenarios,
    run_scenario,
)
from repro.sim.failures import CrashSchedule, RandomCrashPlan

__version__ = "1.1.0"

__all__ = [
    "AtomicityVerdict",
    "ClusterConfig",
    "ConfigurationError",
    "ConsistentHashShardMap",
    "CrashSchedule",
    "HashShardMap",
    "History",
    "KVAtomicityReport",
    "KVCluster",
    "NetworkConfig",
    "NotRecoveredError",
    "OperationAborted",
    "PAPER_DELTA",
    "PAPER_LAMBDA",
    "PROTOCOLS",
    "ProcessCrashed",
    "ProtocolError",
    "RandomCrashPlan",
    "ReproError",
    "RunMetrics",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "ShardMap",
    "SimCluster",
    "SizedValue",
    "StorageConfig",
    "StorageError",
    "Tag",
    "TransportError",
    "bottom_tag",
    "check_persistent_atomicity",
    "check_transient_atomicity",
    "collect_metrics",
    "get_protocol_class",
    "get_scenario",
    "list_scenarios",
    "partition_history",
    "run_scenario",
    "__version__",
]
