"""repro -- Robust emulations of shared memory in a crash-recovery model.

A faithful, executable reproduction of Guerraoui & Levy, *Robust
Emulations of Shared Memory in a Crash-Recovery Model* (ICDCS 2004):

* the log-optimal **persistent** and **transient** atomic register
  emulations (Figures 4 and 5 of the paper) plus the crash-stop
  baselines they extend (ABD, Lynch-Shvartsman);
* a deterministic discrete-event simulator calibrated to the paper's
  testbed, and an asyncio/UDP runtime running the same protocol code;
* black-box and white-box checkers for the paper's two consistency
  criteria, and engine-level measurement of the paper's cost metric
  (causal logs per operation);
* one unified client API (:mod:`repro.api`): ``open_cluster`` returns
  a backend-agnostic ``Cluster`` -- sessions, fault verbs, clock
  control and a merged ``check()`` verdict -- over the simulator, the
  KV store, or the live runtime, with per-backend capability flags;
* a sharded key-value store (:mod:`repro.kv`) multiplexing many
  register instances over one cluster, with batching and per-key
  atomicity checking;
* a declarative scenario suite (:mod:`repro.scenarios`): named,
  seed-reproducible fault/workload programs -- rolling crashes,
  partitions, loss bursts, the 100k-operation soak -- with
  incremental verification (``python -m repro soak --list``);
* experiment harnesses regenerating every figure of the evaluation.

Quickstart -- one front door over every backend (:mod:`repro.api`)::

    from repro import open_cluster

    with open_cluster(backend="sim", protocol="persistent", seed=7) as c:
        writer, reader = c.session(0), c.session(1)
        writer.write_sync("hello")
        assert reader.read_sync() == "hello"
        c.crash(0)
        c.recover(0)
        assert c.check().ok

Swap ``backend="sim"`` for ``"kv"`` (the sharded store) or ``"live"``
(real UDP + fsync) and the same program runs unchanged.  The low-level
front-ends stay available::

    from repro import KVCluster

    kv = KVCluster(protocol="persistent", num_processes=5, num_shards=8)
    kv.start()
    kv.write_sync("user:42", {"name": "ada"})
    assert kv.read_sync("user:42") == {"name": "ada"}
    assert kv.check_atomicity().ok
"""

from repro.api import (
    Cluster,
    OpHandle,
    Session,
    Verdict,
    as_cluster,
    open_cluster,
)

from repro.cluster import SimCluster
from repro.common.config import (
    ClusterConfig,
    NetworkConfig,
    StorageConfig,
    PAPER_DELTA,
    PAPER_LAMBDA,
)
from repro.common.errors import (
    CapabilityError,
    ConfigurationError,
    NotRecoveredError,
    OperationAborted,
    ProcessCrashed,
    ProtocolError,
    ReproError,
    StorageError,
    TransportError,
)
from repro.common.timestamps import Tag, bottom_tag
from repro.common.values import SizedValue
from repro.history.checker import (
    AtomicityVerdict,
    check_persistent_atomicity,
    check_transient_atomicity,
)
from repro.history.history import History
from repro.history.partition import partition_history
from repro.kv import (
    ConsistentHashShardMap,
    HashShardMap,
    KVAtomicityReport,
    KVCluster,
    ShardMap,
)
from repro.metrics import RunMetrics, collect_metrics
from repro.protocol.registry import PROTOCOLS, get_protocol_class
from repro.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioResult,
    get_scenario,
    list_scenarios,
    run_scenario,
)
from repro.sim.failures import CrashSchedule, RandomCrashPlan

__version__ = "1.1.0"

__all__ = [
    "AtomicityVerdict",
    "CapabilityError",
    "Cluster",
    "ClusterConfig",
    "ConfigurationError",
    "ConsistentHashShardMap",
    "CrashSchedule",
    "HashShardMap",
    "History",
    "KVAtomicityReport",
    "KVCluster",
    "NetworkConfig",
    "NotRecoveredError",
    "OpHandle",
    "OperationAborted",
    "PAPER_DELTA",
    "PAPER_LAMBDA",
    "PROTOCOLS",
    "ProcessCrashed",
    "ProtocolError",
    "RandomCrashPlan",
    "ReproError",
    "RunMetrics",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "Session",
    "ShardMap",
    "SimCluster",
    "SizedValue",
    "StorageConfig",
    "StorageError",
    "Tag",
    "TransportError",
    "Verdict",
    "as_cluster",
    "bottom_tag",
    "check_persistent_atomicity",
    "check_transient_atomicity",
    "collect_metrics",
    "get_protocol_class",
    "get_scenario",
    "list_scenarios",
    "open_cluster",
    "partition_history",
    "run_scenario",
    "__version__",
]
