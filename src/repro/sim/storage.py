"""Simulated per-process stable storage.

Models the paper's synchronous file logging (Section V-A): a ``store``
becomes durable only after the configured latency elapses, and the
caller is notified at that instant -- exactly the point where an
algorithm may acknowledge.  Contents survive crashes; *in-flight*
stores do not (a crash before the latency elapsed leaves the old record
in place, the conservative reading of a torn synchronous write).

The storage device is sequential, like a single disk head: concurrent
stores queue behind each other, which matters to protocols that issue a
responder log while another is still in flight.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.common.config import StorageConfig
from repro.common.ids import ProcessId
from repro.sim import tracing
from repro.sim.kernel import Kernel
from repro.sim.tracing import NULL_TRACE, Trace, TraceEvent
from repro.storage.model import StorageLatencyModel

CompletionCallback = Callable[[], None]


class SimStableStorage:
    """One process's crash-surviving key-value log."""

    def __init__(
        self,
        kernel: Kernel,
        pid: ProcessId,
        config: StorageConfig,
        trace: Optional[Trace] = None,
    ):
        self._kernel = kernel
        self._pid = pid
        self._model = StorageLatencyModel(config)
        self._trace = NULL_TRACE if trace is None else trace
        # Durable records; survives crash() calls by design.
        self._records: Dict[str, Tuple[Any, ...]] = {}
        # Sequential device: completion time of the last queued write.
        self._device_free_at = 0.0
        self.stores_completed = 0
        self.stores_lost_to_crash = 0
        self.bytes_logged = 0
        # In-flight stores keyed by a local sequence number, so a crash
        # can void exactly the ones that have not completed yet.
        self._in_flight: Dict[int, Any] = {}
        self._next_store_id = 0
        self._epoch = 0

    @property
    def records(self) -> Dict[str, Tuple[Any, ...]]:
        """Live view of the durable records (read-only by convention)."""
        return self._records

    def store(
        self,
        key: str,
        record: Tuple[Any, ...],
        size: int,
        on_durable: CompletionCallback,
        op: Optional[Any] = None,
    ) -> None:
        """Write ``record`` under ``key``; call ``on_durable`` when durable.

        The write is billed the synchronous-log latency and queues
        behind any store still in progress on this device.  ``op`` is
        the operation the log belongs to (trace attribution only).
        """
        now = self._kernel.now
        latency = self._model.sample(size, self._kernel.rng)
        start = max(now, self._device_free_at)
        done_at = start + latency
        self._device_free_at = done_at
        epoch = self._epoch
        store_id = self._next_store_id
        self._next_store_id += 1
        trace = self._trace
        if trace.wants(tracing.STORE_BEGIN):
            trace.emit(
                TraceEvent(
                    time=now,
                    kind=tracing.STORE_BEGIN,
                    pid=self._pid,
                    detail={"key": key, "size": size, "done_at": done_at, "op": op},
                )
            )
        else:
            trace.tick(tracing.STORE_BEGIN, now, self._pid, op)
        handle = self._kernel.schedule_cancellable(
            done_at - now,
            self._complete, store_id, key, record, size, on_durable, epoch, op,
        )
        self._in_flight[store_id] = handle

    def _complete(
        self,
        store_id: int,
        key: str,
        record: Tuple[Any, ...],
        size: int,
        on_durable: CompletionCallback,
        epoch: int,
        op: Optional[Any] = None,
    ) -> None:
        self._in_flight.pop(store_id, None)
        if epoch != self._epoch:
            return  # voided by a crash
        self._records[key] = record
        self.stores_completed += 1
        self.bytes_logged += size
        trace = self._trace
        if trace.wants(tracing.STORE_END):
            trace.emit(
                TraceEvent(
                    time=self._kernel.now,
                    kind=tracing.STORE_END,
                    pid=self._pid,
                    detail={"key": key, "size": size, "op": op},
                )
            )
        else:
            trace.tick(tracing.STORE_END, self._kernel.now, self._pid, op)
        on_durable()

    def crash(self) -> None:
        """Void in-flight stores; durable records are untouched."""
        for handle in self._in_flight.values():
            if not handle.cancelled:
                self.stores_lost_to_crash += 1
            handle.cancel()
        self._in_flight.clear()
        self._epoch += 1
        # The device itself is immediately reusable after restart.
        self._device_free_at = self._kernel.now

    def retrieve(self, key: str) -> Optional[Tuple[Any, ...]]:
        """Read the durable record under ``key`` (used by recovery)."""
        return self._records.get(key)
