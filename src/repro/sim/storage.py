"""Simulated per-process stable storage.

Models the paper's synchronous file logging (Section V-A): a ``store``
becomes durable only after the configured latency elapses, and the
caller is notified at that instant -- exactly the point where an
algorithm may acknowledge.  Contents survive crashes; *in-flight*
stores do not (a crash before the latency elapsed leaves the old record
in place, the conservative reading of a torn synchronous write).

The storage device is sequential, like a single disk head: concurrent
stores queue behind each other, which matters to protocols that issue a
responder log while another is still in flight.

Log accounting.  The records dictionary overwrites in place, but a
real synchronous log is append-only: every completed store grows it
until a checkpoint compacts it.  :attr:`~SimStableStorage.log_records`
and :attr:`~SimStableStorage.log_bytes` model that append-only
footprint -- they only shrink when the host, after truncating
superseded records below a committed checkpoint, calls
:meth:`~SimStableStorage.compact` to rewrite the log as snapshot +
live suffix.  :meth:`~SimStableStorage.recovery_scan_latency` prices
reading that log back at boot (per-record seeks dominate, hence the
``base_latency`` term per record), which is what makes recovery time
*measurably* linear in ops executed without checkpointing and flat
with it.

Fault injection.  :meth:`~SimStableStorage.corrupt` (drop a durable
record, as a quarantined unreadable file), :meth:`~SimStableStorage.
lose_next_stores` (the device acknowledges but the record never
lands -- a lying fsync), and :meth:`~SimStableStorage.set_slow`
(additive latency window, a degraded disk) back the scenario-level
storage fault primitives in :mod:`repro.scenarios.faults`.
"""

# repro: hot-path
# (HOT001: every per-event emitter below must guard TraceEvent/emit
# construction behind trace.wants() and tick() on the fast path.)

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.common.config import StorageConfig
from repro.common.ids import ProcessId
from repro.sim import tracing
from repro.sim.kernel import Kernel
from repro.sim.tracing import NULL_TRACE, Trace, TraceEvent
from repro.storage.model import StorageLatencyModel

CompletionCallback = Callable[[], None]


class SimStableStorage:
    """One process's crash-surviving key-value log."""

    def __init__(
        self,
        kernel: Kernel,
        pid: ProcessId,
        config: StorageConfig,
        trace: Optional[Trace] = None,
    ):
        self._kernel = kernel
        self._pid = pid
        self._model = StorageLatencyModel(config)
        self._trace = NULL_TRACE if trace is None else trace
        # Durable records; survives crash() calls by design.
        self._records: Dict[str, Tuple[Any, ...]] = {}
        # Billed size of the live record under each key, for
        # compaction accounting.
        self._sizes: Dict[str, int] = {}
        # Sequential device: completion time of the last queued write.
        self._device_free_at = 0.0
        self.stores_completed = 0
        self.stores_lost_to_crash = 0
        self.bytes_logged = 0
        # Append-only log footprint: grows per completed store, reset
        # to snapshot + live suffix by compact().
        self.log_records = 0
        self.log_bytes = 0
        self.compactions = 0
        # Injected-fault counters.
        self.records_corrupted = 0
        self.stores_lost = 0
        self._lose_next = 0
        self._slow_extra = 0.0
        # In-flight stores keyed by a local sequence number, so a crash
        # can void exactly the ones that have not completed yet.
        self._in_flight: Dict[int, Any] = {}
        self._next_store_id = 0
        self._epoch = 0

    @property
    def records(self) -> Dict[str, Tuple[Any, ...]]:
        """Live view of the durable records (read-only by convention)."""
        return self._records

    def store(
        self,
        key: str,
        record: Tuple[Any, ...],
        size: int,
        on_durable: CompletionCallback,
        op: Optional[Any] = None,
    ) -> None:
        """Write ``record`` under ``key``; call ``on_durable`` when durable.

        The write is billed the synchronous-log latency and queues
        behind any store still in progress on this device.  ``op`` is
        the operation the log belongs to (trace attribution only).
        """
        now = self._kernel.now
        latency = self._model.sample(size, self._kernel.rng) + self._slow_extra
        start = max(now, self._device_free_at)
        done_at = start + latency
        self._device_free_at = done_at
        epoch = self._epoch
        store_id = self._next_store_id
        self._next_store_id += 1
        trace = self._trace
        if trace.wants(tracing.STORE_BEGIN):
            trace.emit(
                TraceEvent(
                    time=now,
                    kind=tracing.STORE_BEGIN,
                    pid=self._pid,
                    detail={"key": key, "size": size, "done_at": done_at, "op": op},
                )
            )
        else:
            trace.tick(tracing.STORE_BEGIN, now, self._pid, op)
        handle = self._kernel.schedule_cancellable(
            done_at - now,
            self._complete, store_id, key, record, size, on_durable, epoch, op,
        )
        self._in_flight[store_id] = handle

    def _complete(
        self,
        store_id: int,
        key: str,
        record: Tuple[Any, ...],
        size: int,
        on_durable: CompletionCallback,
        epoch: int,
        op: Optional[Any] = None,
    ) -> None:
        self._in_flight.pop(store_id, None)
        if epoch != self._epoch:
            return  # voided by a crash
        if self._lose_next > 0:
            # Lying-fsync fault: the device acknowledges (the caller's
            # completion still fires below) but the record never lands.
            self._lose_next -= 1
            self.stores_lost += 1
        else:
            self._records[key] = record
            self._sizes[key] = size
            self.stores_completed += 1
            self.bytes_logged += size
            self.log_records += 1
            self.log_bytes += size
        trace = self._trace
        if trace.wants(tracing.STORE_END):
            trace.emit(
                TraceEvent(
                    time=self._kernel.now,
                    kind=tracing.STORE_END,
                    pid=self._pid,
                    detail={"key": key, "size": size, "op": op},
                )
            )
        else:
            trace.tick(tracing.STORE_END, self._kernel.now, self._pid, op)
        on_durable()

    def crash(self) -> None:
        """Void in-flight stores; durable records are untouched."""
        for handle in self._in_flight.values():
            if not handle.cancelled:
                self.stores_lost_to_crash += 1
            handle.cancel()
        self._in_flight.clear()
        self._epoch += 1
        # The device itself is immediately reusable after restart.
        self._device_free_at = self._kernel.now

    def retrieve(self, key: str) -> Optional[Tuple[Any, ...]]:
        """Read the durable record under ``key`` (used by recovery)."""
        return self._records.get(key)

    # -- checkpoint support ----------------------------------------------

    def record_size(self, key: str) -> int:
        """Billed size of the live record under ``key`` (0 if absent)."""
        return self._sizes.get(key, 0)

    def delete(self, key: str) -> None:
        """Drop the live record under ``key`` (checkpoint truncation).

        Only the live view shrinks; the append-only footprint is
        unchanged until :meth:`compact` rewrites the log.
        """
        self._records.pop(key, None)
        self._sizes.pop(key, None)

    def compact(self) -> None:
        """Rewrite the log as exactly the live records.

        Called by the host after a committed checkpoint truncated the
        superseded records: the compacted log is the snapshot record
        plus the untruncated suffix, so the footprint becomes the sum
        of the live record sizes.
        """
        self.log_records = len(self._records)
        self.log_bytes = sum(self._sizes.values())
        self.compactions += 1

    def recovery_scan_latency(self) -> float:
        """Time to read the whole log back at recovery, in seconds.

        Seek-dominated random reads: one ``base_latency`` per log
        record plus the payload at device bandwidth.  Deterministic
        (no jitter, no randomness) so seeded runs stay reproducible.
        """
        config = self._model.config
        return (
            self.log_records * config.base_latency
            + self.log_bytes / config.bandwidth
        )

    # -- fault injection -------------------------------------------------

    def corrupt(self, key: str) -> bool:
        """Make the record under ``key`` unreadable, as if quarantined.

        Models :class:`repro.runtime.storage.FileStableStorage` finding
        an undecodable record file and renaming it aside: the key
        simply stops resolving.  Returns whether a record was present.
        """
        if key not in self._records:
            return False
        self._records.pop(key, None)
        self._sizes.pop(key, None)
        self.records_corrupted += 1
        return True

    def lose_next_stores(self, count: int = 1) -> None:
        """Silently drop the next ``count`` completed stores.

        The completion callback still fires (the device *acknowledged*
        the write) but the record never becomes durable -- the
        classic lying-fsync fault.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._lose_next += count

    def set_slow(self, extra_latency: float) -> None:
        """Add ``extra_latency`` seconds to every store until cleared."""
        if extra_latency < 0.0:
            raise ValueError(
                f"extra_latency must be >= 0, got {extra_latency}"
            )
        self._slow_extra = extra_latency

    def clear_slow(self) -> None:
        """End a :meth:`set_slow` window."""
        self._slow_extra = 0.0
