"""Deterministic discrete-event simulation substrate.

This package emulates the paper's testbed in software:

* :mod:`repro.sim.kernel` -- virtual clock and event queue;
* :mod:`repro.sim.network` -- fair-lossy message-passing channels with
  size-dependent delays, drops, duplication, partitions and slow-link
  penalties;
* :mod:`repro.sim.storage` -- per-process stable storage whose contents
  survive crashes while volatile state does not;
* :mod:`repro.sim.node` -- hosts one sans-io protocol instance, executes
  its effects, and implements crash/recovery;
* :mod:`repro.sim.failures` -- crash/recovery schedules and adversaries;
* :mod:`repro.sim.tracing` -- structured event traces and metrics.

Everything is deterministic given a seed: the kernel breaks ties by
insertion order, and all randomness flows from one seeded generator.
"""

from repro.sim.invariants import InvariantMonitor, InvariantViolation
from repro.sim.kernel import EventHandle, Kernel
from repro.sim.network import SimNetwork
from repro.sim.node import SimNode
from repro.sim.storage import SimStableStorage
from repro.sim.tracing import NULL_TRACE, Trace, TraceEvent

__all__ = [
    "EventHandle",
    "InvariantMonitor",
    "InvariantViolation",
    "Kernel",
    "NULL_TRACE",
    "SimNetwork",
    "SimNode",
    "SimStableStorage",
    "Trace",
    "TraceEvent",
]
