"""Discrete-event simulation kernel: virtual clock plus event queue.

The kernel is deliberately tiny and deterministic.  Events scheduled for
the same instant fire in insertion order, and the only source of
randomness is the seeded :class:`random.Random` the kernel owns, so a
run is a pure function of (program, seed).  That determinism is what
lets the test suite replay the paper's adversarial schedules (runs
rho_1 .. rho_4 of the lower-bound proofs) exactly.

Hot-loop design.  A simulated message costs at least two kernel events,
so the queue is kept allocation-free on the common path: an event is a
plain ``(time, seq, callback, args)`` tuple (tuples compare in C, and
``seq`` is unique so comparison never reaches the callback).  Only
:meth:`Kernel.schedule_cancellable` -- used for timers and other events
that may be revoked -- pays for an :class:`EventHandle`; its heap entry
is ``(time, seq, handle, None)``, distinguished by the ``None`` in the
args slot (real argument tuples are never ``None``).  Cancellation is
O(1): the handle flips a flag and the kernel skips the entry when it
surfaces.  A live-event counter keeps :attr:`Kernel.pending_events`
O(1), and the heap is compacted whenever cancelled entries outnumber
live ones, so mass-cancelling timers cannot leak queue memory.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, List, Optional, Tuple

#: Minimum heap size before cancellation triggers a compaction sweep.
_COMPACT_MIN = 64


class EventHandle:
    """A cancellable reference to one scheduled callback."""

    __slots__ = ("_kernel", "callback", "args", "cancelled", "fired", "time")

    def __init__(
        self,
        kernel: "Kernel",
        time: float,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
    ):
        self._kernel = kernel
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        self._kernel._on_cancel()


class Kernel:
    """Virtual clock and event queue driving one simulation run."""

    def __init__(self, seed: int = 0):
        self._now = 0.0
        # Entries: (time, seq, callback, args) or (time, seq, handle, None).
        self._queue: List[Tuple[float, int, Any, Any]] = []
        self._seq = itertools.count()
        self._rng = random.Random(seed)
        self._events_processed = 0
        self._live = 0
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def rng(self) -> random.Random:
        """The run's single seeded random stream."""
        return self._rng

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for run budgets)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events."""
        return self._live

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time.

        This is the allocation-free fast path; the event cannot be
        revoked.  Use :meth:`schedule_cancellable` when the caller needs
        a handle to :meth:`~EventHandle.cancel`.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, (self._now + delay, next(self._seq), callback, args)
        )
        self._live += 1

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} which is before now ({self._now})"
            )
        self.schedule(time - self._now, callback, *args)

    def schedule_cancellable(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Like :meth:`schedule`, but returns a cancellable handle."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        handle = EventHandle(self, self._now + delay, callback, args)
        heapq.heappush(self._queue, (handle.time, next(self._seq), handle, None))
        self._live += 1
        return handle

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if the queue is empty."""
        queue = self._queue
        while queue:
            time, _, target, args = heapq.heappop(queue)
            if args is None:  # cancellable entry: target is its handle
                if target.cancelled:
                    self._cancelled -= 1
                    continue
                target.fired = True
                callback, args = target.callback, target.args
            else:
                callback = target
            self._live -= 1
            self._now = time
            self._events_processed += 1
            callback(*args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Drain the event queue.

        ``until`` bounds virtual time (events after it stay queued and
        the clock advances exactly to ``until``); ``max_events`` bounds
        the number of callbacks, guarding against livelock in buggy or
        adversarial configurations.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return
            next_time = self._peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                return
            self.step()
            executed += 1
        if until is not None and until > self._now:
            self._now = until

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_events: int = 1_000_000,
        timeout: Optional[float] = None,
        poll_every: int = 1,
    ) -> bool:
        """Run until ``predicate()`` holds.

        Returns ``True`` if the predicate was satisfied, ``False`` if
        the queue drained, the event budget ran out, or virtual time
        passed ``timeout`` first.

        ``poll_every`` amortizes the predicate: it is evaluated every
        ``poll_every`` executed events instead of before every single
        one.  The default of 1 preserves exact stop positions (no event
        runs after the predicate turns true); closed-loop drivers that
        tolerate up to ``poll_every - 1`` events of overshoot pass a
        larger stride so a long drain stops paying a Python call per
        kernel event.  ``timeout`` stays exact either way.
        """
        if poll_every < 1:
            raise ValueError(f"poll_every must be >= 1, got {poll_every}")
        deadline = None if timeout is None else self._now + timeout
        executed = 0
        while executed < max_events:
            if predicate():
                return True
            burst = min(poll_every, max_events - executed)
            for _ in range(burst):
                if deadline is not None:
                    next_time = self._peek_time()
                    if next_time is not None and next_time > deadline:
                        self._now = deadline
                        return predicate()
                if not self.step():
                    return predicate()
                executed += 1
        return predicate()

    def _peek_time(self) -> Optional[float]:
        """Time of the next live event, shedding cancelled entries."""
        queue = self._queue
        while queue:
            entry = queue[0]
            if entry[3] is None and entry[2].cancelled:
                heapq.heappop(queue)
                self._cancelled -= 1
                continue
            return entry[0]
        return None

    def _on_cancel(self) -> None:
        """Bookkeeping for one newly-cancelled live entry."""
        self._live -= 1
        self._cancelled += 1
        if (
            self._cancelled * 2 > len(self._queue)
            and len(self._queue) >= _COMPACT_MIN
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify."""
        self._queue = [
            entry
            for entry in self._queue
            if entry[3] is not None or not entry[2].cancelled
        ]
        heapq.heapify(self._queue)
        self._cancelled = 0
