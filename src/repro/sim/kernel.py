"""Discrete-event simulation kernel: virtual clock plus event queue.

The kernel is deliberately tiny and deterministic.  Events scheduled for
the same instant fire in insertion order, and the only source of
randomness is the seeded :class:`random.Random` the kernel owns, so a
run is a pure function of (program, seed).  That determinism is what
lets the test suite replay the paper's adversarial schedules (runs
rho_1 .. rho_4 of the lower-bound proofs) exactly.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A cancellable reference to one scheduled callback."""

    __slots__ = ("callback", "args", "cancelled", "time")

    def __init__(self, time: float, callback: Callable[..., None], args: Tuple[Any, ...]):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.cancelled = True


class Kernel:
    """Virtual clock and event queue driving one simulation run."""

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._queue: List[_QueueEntry] = []
        self._seq = itertools.count()
        self._rng = random.Random(seed)
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def rng(self) -> random.Random:
        """The run's single seeded random stream."""
        return self._rng

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for run budgets)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events."""
        return sum(1 for entry in self._queue if not entry.handle.cancelled)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        handle = EventHandle(self._now + delay, callback, args)
        heapq.heappush(self._queue, _QueueEntry(handle.time, next(self._seq), handle))
        return handle

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} which is before now ({self._now})"
            )
        return self.schedule(time - self._now, callback, *args)

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.handle.cancelled:
                continue
            self._now = entry.time
            self._events_processed += 1
            entry.handle.callback(*entry.handle.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Drain the event queue.

        ``until`` bounds virtual time (events after it stay queued and
        the clock advances exactly to ``until``); ``max_events`` bounds
        the number of callbacks, guarding against livelock in buggy or
        adversarial configurations.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return
            next_entry = self._peek()
            if next_entry is None:
                break
            if until is not None and next_entry.time > until:
                self._now = until
                return
            self.step()
            executed += 1
        if until is not None and until > self._now:
            self._now = until

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_events: int = 1_000_000,
        timeout: Optional[float] = None,
    ) -> bool:
        """Run until ``predicate()`` holds.

        Returns ``True`` if the predicate was satisfied, ``False`` if
        the queue drained, the event budget ran out, or virtual time
        passed ``timeout`` first.
        """
        deadline = None if timeout is None else self._now + timeout
        for _ in range(max_events):
            if predicate():
                return True
            if deadline is not None:
                next_entry = self._peek()
                if next_entry is not None and next_entry.time > deadline:
                    self._now = deadline
                    return predicate()
            if not self.step():
                return predicate()
        return predicate()

    def _peek(self) -> Optional[_QueueEntry]:
        while self._queue and self._queue[0].handle.cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None
