"""Structured traces of simulation runs.

Every interesting event in a run -- sends, deliveries, drops, stores,
invocations, replies, crashes, recoveries -- is appended to a
:class:`Trace` as a :class:`TraceEvent`.  The trace is the single
source of truth for:

* the failure injector (triggers fire on trace events, which is how the
  adversarial schedules of the lower-bound proofs are reproduced);
* the metrics layer (latencies, message counts, log counts per
  operation);
* debugging (a trace pretty-prints as a readable run transcript).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

# Event kinds, kept as plain strings for cheap filtering.
SEND = "send"
DELIVER = "deliver"
DROP = "drop"
DUPLICATE = "duplicate"
STORE_BEGIN = "store_begin"
STORE_END = "store_end"
INVOKE = "invoke"
REPLY = "reply"
CRASH = "crash"
RECOVER = "recover"
RECOVERY_DONE = "recovery_done"
TIMER = "timer"

ALL_KINDS = (
    SEND,
    DELIVER,
    DROP,
    DUPLICATE,
    STORE_BEGIN,
    STORE_END,
    INVOKE,
    REPLY,
    CRASH,
    RECOVER,
    RECOVERY_DONE,
    TIMER,
)


@dataclass(frozen=True)
class TraceEvent:
    """One event of a simulation run."""

    time: float
    kind: str
    pid: int
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"{self.time * 1e6:10.1f}us p{self.pid} {self.kind:<13} {parts}"


Listener = Callable[[TraceEvent], None]


class Trace:
    """Append-only event log with live listeners.

    Listeners run synchronously at append time, *before* the simulator
    processes the next event -- that is what lets a failure injector
    crash a process "immediately after its first store completes",
    mirroring the instant-precise schedules in the paper's proofs.
    """

    def __init__(self, capture: bool = True):
        self._capture = capture
        self._events: List[TraceEvent] = []
        self._listeners: List[Listener] = []
        self._counts: Dict[str, int] = {}

    def emit(self, event: TraceEvent) -> None:
        """Record ``event`` and notify listeners."""
        if self._capture:
            self._events.append(event)
        self._counts[event.kind] = self._counts.get(event.kind, 0) + 1
        for listener in list(self._listeners):
            listener(event)

    def subscribe(self, listener: Listener) -> Callable[[], None]:
        """Register ``listener``; returns an unsubscribe function."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return unsubscribe

    # -- queries ---------------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        """All captured events, in emission order."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def count(self, kind: str) -> int:
        """Number of events of ``kind`` (works even when not capturing)."""
        return self._counts.get(kind, 0)

    def filter(
        self, kind: Optional[str] = None, pid: Optional[int] = None
    ) -> List[TraceEvent]:
        """Captured events matching the given kind and/or process."""
        return [
            event
            for event in self._events
            if (kind is None or event.kind == kind)
            and (pid is None or event.pid == pid)
        ]

    def format(self, kinds: Optional[List[str]] = None) -> str:
        """Human-readable transcript, optionally restricted to ``kinds``."""
        wanted = set(kinds) if kinds is not None else None
        lines = [
            str(event)
            for event in self._events
            if wanted is None or event.kind in wanted
        ]
        return "\n".join(lines)
