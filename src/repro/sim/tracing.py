"""Structured traces of simulation runs.

Every interesting event in a run -- sends, deliveries, drops, stores,
invocations, replies, crashes, recoveries -- is appended to a
:class:`Trace` as a :class:`TraceEvent`.  The trace is the single
source of truth for:

* the failure injector (triggers fire on trace events, which is how the
  adversarial schedules of the lower-bound proofs are reproduced);
* the metrics layer (latencies, message counts, log counts per
  operation);
* debugging (a trace pretty-prints as a readable run transcript).

Fast path.  Building a :class:`TraceEvent` (a dataclass plus a detail
dict) per simulated message is the single biggest per-event cost when
nobody is looking, so emitters are expected to guard construction::

    if trace.wants(tracing.SEND):
        trace.emit(TraceEvent(...))     # someone captures or listens
    else:
        trace.tick(tracing.SEND)        # count-only, allocation-free

:meth:`Trace.wants` answers in O(1) from a precomputed set: a kind is
wanted when the trace captures, when a listener subscribed to every
kind, or when a listener subscribed to that kind specifically.
:meth:`Trace.tick` keeps :meth:`Trace.count` exact either way, so the
metrics layer sees identical numbers with tracing on or off.
:data:`NULL_TRACE` is a module-level sink for components run without
any trace at all; it wants nothing and refuses listeners.

Flight recorder.  Independently of capture, every trace feeds a
bounded :class:`repro.obs.ring.RingTrace` of ``(time, kind-id, pid,
op)`` codes -- cheap enough to leave always on, so the tail of any run
is reconstructable after a crash without re-running with capture
enabled.  :meth:`Trace.tick` therefore accepts the event coordinates
as optional positional arguments; emitters pass them on both the fast
and slow paths.  Recording never schedules kernel events or consumes
randomness, so seeded runs are byte-identical with the ring on or off
(``Trace(flight_recorder=False)`` disables it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence

from repro.obs.ring import DEFAULT_CAPACITY, RingTrace

# Event kinds, kept as plain strings for cheap filtering.
SEND = "send"
DELIVER = "deliver"
DROP = "drop"
DUPLICATE = "duplicate"
STORE_BEGIN = "store_begin"
STORE_END = "store_end"
INVOKE = "invoke"
REPLY = "reply"
CRASH = "crash"
RECOVER = "recover"
RECOVERY_DONE = "recovery_done"
TIMER = "timer"
CKPT_BEGIN = "ckpt_begin"
CKPT_TENTATIVE = "ckpt_tentative"
CKPT_COMMIT = "ckpt_commit"

# The ring encodes kinds positionally (KIND_IDS below), so new kinds
# must be appended at the end to keep old flight-recorder exports
# decodable.
ALL_KINDS = (
    SEND,
    DELIVER,
    DROP,
    DUPLICATE,
    STORE_BEGIN,
    STORE_END,
    INVOKE,
    REPLY,
    CRASH,
    RECOVER,
    RECOVERY_DONE,
    TIMER,
    CKPT_BEGIN,
    CKPT_TENTATIVE,
    CKPT_COMMIT,
)

#: kind name -> ring code, the binary encoding of the flight recorder.
KIND_IDS = {kind: code for code, kind in enumerate(ALL_KINDS)}


@dataclass(frozen=True)
class TraceEvent:
    """One event of a simulation run."""

    time: float
    kind: str
    pid: int
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"{self.time * 1e6:10.1f}us p{self.pid} {self.kind:<13} {parts}"


Listener = Callable[[TraceEvent], None]


class Trace:
    """Append-only event log with live listeners.

    Listeners run synchronously at append time, *before* the simulator
    processes the next event -- that is what lets a failure injector
    crash a process "immediately after its first store completes",
    mirroring the instant-precise schedules in the paper's proofs.

    A listener may subscribe to specific event ``kinds``; emitters then
    skip :class:`TraceEvent` construction entirely for kinds nobody
    wants (see the module docstring).
    """

    def __init__(
        self,
        capture: bool = True,
        flight_recorder: bool = True,
        ring_capacity: int = DEFAULT_CAPACITY,
    ):
        self._capture = capture
        self._ring: Optional[RingTrace] = (
            RingTrace(capacity=ring_capacity, kinds=ALL_KINDS)
            if flight_recorder
            else None
        )
        self._events: List[TraceEvent] = []
        #: Listeners for every kind, in subscription order.
        self._all_listeners: List[Listener] = []
        #: kind -> listeners restricted to that kind.
        self._kind_listeners: Dict[str, List[Listener]] = {}
        self._counts: Dict[str, int] = {}
        #: ``None`` means every kind is wanted (capture on, or a
        #: listener subscribed without a kind restriction).
        self._wanted: Optional[FrozenSet[str]] = None
        self._recompute_wanted()

    @property
    def capturing(self) -> bool:
        """Whether emitted events are retained in :attr:`events`."""
        return self._capture

    @property
    def ring(self) -> Optional[RingTrace]:
        """The flight recorder, or ``None`` when disabled."""
        return self._ring

    def wants(self, kind: str) -> bool:
        """Whether an emitter must build a real event for ``kind``."""
        wanted = self._wanted
        return True if wanted is None else kind in wanted

    def tick(
        self, kind: str, time: float = 0.0, pid: int = -1, op: Any = None
    ) -> None:
        """Count one ``kind`` occurrence without building an event.

        The allocation-free sibling of :meth:`emit`, used by emitters
        when :meth:`wants` says nobody would see the event.  Keeps
        :meth:`count` exact with tracing off, and feeds the flight
        recorder the same ``(time, kind, pid, op)`` coordinates a full
        event would carry.
        """
        counts = self._counts
        counts[kind] = counts.get(kind, 0) + 1
        ring = self._ring
        if ring is not None:
            # RingTrace.record, inlined: this is the single hottest
            # telemetry line in the simulator (once per kernel event),
            # and skipping the method call keeps the always-on ring
            # within its overhead budget (see BENCH_trace.json).
            index = ring.next_index
            ring.times[index] = time
            ring.codes[index] = KIND_IDS[kind]
            ring.pids[index] = pid
            ring.ops[index] = op
            index += 1
            if index == ring.capacity:
                ring.next_index = 0
                ring.wraps += 1
            else:
                ring.next_index = index

    def emit(self, event: TraceEvent) -> None:
        """Record ``event`` and notify listeners."""
        kind = event.kind
        if self._capture:
            self._events.append(event)
        counts = self._counts
        counts[kind] = counts.get(kind, 0) + 1
        ring = self._ring
        if ring is not None:
            ring.record(
                event.time, KIND_IDS[kind], event.pid, event.detail.get("op")
            )
        if self._all_listeners:
            for listener in list(self._all_listeners):
                listener(event)
        kind_listeners = self._kind_listeners.get(kind)
        if kind_listeners:
            for listener in list(kind_listeners):
                listener(event)

    def subscribe(
        self, listener: Listener, kinds: Optional[Sequence[str]] = None
    ) -> Callable[[], None]:
        """Register ``listener``; returns an unsubscribe function.

        With ``kinds=None`` the listener sees every event (and forces
        emitters onto the slow path for every kind).  With an explicit
        kind list it sees only those kinds, and every other kind keeps
        its allocation-free fast path.
        """
        if kinds is None:
            self._all_listeners.append(listener)
        else:
            for kind in kinds:
                self._kind_listeners.setdefault(kind, []).append(listener)
        self._recompute_wanted()

        def unsubscribe() -> None:
            if kinds is None:
                if listener in self._all_listeners:
                    self._all_listeners.remove(listener)
            else:
                for kind in kinds:
                    listeners = self._kind_listeners.get(kind, [])
                    if listener in listeners:
                        listeners.remove(listener)
                    if not listeners:
                        self._kind_listeners.pop(kind, None)
            self._recompute_wanted()

        return unsubscribe

    def _recompute_wanted(self) -> None:
        if self._capture or self._all_listeners:
            self._wanted = None
        else:
            self._wanted = frozenset(self._kind_listeners)

    # -- queries ---------------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        """All captured events, in emission order."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def count(self, kind: str) -> int:
        """Number of events of ``kind`` (works even when not capturing)."""
        return self._counts.get(kind, 0)

    def filter(
        self, kind: Optional[str] = None, pid: Optional[int] = None
    ) -> List[TraceEvent]:
        """Captured events matching the given kind and/or process."""
        return [
            event
            for event in self._events
            if (kind is None or event.kind == kind)
            and (pid is None or event.pid == pid)
        ]

    def format(self, kinds: Optional[List[str]] = None) -> str:
        """Human-readable transcript, optionally restricted to ``kinds``."""
        wanted = set(kinds) if kinds is not None else None
        lines = [
            str(event)
            for event in self._events
            if wanted is None or event.kind in wanted
        ]
        return "\n".join(lines)


class NullTrace(Trace):
    """A trace that wants nothing and records nothing.

    Components constructed without a trace share the module-level
    :data:`NULL_TRACE` singleton; it cannot capture and refuses
    listeners, so its fast path can never be deactivated.  Counts are
    dropped too: on a process-wide singleton they would aggregate
    unrelated runs, so keeping them would only cost dict work on the
    hot path to produce a meaningless number.  The flight recorder is
    off for the same reason.
    """

    def __init__(self):
        super().__init__(capture=False, flight_recorder=False)

    def subscribe(
        self, listener: Listener, kinds: Optional[Sequence[str]] = None
    ) -> Callable[[], None]:
        raise ValueError(
            "NULL_TRACE accepts no listeners; construct a Trace(capture=False) "
            "to observe a run without capturing it"
        )

    def tick(
        self, kind: str, time: float = 0.0, pid: int = -1, op: Any = None
    ) -> None:
        pass

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - safety net
        pass


#: Shared sink for components run without any trace.
NULL_TRACE = NullTrace()
