"""Continuous invariant checking over a running simulation.

The atomicity checkers judge a run after the fact; the
:class:`InvariantMonitor` watches it *while it happens*, failing fast
at the first trace event where a structural invariant of the
algorithms breaks.  This catches bugs close to their cause (e.g. an
acknowledgment sent before durability) instead of as a mysterious
non-linearizable history thousands of events later.

Monitored invariants (all are consequences of the algorithms in
Figures 4/5 and of the model):

* **tag monotonicity**: a process's volatile tag never decreases
  except by crashing (volatile state is wiped to bottom, then rebuilt
  from stable storage during recovery);
* **durability lag**: ``durable_tag <= tag`` always -- stable storage
  can lag volatile state, never lead it;
* **stable-written consistency**: the ``written`` record in stable
  storage matches the process's ``durable_tag`` while it is up;
* **quorum sanity**: an operation never counts more responders than
  processes.

Use::

    cluster = SimCluster(...)
    monitor = InvariantMonitor(cluster)
    cluster.start()
    ...
    monitor.assert_clean()
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ReproError
from repro.common.timestamps import Tag, bottom_tag
from repro.protocol.two_round import KEY_WRITTEN, TwoRoundRegisterProtocol
from repro.sim import tracing
from repro.sim.tracing import TraceEvent


class InvariantViolation(ReproError):
    """A structural invariant broke during the run."""


class InvariantMonitor:
    """Watches every trace event and validates node-level invariants."""

    def __init__(self, cluster, fail_fast: bool = True):
        self._cluster = cluster
        self._fail_fast = fail_fast
        self._last_tag: Dict[int, Tag] = {
            node.pid: bottom_tag() for node in cluster.nodes
        }
        self.violations: List[str] = []
        self.events_checked = 0
        self._unsubscribe = cluster.trace.subscribe(self._on_event)

    def close(self) -> None:
        """Stop monitoring."""
        self._unsubscribe()

    def assert_clean(self) -> None:
        """Raise if any violation was recorded (non-fail-fast mode)."""
        if self.violations:
            raise InvariantViolation(
                f"{len(self.violations)} invariant violations; first: "
                f"{self.violations[0]}"
            )

    # -- internals ---------------------------------------------------------

    def _report(self, message: str, event: TraceEvent) -> None:
        full = f"at {event.time * 1e6:.1f}us ({event.kind} p{event.pid}): {message}"
        self.violations.append(full)
        if self._fail_fast:
            raise InvariantViolation(full)

    def _on_event(self, event: TraceEvent) -> None:
        self.events_checked += 1
        for node in self._cluster.nodes:
            protocol = node.protocol
            if not isinstance(protocol, TwoRoundRegisterProtocol):
                continue
            if event.kind == tracing.CRASH and event.pid == node.pid:
                # The crash wipes volatile state; reset the watermark.
                self._last_tag[node.pid] = bottom_tag()
                continue
            if node.crashed:
                continue
            self._check_durability_lag(node, protocol, event)
            self._check_tag_monotonic(node, protocol, event)
            self._check_stable_written(node, protocol, event)
            self._check_quorum_sanity(node, protocol, event)

    def _check_durability_lag(self, node, protocol, event) -> None:
        if protocol.durable_tag > protocol.tag:
            self._report(
                f"p{node.pid}: durable tag {protocol.durable_tag} ahead of "
                f"volatile tag {protocol.tag}",
                event,
            )

    def _check_tag_monotonic(self, node, protocol, event) -> None:
        last = self._last_tag[node.pid]
        if protocol.tag < last:
            self._report(
                f"p{node.pid}: volatile tag went backwards "
                f"({last} -> {protocol.tag}) without a crash",
                event,
            )
        else:
            self._last_tag[node.pid] = protocol.tag

    def _check_stable_written(self, node, protocol, event) -> None:
        if not protocol.LOGS_ON_ADOPT:
            return
        record = node.storage.retrieve(KEY_WRITTEN)
        if record is None:
            return
        stable_tag = Tag.from_tuple(record[0])
        # The record lands on disk an instant before the protocol's
        # completion handler runs, so stable may momentarily lead
        # ``durable_tag`` -- but it must never trail it: ``durable_tag``
        # is only ever set from completed logs of this very record.
        if stable_tag < protocol.durable_tag:
            self._report(
                f"p{node.pid}: stable written tag {stable_tag} trails "
                f"durable_tag {protocol.durable_tag}",
                event,
            )

    def _check_quorum_sanity(self, node, protocol, event) -> None:
        tracker = getattr(protocol, "_tracker", None)
        if tracker is None:
            return
        if tracker.responders > self._cluster.config.num_processes:
            self._report(
                f"p{node.pid}: {tracker.responders} responders exceed "
                f"cluster size",
                event,
            )
