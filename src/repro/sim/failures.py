"""Failure injection: crash/recovery schedules and event-triggered adversaries.

Two styles of injection, both deterministic:

* **Time-based schedules** (:class:`CrashSchedule`): crash/recover given
  processes at fixed virtual instants.  Good for throughput-style
  experiments ("p3 is down between t=2s and t=5s").
* **Trigger-based adversaries** (:class:`TriggerInjector`): fire on
  trace events, e.g. "crash the writer the moment its first ``W``
  message is delivered somewhere, but before its own log completes".
  This is how the runs of the lower-bound proofs (rho_1 .. rho_4,
  Figures 2 and 3 of the paper) are reproduced exactly: the paper's
  adversary controls scheduling at instant precision, and trace
  listeners run synchronously before the simulation proceeds.

:class:`RandomCrashPlan` generates seeded random schedules for the
property-based soak tests, with the constraint knobs needed to keep a
majority eventually up (the termination assumption of Section II).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import ProcessId
from repro.sim.tracing import Trace, TraceEvent

CRASH = "crash"
RECOVER = "recover"


@dataclass(frozen=True)
class FailureAction:
    """One scheduled failure event."""

    time: float
    action: str
    pid: ProcessId

    def __post_init__(self) -> None:
        if self.action not in (CRASH, RECOVER):
            raise ConfigurationError(f"unknown action {self.action!r}")
        if self.time < 0:
            raise ConfigurationError("action time must be >= 0")


class CrashSchedule:
    """A time-ordered list of crash/recover actions.

    The schedule is installed on a cluster with
    :meth:`repro.cluster.SimCluster.install_schedule`; each action is
    executed at its virtual instant.  Actions against a process in the
    wrong state (crashing a crashed process) are skipped with a note in
    the skipped list rather than failing the run -- random schedules
    legitimately race with protocol-driven state.
    """

    def __init__(self, actions: Optional[Sequence[FailureAction]] = None):
        self._actions: List[FailureAction] = sorted(
            actions or [], key=lambda a: a.time
        )
        self.skipped: List[FailureAction] = []

    def crash(self, time: float, pid: ProcessId) -> "CrashSchedule":
        """Add a crash of ``pid`` at ``time`` (chainable)."""
        self._actions.append(FailureAction(time=time, action=CRASH, pid=pid))
        self._actions.sort(key=lambda a: a.time)
        return self

    def recover(self, time: float, pid: ProcessId) -> "CrashSchedule":
        """Add a recovery of ``pid`` at ``time`` (chainable)."""
        self._actions.append(FailureAction(time=time, action=RECOVER, pid=pid))
        self._actions.sort(key=lambda a: a.time)
        return self

    def downtime(self, pid: ProcessId, start: float, end: float) -> "CrashSchedule":
        """Crash ``pid`` at ``start`` and recover it at ``end``."""
        if end <= start:
            raise ConfigurationError("downtime end must be after start")
        return self.crash(start, pid).recover(end, pid)

    @property
    def actions(self) -> List[FailureAction]:
        return list(self._actions)

    def __len__(self) -> int:
        return len(self._actions)


@dataclass
class Trigger:
    """Crash/recover a process when a trace event matches a predicate.

    ``count`` skips the first ``count - 1`` matches; ``delay`` postpones
    the action by that much virtual time after the match (0 = at the
    very instant, before the simulator processes anything else).
    """

    predicate: Callable[[TraceEvent], bool]
    action: str
    pid: ProcessId
    count: int = 1
    delay: float = 0.0
    fired: bool = field(default=False, init=False)
    _seen: int = field(default=0, init=False)

    def matches(self, event: TraceEvent) -> bool:
        if self.fired:
            return False
        if not self.predicate(event):
            return False
        self._seen += 1
        return self._seen >= self.count


class TriggerInjector:
    """Subscribes triggers to a trace and applies their actions.

    The injector needs callables to perform the actions; the cluster
    wires them up.  Trigger actions run *synchronously* inside trace
    emission when ``delay == 0`` -- i.e. between the matched event and
    the next simulator step -- which gives adversarial schedules the
    instant precision the proofs assume.

    The injector subscribes to the trace lazily, on the first installed
    trigger: predicates are opaque, so once any trigger exists it must
    see every event kind, but a cluster that never installs one (the
    common benchmark configuration) keeps the trace's allocation-free
    emission fast path.
    """

    def __init__(
        self,
        trace: Trace,
        crash_fn: Callable[[ProcessId], None],
        recover_fn: Callable[[ProcessId], None],
        schedule_fn: Callable[[float, Callable[[], None]], None],
    ):
        self._triggers: List[Trigger] = []
        self._trace = trace
        self._crash_fn = crash_fn
        self._recover_fn = recover_fn
        self._schedule_fn = schedule_fn
        self._unsubscribe: Optional[Callable[[], None]] = None

    def add(self, trigger: Trigger) -> Trigger:
        """Install a trigger; returns it for later inspection."""
        if self._unsubscribe is None:
            self._unsubscribe = self._trace.subscribe(self._on_event)
        self._triggers.append(trigger)
        return trigger

    def crash_when(
        self,
        predicate: Callable[[TraceEvent], bool],
        pid: ProcessId,
        count: int = 1,
        delay: float = 0.0,
    ) -> Trigger:
        """Shorthand for installing a crash trigger."""
        return self.add(
            Trigger(predicate=predicate, action=CRASH, pid=pid, count=count, delay=delay)
        )

    def recover_when(
        self,
        predicate: Callable[[TraceEvent], bool],
        pid: ProcessId,
        count: int = 1,
        delay: float = 0.0,
    ) -> Trigger:
        """Shorthand for installing a recovery trigger."""
        return self.add(
            Trigger(
                predicate=predicate, action=RECOVER, pid=pid, count=count, delay=delay
            )
        )

    def close(self) -> None:
        """Detach from the trace.  Idempotent."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def _on_event(self, event: TraceEvent) -> None:
        for trigger in self._triggers:
            if not trigger.matches(event):
                continue
            trigger.fired = True
            action = self._make_action(trigger)
            if trigger.delay == 0.0:
                action()
            else:
                self._schedule_fn(trigger.delay, action)

    def _make_action(self, trigger: Trigger) -> Callable[[], None]:
        if trigger.action == CRASH:
            return lambda: self._crash_fn(trigger.pid)
        return lambda: self._recover_fn(trigger.pid)


class RandomCrashPlan:
    """Seeded random crash/recovery schedules for soak tests.

    Generates, for each chosen victim, one or more downtime windows in
    ``[0, horizon]``.  ``max_concurrent_down`` bounds how many processes
    are down simultaneously so that a majority stays responsive often
    enough for operations to terminate (the model only guarantees
    robustness when a majority is eventually permanently up).
    """

    def __init__(
        self,
        num_processes: int,
        horizon: float,
        seed: int = 0,
        max_concurrent_down: Optional[int] = None,
        crash_rate: float = 0.5,
        mean_downtime: float = 0.01,
    ):
        if num_processes < 1:
            raise ConfigurationError("num_processes must be >= 1")
        if horizon <= 0:
            raise ConfigurationError("horizon must be > 0")
        if not 0.0 <= crash_rate <= 1.0:
            raise ConfigurationError("crash_rate must be in [0, 1]")
        self._n = num_processes
        self._horizon = horizon
        self._rng = random.Random(seed)
        minority = max(0, (num_processes - 1) // 2)
        self._max_down = (
            minority if max_concurrent_down is None else max_concurrent_down
        )
        self._crash_rate = crash_rate
        self._mean_downtime = mean_downtime

    def generate(self) -> CrashSchedule:
        """Produce a schedule honouring the concurrency bound."""
        windows: List[Tuple[float, float, ProcessId]] = []
        for pid in range(self._n):
            if self._rng.random() >= self._crash_rate:
                continue
            start = self._rng.uniform(0.0, self._horizon * 0.8)
            duration = self._rng.expovariate(1.0 / self._mean_downtime)
            end = min(start + max(duration, 1e-4), self._horizon * 0.95)
            windows.append((start, end, pid))
        windows.sort()
        accepted: List[Tuple[float, float, ProcessId]] = []
        for window in windows:
            start, end, _ = window
            overlap = sum(
                1 for s, e, _ in accepted if s < end and start < e
            )
            if overlap < self._max_down:
                accepted.append(window)
        schedule = CrashSchedule()
        for start, end, pid in accepted:
            schedule.downtime(pid, start, end)
        return schedule
