"""Simulated fair-lossy message-passing network.

Implements the channel assumptions of Section II: messages may be
dropped, duplicated, delayed arbitrarily and reordered, but a message
retransmitted forever to a correct process is eventually received
(fair-lossiness), and no message is received that was not sent.  The
delivery delay of a message follows the linear size model of
:class:`repro.net.delay.DelayModel`, calibrated to the paper's LAN.

Deliveries are *envelopes*: alongside the protocol message they carry
the causal-log depth used by :mod:`repro.history.causal_logs` -- the
engine-level accounting of the paper's cost metric.

Partitions are modelled as directed blocked links: while blocked, every
transmission on the link is dropped (fair-lossiness is preserved
because partitions are required to eventually heal in any run that
needs termination, matching the "eventually a majority is permanently
up" assumption).
"""

# repro: hot-path
# (HOT001: every per-event emitter below must guard TraceEvent/emit
# construction behind trace.wants() and tick() on the fast path.)

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.config import NetworkConfig
from repro.common.ids import ProcessId
from repro.net.delay import DelayModel
from repro.protocol.messages import Message
from repro.sim import tracing
from repro.sim.kernel import Kernel
from repro.sim.tracing import NULL_TRACE, Trace, TraceEvent

#: One-way delay for a process's message to its own listener (loopback
#: does not cross the wire; the paper's implementation runs the
#: listener as a second thread on the same workstation).
LOOPBACK_DELAY = 5e-6


class Envelope:
    """A protocol message in flight, with engine-level metadata.

    A plain slotted class rather than a dataclass: one envelope is
    allocated per delivery, and slot assignment is measurably cheaper
    than a frozen dataclass's ``object.__setattr__`` per field.
    Immutable by convention.
    """

    __slots__ = ("src", "dst", "message", "depth")

    def __init__(self, src: ProcessId, dst: ProcessId, message: Message, depth: int):
        self.src = src
        self.dst = dst
        self.message = message
        #: Causal-log depth context of the sending handler (see
        #: :mod:`repro.history.causal_logs`).
        self.depth = depth

    def __repr__(self) -> str:
        return (
            f"Envelope(src={self.src}, dst={self.dst}, "
            f"message={self.message!r}, depth={self.depth})"
        )


DeliveryHandler = Callable[[Envelope], None]

#: A message filter: return ``True`` to drop the transmission.
MessageFilter = Callable[[ProcessId, ProcessId, Message], bool]


class SimNetwork:
    """Connects the simulated processes with fair-lossy channels."""

    def __init__(
        self,
        kernel: Kernel,
        num_processes: int,
        config: NetworkConfig,
        trace: Optional[Trace] = None,
    ):
        self._kernel = kernel
        self._num_processes = num_processes
        self._delay_model = DelayModel(config)
        self._trace = NULL_TRACE if trace is None else trace
        self._handlers: Dict[ProcessId, DeliveryHandler] = {}
        # Link -> number of outstanding blocks.  Refcounted so that
        # overlapping partition windows compose: a link stays blocked
        # until every block placed on it is released.
        self._blocked_links: Dict[Tuple[ProcessId, ProcessId], int] = {}
        self._filters: List[MessageFilter] = []
        # Per-link accumulated delay penalties (slow links), applied on
        # top of the sampled delay.  Additive for the same reason the
        # blocks are refcounted; consulted only when non-empty so the
        # common configuration pays one falsy check.
        self._link_penalties: Dict[Tuple[ProcessId, ProcessId], float] = {}
        # Sender-side egress queues: transmissions serialize through the
        # sender's NIC, each occupying it for ``send_overhead``.
        self._egress_free_at: Dict[ProcessId, float] = {}
        # Config constants hoisted out of the per-send path.  The loss
        # and duplication probabilities come from the delay model, the
        # single owner of channel-fault semantics: send() inlines its
        # should_drop/should_duplicate decisions (same guard, same rng
        # consumption) to save two method calls per transmission.
        self._send_overhead = config.send_overhead
        self._drop_probability = self._delay_model.drop_probability
        self._duplicate_probability = self._delay_model.duplicate_probability
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0

    @property
    def num_processes(self) -> int:
        return self._num_processes

    @property
    def delay_model(self) -> DelayModel:
        return self._delay_model

    def attach(self, pid: ProcessId, handler: DeliveryHandler) -> None:
        """Register the delivery handler of process ``pid``."""
        if not 0 <= pid < self._num_processes:
            raise ValueError(f"pid {pid} out of range")
        self._handlers[pid] = handler

    # -- partitions ----------------------------------------------------------

    def block(self, src: ProcessId, dst: ProcessId) -> None:
        """Drop all future transmissions from ``src`` to ``dst``.

        Blocks stack: a link blocked twice (overlapping partition
        windows) needs two :meth:`unblock` calls -- or one
        :meth:`heal_all` -- before traffic flows again.
        """
        link = (src, dst)
        self._blocked_links[link] = self._blocked_links.get(link, 0) + 1

    def unblock(self, src: ProcessId, dst: ProcessId) -> None:
        """Release one block on the link.  No-op if none remain."""
        link = (src, dst)
        count = self._blocked_links.get(link, 0)
        if count <= 1:
            self._blocked_links.pop(link, None)
        else:
            self._blocked_links[link] = count - 1

    def partition(self, group_a: Set[ProcessId], group_b: Set[ProcessId]) -> None:
        """Block every link between ``group_a`` and ``group_b`` (both ways)."""
        for a in group_a:
            for b in group_b:
                self.block(a, b)
                self.block(b, a)

    def heal_all(self) -> None:
        """Remove every blocked link."""
        self._blocked_links.clear()

    def is_blocked(self, src: ProcessId, dst: ProcessId) -> bool:
        return (src, dst) in self._blocked_links

    # -- slow links --------------------------------------------------------

    def slow_link(self, src: ProcessId, dst: ProcessId, extra_delay: float) -> None:
        """Add ``extra_delay`` to every future ``src -> dst`` delivery.

        Models a congested or degraded link: messages still arrive (and
        still pay the sampled base delay), just later.  Penalties from
        repeated calls accumulate, so overlapping slow-link windows
        compose; release with :meth:`unslow_link` or
        :meth:`reset_link_speeds`.  Deterministic -- the penalty
        consumes no randomness.
        """
        if extra_delay < 0:
            raise ValueError(f"extra_delay must be >= 0, got {extra_delay}")
        if extra_delay > 0.0:
            link = (src, dst)
            self._link_penalties[link] = (
                self._link_penalties.get(link, 0.0) + extra_delay
            )

    def unslow_link(self, src: ProcessId, dst: ProcessId, extra_delay: float) -> None:
        """Remove ``extra_delay`` of penalty from the link (floor 0).

        Residues below a picosecond are snapped to zero: symmetric
        add/remove pairs of *different* magnitudes otherwise leave
        float dust that would keep the penalty table (and its hot-path
        check) alive forever.  Real penalties are microseconds and up.
        """
        if extra_delay < 0:
            raise ValueError(f"extra_delay must be >= 0, got {extra_delay}")
        link = (src, dst)
        remaining = self._link_penalties.get(link, 0.0) - extra_delay
        if remaining > 1e-12:
            self._link_penalties[link] = remaining
        else:
            self._link_penalties.pop(link, None)

    def reset_link_speeds(self) -> None:
        """Remove every slow-link penalty."""
        self._link_penalties.clear()

    def link_penalty(self, src: ProcessId, dst: ProcessId) -> float:
        """The current extra delay of the ``src -> dst`` link."""
        return self._link_penalties.get((src, dst), 0.0)

    # -- message filters ---------------------------------------------------

    def add_filter(self, message_filter: MessageFilter) -> Callable[[], None]:
        """Install a drop filter; returns a removal function.

        Filters see ``(src, dst, message)`` for every transmission and
        drop it by returning ``True``.  They express adversarial
        schedules finer than link blocks -- e.g. "hold back this write's
        second round while everything else flows", which the scripted
        runs of Figures 1-3 rely on.
        """
        self._filters.append(message_filter)

        def remove() -> None:
            if message_filter in self._filters:
                self._filters.remove(message_filter)

        return remove

    def _filtered(self, src: ProcessId, dst: ProcessId, message: Message) -> bool:
        return any(f(src, dst, message) for f in self._filters)

    # -- transmission ------------------------------------------------------------

    def send(self, src: ProcessId, dst: ProcessId, message: Message, depth: int) -> None:
        """Transmit one message (may be dropped, duplicated, delayed)."""
        if not 0 <= dst < self._num_processes:
            raise ValueError(f"destination {dst} out of range")
        size = message.size
        self.messages_sent += 1
        self.bytes_sent += size
        trace = self._trace
        if trace.wants(tracing.SEND):
            trace.emit(
                TraceEvent(
                    time=self._kernel.now,
                    kind=tracing.SEND,
                    pid=src,
                    detail={
                        "dst": dst, "msg": message.kind, "op": message.op, "size": size
                    },
                )
            )
        else:
            trace.tick(tracing.SEND, self._kernel.now, src, message.op)
        if self._blocked_links and (src, dst) in self._blocked_links:
            self._drop(src, dst, message, reason="partition")
            return
        if self._filters and self._filtered(src, dst, message):
            self._drop(src, dst, message, reason="filter")
            return
        rng = self._kernel.rng
        if (
            src != dst
            and self._drop_probability > 0.0
            and rng.random() < self._drop_probability
        ):
            self._drop(src, dst, message, reason="loss")
            return
        self._schedule_delivery(src, dst, message, depth)
        if (
            src != dst
            and self._duplicate_probability > 0.0
            and rng.random() < self._duplicate_probability
        ):
            if trace.wants(tracing.DUPLICATE):
                trace.emit(
                    TraceEvent(
                        time=self._kernel.now,
                        kind=tracing.DUPLICATE,
                        pid=src,
                        detail={"dst": dst, "msg": message.kind},
                    )
                )
            else:
                trace.tick(
                    tracing.DUPLICATE, self._kernel.now, src, message.op
                )
            self._schedule_delivery(src, dst, message, depth)

    def broadcast(self, src: ProcessId, message: Message, depth: int) -> None:
        """Send ``message`` to every process, including ``src`` itself."""
        for dst in range(self._num_processes):
            self.send(src, dst, message, depth)

    def _schedule_delivery(
        self, src: ProcessId, dst: ProcessId, message: Message, depth: int
    ) -> None:
        queue_delay = self._egress_queue_delay(src)
        if src == dst:
            delay = LOOPBACK_DELAY
        else:
            delay = self._delay_model.sample_total(message.size, self._kernel.rng)
        if self._link_penalties:
            delay += self._link_penalties.get((src, dst), 0.0)
        envelope = Envelope(src, dst, message, depth)
        self._kernel.schedule(queue_delay + delay, self._deliver, envelope)

    def _egress_queue_delay(self, src: ProcessId) -> float:
        """Serialize transmissions through the sender's NIC."""
        overhead = self._send_overhead
        if overhead == 0.0:
            return 0.0
        now = self._kernel.now
        free_at = self._egress_free_at.get(src, now)
        if free_at < now:
            free_at = now
        self._egress_free_at[src] = free_at + overhead
        return (free_at + overhead) - now

    def _deliver(self, envelope: Envelope) -> None:
        handler = self._handlers.get(envelope.dst)
        if handler is None:
            return
        self.messages_delivered += 1
        trace = self._trace
        if trace.wants(tracing.DELIVER):
            trace.emit(
                TraceEvent(
                    time=self._kernel.now,
                    kind=tracing.DELIVER,
                    pid=envelope.dst,
                    detail={
                        "src": envelope.src,
                        "msg": envelope.message.kind,
                        "op": envelope.message.op,
                    },
                )
            )
        else:
            trace.tick(
                tracing.DELIVER,
                self._kernel.now,
                envelope.dst,
                envelope.message.op,
            )
        handler(envelope)

    def _drop(
        self, src: ProcessId, dst: ProcessId, message: Message, reason: str
    ) -> None:
        self.messages_dropped += 1
        trace = self._trace
        if trace.wants(tracing.DROP):
            trace.emit(
                TraceEvent(
                    time=self._kernel.now,
                    kind=tracing.DROP,
                    pid=src,
                    detail={"dst": dst, "msg": message.kind, "reason": reason},
                )
            )
        else:
            trace.tick(tracing.DROP, self._kernel.now, src, message.op)
