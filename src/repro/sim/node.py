"""Simulated process: hosts one protocol instance and executes effects.

A :class:`SimNode` is the crash-recovery *process* of the model
(Section II).  It owns:

* the protocol state machine (volatile -- wiped by a crash);
* a :class:`~repro.sim.storage.SimStableStorage` (durable);
* the timers armed by the protocol (volatile);
* the causal-depth tracker used for the paper's log-complexity metric.

Crash semantics.  ``crash()`` bumps the node's *incarnation* counter;
every callback scheduled on behalf of the previous incarnation (timers,
store completions, message deliveries already queued) checks the
incarnation and becomes a no-op.  The protocol object's volatile state
is wiped in place and pending client operations abort (their
invocations stay pending in the recorded history).  ``recover()`` runs
the protocol's recovery procedure; client operations are rejected until
it signals :class:`~repro.protocol.base.RecoveryComplete`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional

from repro.common.errors import (
    NotRecoveredError,
    ProcessCrashed,
    ProtocolError,
)
from repro.common.ids import OperationId, ProcessId, make_operation_id
from repro.history.causal_logs import CausalDepthTracker
from repro.history.recorder import HistoryRecorder
from repro.protocol.messages import Message
from repro.protocol.base import (
    Broadcast,
    CancelTimer,
    Effect,
    RecoveryComplete,
    RegisterProtocol,
    Reply,
    Send,
    SetTimer,
    StableView,
    Store,
)
from repro.sim import tracing
from repro.sim.kernel import EventHandle, Kernel
from repro.sim.network import Envelope, SimNetwork
from repro.sim.storage import SimStableStorage
from repro.sim.tracing import Trace, TraceEvent

ProtocolFactory = Callable[[ProcessId, int, StableView], RegisterProtocol]

# Node lifecycle states.
UP = "up"
CRASHED = "crashed"
RECOVERING = "recovering"


class SimOperation:
    """Client-side handle of one invoked operation."""

    __slots__ = (
        "op",
        "pid",
        "kind",
        "value",
        "done",
        "aborted",
        "result",
        "invoked_at",
        "completed_at",
        "causal_logs",
        "_callbacks",
    )

    def __init__(self, op: OperationId, pid: ProcessId, kind: str, value: Any):
        self.op = op
        self.pid = pid
        self.kind = kind
        self.value = value
        self.done = False
        self.aborted = False
        self.result: Any = None
        self.invoked_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.causal_logs: Optional[int] = None
        self._callbacks: List[Callable[["SimOperation"], None]] = []

    def add_callback(self, callback: Callable[["SimOperation"], None]) -> None:
        """Run ``callback(handle)`` when the operation settles.

        Fires immediately if the handle already settled.
        """
        if self.settled:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _settle(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    @property
    def settled(self) -> bool:
        """Whether the operation finished or aborted."""
        return self.done or self.aborted

    @property
    def latency(self) -> Optional[float]:
        if self.invoked_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.invoked_at

    def __repr__(self) -> str:
        state = "done" if self.done else ("aborted" if self.aborted else "pending")
        return f"SimOperation({self.op}, {self.kind}, {state})"


class SimNode:
    """One simulated crash-recovery process."""

    def __init__(
        self,
        pid: ProcessId,
        kernel: Kernel,
        network: SimNetwork,
        storage: SimStableStorage,
        protocol_factory: ProtocolFactory,
        recorder: HistoryRecorder,
        trace: Trace,
        num_processes: int,
    ):
        self.pid = pid
        self._kernel = kernel
        self._network = network
        self._storage = storage
        self._factory = protocol_factory
        self._recorder = recorder
        self._trace = trace
        self._num_processes = num_processes

        self.state = UP
        self.ready = False
        self.incarnation = 0
        self.crash_count = 0

        self._stable_view = StableView(storage.records)
        self.protocol = protocol_factory(pid, num_processes, self._stable_view)
        self._depths = CausalDepthTracker()
        self._timers: Dict[Hashable, EventHandle] = {}
        self._current_handle: Optional[SimOperation] = None

        network.attach(pid, self._on_envelope)

    # -- lifecycle ---------------------------------------------------------

    def boot(self) -> None:
        """Run the protocol's ``Initialize`` procedure."""
        effects = self.protocol.initialize()
        self._execute(effects, depth=0, op=None)

    def crash(self) -> None:
        """Crash the process: volatile state and timers are lost."""
        if self.state == CRASHED:
            raise ProcessCrashed(f"process {self.pid} is already crashed")
        self.state = CRASHED
        self.ready = False
        self.incarnation += 1
        self.crash_count += 1
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        self._storage.crash()
        self.protocol.crash()
        self._depths.reset()
        if self._current_handle is not None and not self._current_handle.settled:
            self._current_handle.aborted = True
            self._current_handle._settle()
        self._current_handle = None
        self._recorder.record_crash(self.pid)
        self._trace.emit(
            TraceEvent(time=self._kernel.now, kind=tracing.CRASH, pid=self.pid)
        )

    def recover(self) -> None:
        """Restart the process and run its recovery procedure."""
        if self.state != CRASHED:
            raise ProtocolError(f"process {self.pid} is not crashed")
        self.state = RECOVERING
        self._recorder.record_recovery(self.pid)
        self._trace.emit(
            TraceEvent(time=self._kernel.now, kind=tracing.RECOVER, pid=self.pid)
        )
        effects = self.protocol.recover()
        self._execute(effects, depth=0, op=None)

    @property
    def crashed(self) -> bool:
        return self.state == CRASHED

    @property
    def storage(self) -> SimStableStorage:
        """The process's stable storage (durable across crashes)."""
        return self._storage

    # -- client operations -----------------------------------------------------

    def invoke_read(self) -> SimOperation:
        """Invoke a read; returns a handle that settles as the run advances."""
        return self._invoke("read", None)

    def invoke_write(self, value: Any) -> SimOperation:
        """Invoke a write of ``value``."""
        return self._invoke("write", value)

    def _invoke(self, kind: str, value: Any) -> SimOperation:
        if self.state == CRASHED:
            raise ProcessCrashed(f"process {self.pid} is crashed")
        if not self.ready:
            raise NotRecoveredError(
                f"process {self.pid} has not finished initializing/recovering"
            )
        if self._current_handle is not None and not self._current_handle.settled:
            raise ProtocolError(
                f"process {self.pid} already has an operation in flight"
            )
        op = make_operation_id(self.pid)
        handle = SimOperation(op, self.pid, kind, value)
        handle.invoked_at = self._kernel.now
        self._current_handle = handle
        self._recorder.record_invoke(op, self.pid, kind, value)
        self._trace.emit(
            TraceEvent(
                time=self._kernel.now,
                kind=tracing.INVOKE,
                pid=self.pid,
                detail={"op": op, "kind": kind},
            )
        )
        self._depths.observe(op, 0)
        if kind == "read":
            effects = self.protocol.invoke_read(op)
        else:
            effects = self.protocol.invoke_write(op, value)
        self._execute(effects, depth=0, op=op)
        return handle

    # -- event entry points ---------------------------------------------------

    def _on_envelope(self, envelope: Envelope) -> None:
        if self.state == CRASHED:
            return  # a crashed process receives nothing
        op = envelope.message.op
        context = self._depths.observe(op, envelope.depth)
        effects = self.protocol.on_message(envelope.src, envelope.message)
        self._execute(effects, depth=context, op=op)

    def _on_store_durable(
        self,
        token: Hashable,
        issue_depth: int,
        op: Optional[OperationId],
        incarnation: int,
    ) -> None:
        if incarnation != self.incarnation or self.state == CRASHED:
            return
        depth = self._depths.record_store(op, issue_depth)
        effects = self.protocol.on_store_complete(token)
        self._execute(effects, depth=depth, op=op)

    def _on_timer(
        self,
        token: Hashable,
        depth: int,
        op: Optional[OperationId],
        incarnation: int,
    ) -> None:
        if incarnation != self.incarnation or self.state == CRASHED:
            return
        self._timers.pop(token, None)
        self._trace.emit(
            TraceEvent(
                time=self._kernel.now,
                kind=tracing.TIMER,
                pid=self.pid,
                detail={"token": token},
            )
        )
        effects = self.protocol.on_timer(token)
        self._execute(effects, depth=depth, op=op)

    # -- effect execution ----------------------------------------------------------

    def _execute(
        self, effects: List[Effect], depth: int, op: Optional[OperationId]
    ) -> None:
        for effect in effects:
            if isinstance(effect, Send):
                out_depth = self._outgoing_depth(effect.message, depth, op)
                self._network.send(self.pid, effect.dst, effect.message, out_depth)
            elif isinstance(effect, Broadcast):
                out_depth = self._outgoing_depth(effect.message, depth, op)
                self._network.broadcast(self.pid, effect.message, out_depth)
            elif isinstance(effect, Store):
                self._storage.store(
                    effect.key,
                    effect.record,
                    effect.size,
                    on_durable=self._make_store_callback(
                        effect.token, depth, op, self.incarnation
                    ),
                    op=op,
                )
            elif isinstance(effect, Reply):
                self._complete_operation(effect, depth)
            elif isinstance(effect, SetTimer):
                self._set_timer(effect, depth, op)
            elif isinstance(effect, CancelTimer):
                handle = self._timers.pop(effect.token, None)
                if handle is not None:
                    handle.cancel()
            elif isinstance(effect, RecoveryComplete):
                self.state = UP
                self.ready = True
                self._trace.emit(
                    TraceEvent(
                        time=self._kernel.now,
                        kind=tracing.RECOVERY_DONE,
                        pid=self.pid,
                    )
                )
            else:
                raise ProtocolError(f"unknown effect {type(effect).__name__}")

    def _outgoing_depth(
        self,
        message: "Message",
        handler_depth: int,
        handler_op: Optional[OperationId],
    ) -> int:
        """Causal-log depth to stamp on an outgoing message.

        The handler's depth context belongs to ``handler_op``; a message
        for a *different* operation (e.g. a parked acknowledgment
        released by another operation's store completion) must not
        inherit it -- the paper's metric attributes a log to the
        operation that performs it, not to operations that merely wait
        behind it on the device.

        Local log history is folded in for *acknowledgments* only: an
        ack certifies a log this process performed for the operation
        and must carry its depth (even when resent after the original
        was lost).  A retransmitted request, by contrast, carries the
        depth its round was started at -- the algorithm does not
        require any further log before it, so incidental process-order
        (e.g. the writer's own ``written`` log completing before a
        retransmission) must not inflate the operation's measured cost.
        """
        message_op = message.op
        inherited = handler_depth if message_op == handler_op else 0
        if not message.is_ack:
            return inherited
        return self._depths.outgoing_depth(message_op, inherited)

    def _make_store_callback(
        self,
        token: Hashable,
        depth: int,
        op: Optional[OperationId],
        incarnation: int,
    ) -> Callable[[], None]:
        def callback() -> None:
            self._on_store_durable(token, depth, op, incarnation)

        return callback

    def _set_timer(
        self, effect: SetTimer, depth: int, op: Optional[OperationId]
    ) -> None:
        existing = self._timers.pop(effect.token, None)
        if existing is not None:
            existing.cancel()
        handle = self._kernel.schedule(
            effect.delay, self._on_timer, effect.token, depth, op, self.incarnation
        )
        self._timers[effect.token] = handle

    def _complete_operation(self, effect: Reply, depth: int) -> None:
        handle = self._current_handle
        if handle is None or handle.op != effect.op:
            # A reply for an operation that was aborted by a crash of
            # this process cannot happen (incarnation guards), so this
            # is a protocol bug worth failing loudly on.
            raise ProtocolError(
                f"process {self.pid} replied to unknown operation {effect.op}"
            )
        causal = max(depth, self._depths.depth_of(effect.op))
        handle.done = True
        handle.result = effect.result
        handle.completed_at = self._kernel.now
        handle.causal_logs = causal
        self._current_handle = None
        self._recorder.record_reply(effect.op, self.pid, handle.kind, effect.result)
        self._recorder.record_causal_logs(effect.op, causal)
        if effect.tag is not None:
            self._recorder.record_tag(effect.op, effect.tag)
        self._trace.emit(
            TraceEvent(
                time=self._kernel.now,
                kind=tracing.REPLY,
                pid=self.pid,
                detail={"op": effect.op, "kind": handle.kind, "causal_logs": causal},
            )
        )
        handle._settle()
