"""Simulated process: hosts protocol instances and executes effects.

A :class:`SimNode` is the crash-recovery *process* of the model
(Section II).  It owns:

* one or more protocol state machines (volatile -- wiped by a crash);
* a :class:`~repro.sim.storage.SimStableStorage` (durable);
* the timers armed by the protocols (volatile);
* the causal-depth tracker used for the paper's log-complexity metric.

Multi-register hosting.  The paper's algorithms emulate one register;
a node therefore boots with a single anonymous *register slot* and
behaves exactly like the original single-register process.  The
key-value layer (:mod:`repro.kv`) provisions additional named slots
with :meth:`SimNode.provision_register`: each slot runs its own
protocol instance over a key-prefixed view of the node's stable
storage, client operations address a slot by register id (at most one
operation in flight *per slot* -- each virtual register is a sequential
process of the model), and wire traffic of named slots is namespaced in
:class:`~repro.protocol.messages.RegisterFrame` entries of
:class:`~repro.protocol.messages.MuxBatch` datagrams.  Frames to the
same destination emitted within the node's ``batch_window`` of virtual
time coalesce into a single datagram, which is how the KV layer turns
several same-shard operations into one quorum round-trip.

Crash semantics.  ``crash()`` bumps the node's *incarnation* counter;
every callback scheduled on behalf of the previous incarnation (timers,
store completions, egress flushes, message deliveries already queued)
checks the incarnation and becomes a no-op.  Every slot's volatile
state is wiped in place and pending client operations abort (their
invocations stay pending in the recorded history).  ``recover()`` runs
every slot's recovery procedure (or first boot, for slots provisioned
while the node was down); client operations are rejected until the
slot signals :class:`~repro.protocol.base.RecoveryComplete`.
"""

# repro: hot-path
# (HOT001: every per-event emitter below must guard TraceEvent/emit
# construction behind trace.wants() and tick() on the fast path.)

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Set, Tuple

from repro.common.errors import (
    NotRecoveredError,
    ProcessCrashed,
    ProtocolError,
)
from repro.common.ids import OperationId, ProcessId, make_operation_id
from repro.history.causal_logs import CausalDepthTracker
from repro.history.recorder import HistoryRecorder
from repro.protocol.messages import Message, MuxBatch, RegisterFrame
from repro.protocol.base import (
    Broadcast,
    CancelTimer,
    Checkpoint,
    Effect,
    RecoveryComplete,
    RegisterProtocol,
    Reply,
    Send,
    SetTimer,
    StableView,
    Store,
)
from repro.sim import tracing
from repro.storage import checkpoint as ckpt
from repro.sim.kernel import EventHandle, Kernel
from repro.sim.network import Envelope, SimNetwork
from repro.sim.storage import SimStableStorage
from repro.sim.tracing import NULL_TRACE, Trace, TraceEvent

ProtocolFactory = Callable[[ProcessId, int, StableView], RegisterProtocol]

# Node lifecycle states.
UP = "up"
CRASHED = "crashed"
RECOVERING = "recovering"

#: Register id of the anonymous single-register slot every node boots
#: with (the classic deployment of the paper's algorithms).
DEFAULT_REGISTER: Optional[str] = None


class SimOperation:
    """Client-side handle of one invoked operation."""

    __slots__ = (
        "op",
        "pid",
        "kind",
        "value",
        "register",
        "done",
        "aborted",
        "result",
        "invoked_at",
        "completed_at",
        "causal_logs",
        "_callbacks",
    )

    def __init__(
        self,
        op: OperationId,
        pid: ProcessId,
        kind: str,
        value: Any,
        register: Optional[str] = None,
    ):
        self.op = op
        self.pid = pid
        self.kind = kind
        self.value = value
        self.register = register
        self.done = False
        self.aborted = False
        self.result: Any = None
        self.invoked_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.causal_logs: Optional[int] = None
        self._callbacks: List[Callable[["SimOperation"], None]] = []

    def add_callback(self, callback: Callable[["SimOperation"], None]) -> None:
        """Run ``callback(handle)`` when the operation settles.

        Fires immediately if the handle already settled.
        """
        if self.settled:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _settle(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    @property
    def settled(self) -> bool:
        """Whether the operation finished or aborted."""
        return self.done or self.aborted

    @property
    def latency(self) -> Optional[float]:
        if self.invoked_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.invoked_at

    def __repr__(self) -> str:
        state = "done" if self.done else ("aborted" if self.aborted else "pending")
        return f"SimOperation({self.op}, {self.kind}, {state})"


class _RegisterSlot:
    """One hosted register instance: protocol plus per-slot bookkeeping."""

    __slots__ = ("register", "prefix", "protocol", "current", "ready", "booted")

    def __init__(self, register: Optional[str], prefix: str, protocol: RegisterProtocol):
        self.register = register
        #: Stable-storage key prefix of this slot ("" for the default).
        self.prefix = prefix
        self.protocol = protocol
        #: Client operation in flight on this slot, if any.
        self.current: Optional[SimOperation] = None
        #: Whether the slot finished initialize/recover.
        self.ready = False
        #: Whether initialize() ever ran (slots provisioned while the
        #: node was crashed boot for the first time during recovery).
        self.booted = False


class SimNode:
    """One simulated crash-recovery process."""

    def __init__(
        self,
        pid: ProcessId,
        kernel: Kernel,
        network: SimNetwork,
        storage: SimStableStorage,
        protocol_factory: ProtocolFactory,
        recorder: HistoryRecorder,
        num_processes: int,
        trace: Optional[Trace] = None,
        batch_window: float = 0.0,
        checkpoint_interval: Optional[float] = None,
        recovery_scan: bool = False,
    ):
        if batch_window < 0:
            raise ProtocolError("batch_window must be >= 0")
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ProtocolError("checkpoint_interval must be > 0")
        self.pid = pid
        self._kernel = kernel
        self._network = network
        self._storage = storage
        self._factory = protocol_factory
        self._recorder = recorder
        self._trace = NULL_TRACE if trace is None else trace
        self._num_processes = num_processes
        self.batch_window = batch_window
        #: Virtual seconds between periodic checkpoints (None = never).
        self.checkpoint_interval = checkpoint_interval
        #: Whether recovery bills a scan of the whole log before the
        #: protocols run (see SimStableStorage.recovery_scan_latency).
        self.recovery_scan = recovery_scan

        self.state = UP
        self.incarnation = 0
        self.crash_count = 0
        self._booted = False
        #: Wall (virtual) duration of each completed crash-recovery.
        self.recovery_times: List[float] = []
        #: Optional observer called with each recovery duration.
        self.on_recovery_time: Optional[Callable[[float], None]] = None
        self._recover_began: Optional[float] = None
        self._scanning = False

        # Last committed checkpoint: snapshot records (shared with the
        # StableView, updated in place), their billed sizes, and the
        # checkpoint sequence number.
        self._snapshot: Dict[str, Tuple[Any, ...]] = {}
        self._snapshot_sizes: Dict[str, int] = {}
        self._ckpt_seq = 0
        self._ckpt_in_progress = False
        self.checkpoints_committed = 0

        self._stable_view = StableView(storage.records, self._snapshot)
        self._slots: Dict[Optional[str], _RegisterSlot] = {}
        self._slots[DEFAULT_REGISTER] = self._make_slot(DEFAULT_REGISTER)
        self._depths = CausalDepthTracker()
        self._timers: Dict[Tuple[Optional[str], Hashable], EventHandle] = {}
        # Egress coalescing of named-slot frames, per destination.
        self._pending_frames: Dict[ProcessId, List[RegisterFrame]] = {}
        self._flush_scheduled: Set[ProcessId] = set()

        network.attach(pid, self._on_envelope)

    def _make_slot(self, register: Optional[str]) -> _RegisterSlot:
        if register is None:
            prefix, stable = "", self._stable_view
        else:
            prefix = f"{register}/"
            stable = self._stable_view.scoped(prefix)
        protocol = self._factory(self.pid, self._num_processes, stable)
        protocol.register = register
        return _RegisterSlot(register, prefix, protocol)

    # -- register hosting --------------------------------------------------

    @property
    def protocol(self) -> RegisterProtocol:
        """The default (anonymous) register's protocol instance."""
        return self._slots[DEFAULT_REGISTER].protocol

    @property
    def registers(self) -> List[Optional[str]]:
        """Ids of all hosted register slots (``None`` is the default)."""
        return list(self._slots)

    def has_register(self, register: Optional[str]) -> bool:
        return register in self._slots

    def register_ready(self, register: Optional[str]) -> bool:
        """Whether ``register`` exists, is initialized, and is idle-capable."""
        slot = self._slots.get(register)
        return slot is not None and slot.ready and self.state != CRASHED

    def register_protocol(self, register: Optional[str]) -> RegisterProtocol:
        return self._slot(register).protocol

    def register_busy(self, register: Optional[str]) -> bool:
        """Whether ``register`` has a client operation in flight."""
        slot = self._slot(register)
        if slot.current is not None and not slot.current.settled:
            return True
        return bool(getattr(slot.protocol, "busy", False))

    def provision_register(self, register: str) -> None:
        """Host a new named register instance on this node.

        On an up-and-running node the slot initializes immediately (its
        first records must become durable before it accepts
        operations); on a crashed node the slot is created dormant and
        boots when the node recovers.  Provisioning is idempotent.
        """
        if register is None:
            raise ProtocolError("the default register always exists")
        if register in self._slots:
            return
        slot = self._make_slot(register)
        self._slots[register] = slot
        if self._booted and self.state != CRASHED:
            self._boot_slot(slot)

    def _slot(self, register: Optional[str]) -> _RegisterSlot:
        slot = self._slots.get(register)
        if slot is None:
            raise ProtocolError(
                f"process {self.pid} hosts no register {register!r}"
            )
        return slot

    # -- lifecycle ---------------------------------------------------------

    def boot(self) -> None:
        """Run every slot's ``Initialize`` procedure."""
        self._booted = True
        for slot in list(self._slots.values()):
            self._boot_slot(slot)
        self._arm_checkpoint_timer()

    def _boot_slot(self, slot: _RegisterSlot) -> None:
        slot.booted = True
        effects = slot.protocol.initialize()
        self._execute(effects, depth=0, op=None, slot=slot)

    def crash(self) -> None:
        """Crash the process: volatile state and timers are lost."""
        if self.state == CRASHED:
            raise ProcessCrashed(f"process {self.pid} is already crashed")
        self.state = CRASHED
        self.incarnation += 1
        self.crash_count += 1
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        self._pending_frames.clear()
        self._flush_scheduled.clear()
        self._ckpt_in_progress = False
        self._scanning = False
        self._recover_began = None
        self._storage.crash()
        self._depths.reset()
        for slot in self._slots.values():
            slot.protocol.crash()
            slot.ready = False
            if slot.current is not None and not slot.current.settled:
                slot.current.aborted = True
                slot.current._settle()
            slot.current = None
        self._recorder.record_crash(self.pid)
        if self._trace.wants(tracing.CRASH):
            self._trace.emit(
                TraceEvent(time=self._kernel.now, kind=tracing.CRASH, pid=self.pid)
            )
        else:
            self._trace.tick(tracing.CRASH, self._kernel.now, self.pid)

    def recover(self) -> None:
        """Restart the process and run every slot's recovery procedure.

        With :attr:`recovery_scan` on, the process first pays for
        reading its whole log back from the device (linear in the
        un-compacted log -- the cost checkpoints exist to bound) and
        only then runs the protocols' recovery procedures; messages
        arriving during the scan are dropped, as for a crashed process.
        """
        if self.state != CRASHED:
            raise ProtocolError(f"process {self.pid} is not crashed")
        self.state = RECOVERING
        self._recover_began = self._kernel.now
        self._recorder.record_recovery(self.pid)
        if self._trace.wants(tracing.RECOVER):
            self._trace.emit(
                TraceEvent(time=self._kernel.now, kind=tracing.RECOVER, pid=self.pid)
            )
        else:
            self._trace.tick(tracing.RECOVER, self._kernel.now, self.pid)
        if self.recovery_scan:
            self._scanning = True
            self._kernel.schedule(
                self._storage.recovery_scan_latency(),
                self._finish_recover,
                self.incarnation,
            )
            return
        self._finish_recover(self.incarnation)

    def _finish_recover(self, incarnation: int) -> None:
        if incarnation != self.incarnation or self.state != RECOVERING:
            return  # crashed again while the scan was in progress
        self._scanning = False
        self._load_snapshot()
        for slot in list(self._slots.values()):
            if not slot.booted:
                # Provisioned while the node was down: first boot now.
                self._boot_slot(slot)
                continue
            effects = slot.protocol.recover()
            self._execute(effects, depth=0, op=None, slot=slot)
        self._arm_checkpoint_timer()

    def _load_snapshot(self) -> None:
        """Rebuild the in-memory snapshot from the durable permanent record.

        A stray tentative record (crash between the two checkpoint
        phases) is ignored: the truncations it would have justified
        never happened, so the previous snapshot plus the intact log
        suffix is still complete.
        """
        seq, records, sizes = ckpt.load_snapshot(
            self._storage.retrieve(ckpt.PERMANENT_KEY)
        )
        self._ckpt_seq = seq
        self._snapshot.clear()
        self._snapshot.update(records)
        self._snapshot_sizes = dict(sizes)

    # -- checkpointing -----------------------------------------------------

    def _arm_checkpoint_timer(self) -> None:
        if self.checkpoint_interval is None:
            return
        self._kernel.schedule(
            self.checkpoint_interval, self._checkpoint_tick, self.incarnation
        )

    def _checkpoint_tick(self, incarnation: int) -> None:
        if incarnation != self.incarnation or self.state == CRASHED:
            return  # a crash killed this timer chain; recovery re-arms
        if self.state == UP and not self._ckpt_in_progress:
            self.begin_checkpoint()
        self._arm_checkpoint_timer()

    def begin_checkpoint(self) -> bool:
        """Start a two-phase checkpoint; returns whether one began.

        Captures the records of every *idle* register slot (no client
        operation in flight, recovery complete): idle means the slot's
        last write completed, i.e. its value reached a majority, so
        recovery may skip the replay round for a record that survives
        only in the snapshot.  Busy slots keep their live log entries
        and recover the normal way.  The captured records are merged
        over the previous snapshot so the permanent record alone is
        always a complete restore point.

        No-op while crashed/recovering, while another checkpoint is in
        progress, or when no new records are capturable.
        """
        if self.state != UP or self._ckpt_in_progress:
            return False
        idle = [
            slot.prefix
            for slot in self._slots.values()
            if slot.ready
            and (slot.current is None or slot.current.settled)
            and not getattr(slot.protocol, "busy", False)
        ]
        live = self._storage.records
        keys = ckpt.capturable_keys(live.keys(), idle)
        # Only re-snapshot keys whose live record moved past the
        # snapshot; unchanged state needs no new checkpoint.
        fresh = {
            key: live[key]
            for key in keys
            if self._snapshot.get(key) != live[key]
        }
        if not fresh:
            return False
        captured = dict(self._snapshot)
        captured.update(fresh)
        sizes = dict(self._snapshot_sizes)
        for key in fresh:
            sizes[key] = self._storage.record_size(key)
        seq = self._ckpt_seq + 1
        record = ckpt.build_snapshot_record(seq, captured, sizes)
        size = ckpt.snapshot_store_size(sizes.values())
        self._ckpt_in_progress = True
        trace = self._trace
        if trace.wants(tracing.CKPT_BEGIN):
            trace.emit(
                TraceEvent(
                    time=self._kernel.now,
                    kind=tracing.CKPT_BEGIN,
                    pid=self.pid,
                    detail={"seq": seq, "entries": len(captured)},
                )
            )
        else:
            trace.tick(tracing.CKPT_BEGIN, self._kernel.now, self.pid)
        incarnation = self.incarnation
        self._storage.store(
            ckpt.TENTATIVE_KEY,
            record,
            size,
            on_durable=lambda: self._on_ckpt_tentative(
                incarnation, seq, record, size, fresh, captured, sizes
            ),
        )
        return True

    def _on_ckpt_tentative(
        self,
        incarnation: int,
        seq: int,
        record: Tuple[Any, ...],
        size: int,
        fresh: Dict[str, Tuple[Any, ...]],
        captured: Dict[str, Tuple[Any, ...]],
        sizes: Dict[str, int],
    ) -> None:
        if incarnation != self.incarnation or self.state != UP:
            return
        trace = self._trace
        if trace.wants(tracing.CKPT_TENTATIVE):
            trace.emit(
                TraceEvent(
                    time=self._kernel.now,
                    kind=tracing.CKPT_TENTATIVE,
                    pid=self.pid,
                    detail={"seq": seq},
                )
            )
        else:
            trace.tick(tracing.CKPT_TENTATIVE, self._kernel.now, self.pid)
        # A trace trigger (TornStore) may have crashed us during the
        # emit above -- exactly between the two phases; the permanent
        # store must then never be issued.
        if incarnation != self.incarnation or self.state != UP:
            return
        self._storage.store(
            ckpt.PERMANENT_KEY,
            record,
            size,
            on_durable=lambda: self._on_ckpt_commit(
                incarnation, seq, fresh, captured, sizes
            ),
        )

    def _on_ckpt_commit(
        self,
        incarnation: int,
        seq: int,
        fresh: Dict[str, Tuple[Any, ...]],
        captured: Dict[str, Tuple[Any, ...]],
        sizes: Dict[str, int],
    ) -> None:
        if incarnation != self.incarnation or self.state != UP:
            return
        self._ckpt_seq = seq
        self._snapshot.clear()
        self._snapshot.update(captured)
        self._snapshot_sizes = sizes
        # Truncate the log entries the snapshot supersedes -- but only
        # where the live record is still the captured one; a store that
        # landed after capture re-creates the key and must survive so
        # recovery replays it the normal way.
        storage = self._storage
        live = storage.records
        truncated = 0
        for key, captured_record in fresh.items():
            if live.get(key) == captured_record:
                storage.delete(key)
                truncated += 1
        storage.delete(ckpt.TENTATIVE_KEY)
        storage.compact()
        self._ckpt_in_progress = False
        self.checkpoints_committed += 1
        trace = self._trace
        if trace.wants(tracing.CKPT_COMMIT):
            trace.emit(
                TraceEvent(
                    time=self._kernel.now,
                    kind=tracing.CKPT_COMMIT,
                    pid=self.pid,
                    detail={
                        "seq": seq,
                        "entries": len(captured),
                        "truncated": truncated,
                    },
                )
            )
        else:
            trace.tick(tracing.CKPT_COMMIT, self._kernel.now, self.pid)

    @property
    def ready(self) -> bool:
        """Whether every hosted slot finished initializing/recovering."""
        if self.state == CRASHED:
            return False
        return all(slot.ready for slot in self._slots.values())

    @property
    def crashed(self) -> bool:
        return self.state == CRASHED

    @property
    def storage(self) -> SimStableStorage:
        """The process's stable storage (durable across crashes)."""
        return self._storage

    # -- client operations -----------------------------------------------------

    def invoke_read(self, register: Optional[str] = None) -> SimOperation:
        """Invoke a read; returns a handle that settles as the run advances."""
        return self._invoke("read", None, register)

    def invoke_write(
        self, value: Any, register: Optional[str] = None
    ) -> SimOperation:
        """Invoke a write of ``value``."""
        return self._invoke("write", value, register)

    def _invoke(
        self, kind: str, value: Any, register: Optional[str]
    ) -> SimOperation:
        if self.state == CRASHED:
            raise ProcessCrashed(f"process {self.pid} is crashed")
        slot = self._slot(register)
        if not slot.ready:
            raise NotRecoveredError(
                f"process {self.pid} register {register!r} has not finished "
                f"initializing/recovering"
            )
        if slot.current is not None and not slot.current.settled:
            raise ProtocolError(
                f"process {self.pid} already has an operation in flight "
                f"on register {register!r}"
            )
        op = make_operation_id(self.pid)
        handle = SimOperation(op, self.pid, kind, value, register=register)
        handle.invoked_at = self._kernel.now
        slot.current = handle
        self._recorder.record_invoke(op, self.pid, kind, value)
        if register is not None:
            self._recorder.record_register(op, register)
        trace = self._trace
        if trace.wants(tracing.INVOKE):
            trace.emit(
                TraceEvent(
                    time=self._kernel.now,
                    kind=tracing.INVOKE,
                    pid=self.pid,
                    detail={"op": op, "kind": kind, "register": register},
                )
            )
        else:
            trace.tick(tracing.INVOKE, self._kernel.now, self.pid, op)
        self._depths.observe(op, 0)
        if kind == "read":
            effects = slot.protocol.invoke_read(op)
        else:
            effects = slot.protocol.invoke_write(op, value)
        self._execute(effects, depth=0, op=op, slot=slot)
        return handle

    # -- event entry points ---------------------------------------------------

    def _on_envelope(self, envelope: Envelope) -> None:
        if self.state == CRASHED or self._scanning:
            # A crashed process receives nothing; one still scanning
            # its log back is not listening yet either.
            return
        message = envelope.message
        if message.__class__ is MuxBatch:
            for frame in message.frames:
                slot = self._slots.get(frame.register)
                if slot is None:
                    # A frame for a register this node does not host
                    # yet (provisioning raced a delivery); drop it --
                    # fair-lossy channels allow it, the sender
                    # retransmits.
                    continue
                inner = frame.message
                context = self._depths.observe(inner.op, frame.depth)
                effects = slot.protocol.on_message(envelope.src, inner)
                self._execute(effects, depth=context, op=inner.op, slot=slot)
            return
        slot = self._slots[DEFAULT_REGISTER]
        context = self._depths.observe(message.op, envelope.depth)
        effects = slot.protocol.on_message(envelope.src, message)
        self._execute(effects, depth=context, op=message.op, slot=slot)

    def _on_store_durable(
        self,
        token: Hashable,
        issue_depth: int,
        op: Optional[OperationId],
        incarnation: int,
        register: Optional[str],
    ) -> None:
        if incarnation != self.incarnation or self.state == CRASHED:
            return
        slot = self._slots.get(register)
        if slot is None:
            return
        depth = self._depths.record_store(op, issue_depth)
        effects = slot.protocol.on_store_complete(token)
        self._execute(effects, depth=depth, op=op, slot=slot)

    def _on_timer(
        self,
        token: Hashable,
        depth: int,
        op: Optional[OperationId],
        incarnation: int,
        register: Optional[str],
    ) -> None:
        if incarnation != self.incarnation or self.state == CRASHED:
            return
        slot = self._slots.get(register)
        if slot is None:
            return
        self._timers.pop((register, token), None)
        trace = self._trace
        if trace.wants(tracing.TIMER):
            trace.emit(
                TraceEvent(
                    time=self._kernel.now,
                    kind=tracing.TIMER,
                    pid=self.pid,
                    detail={"token": token, "register": register},
                )
            )
        else:
            trace.tick(tracing.TIMER, self._kernel.now, self.pid, op)
        effects = slot.protocol.on_timer(token)
        self._execute(effects, depth=depth, op=op, slot=slot)

    # -- effect execution ----------------------------------------------------------

    def _execute(
        self,
        effects: List[Effect],
        depth: int,
        op: Optional[OperationId],
        slot: _RegisterSlot,
    ) -> None:
        # Effects are a closed set of final classes (the sans-io
        # contract of protocol/base.py), so dispatch on class identity:
        # an isinstance ladder costs several calls per effect on the
        # engine's hottest path.
        for effect in effects:
            cls = effect.__class__
            if cls is Send:
                out_depth = self._outgoing_depth(effect.message, depth, op)
                self._dispatch(slot, effect.dst, effect.message, out_depth)
            elif cls is Broadcast:
                out_depth = self._outgoing_depth(effect.message, depth, op)
                if slot.register is None:
                    self._network.broadcast(self.pid, effect.message, out_depth)
                else:
                    for dst in range(self._num_processes):
                        self._dispatch(slot, dst, effect.message, out_depth)
            elif cls is Store:
                self._storage.store(
                    slot.prefix + effect.key,
                    effect.record,
                    effect.size,
                    on_durable=self._make_store_callback(
                        effect.token, depth, op, self.incarnation, slot.register
                    ),
                    op=op,
                )
            elif cls is Reply:
                self._complete_operation(effect, depth, slot)
            elif cls is SetTimer:
                self._set_timer(effect, depth, op, slot)
            elif cls is CancelTimer:
                handle = self._timers.pop((slot.register, effect.token), None)
                if handle is not None:
                    handle.cancel()
            elif cls is RecoveryComplete:
                slot.ready = True
                if self.state != UP and all(
                    s.ready for s in self._slots.values()
                ):
                    self.state = UP
                    if self._recover_began is not None:
                        duration = self._kernel.now - self._recover_began
                        self._recover_began = None
                        self.recovery_times.append(duration)
                        if self.on_recovery_time is not None:
                            self.on_recovery_time(duration)
                if self._trace.wants(tracing.RECOVERY_DONE):
                    self._trace.emit(
                        TraceEvent(
                            time=self._kernel.now,
                            kind=tracing.RECOVERY_DONE,
                            pid=self.pid,
                            detail={"register": slot.register},
                        )
                    )
                else:
                    self._trace.tick(
                        tracing.RECOVERY_DONE, self._kernel.now, self.pid
                    )
            elif cls is Checkpoint:
                self.begin_checkpoint()
            else:
                raise ProtocolError(f"unknown effect {type(effect).__name__}")

    # -- egress multiplexing ---------------------------------------------------

    def _dispatch(
        self,
        slot: _RegisterSlot,
        dst: ProcessId,
        message: Message,
        depth: int,
    ) -> None:
        """Send directly (default slot) or through the frame batcher."""
        if slot.register is None:
            self._network.send(self.pid, dst, message, depth)
            return
        frame = RegisterFrame(register=slot.register, depth=depth, message=message)
        if self.batch_window == 0.0:
            # No window, no coalescing: one datagram per frame, the
            # honest unbatched baseline the benchmarks sweep against.
            self._network.send(
                self.pid, dst, MuxBatch(op=None, round_no=0, frames=(frame,)), 0
            )
            return
        self._pending_frames.setdefault(dst, []).append(frame)
        if dst not in self._flush_scheduled:
            self._flush_scheduled.add(dst)
            self._kernel.schedule(
                self.batch_window, self._flush_frames, dst, self.incarnation
            )

    def _flush_frames(self, dst: ProcessId, incarnation: int) -> None:
        self._flush_scheduled.discard(dst)
        frames = self._pending_frames.pop(dst, None)
        if incarnation != self.incarnation or self.state == CRASHED:
            return  # frames queued by a dead incarnation die with it
        if not frames:
            return
        batch = MuxBatch(op=None, round_no=0, frames=tuple(frames))
        self._network.send(self.pid, dst, batch, depth=0)

    def _outgoing_depth(
        self,
        message: "Message",
        handler_depth: int,
        handler_op: Optional[OperationId],
    ) -> int:
        """Causal-log depth to stamp on an outgoing message.

        The handler's depth context belongs to ``handler_op``; a message
        for a *different* operation (e.g. a parked acknowledgment
        released by another operation's store completion) must not
        inherit it -- the paper's metric attributes a log to the
        operation that performs it, not to operations that merely wait
        behind it on the device.

        Local log history is folded in for *acknowledgments* only: an
        ack certifies a log this process performed for the operation
        and must carry its depth (even when resent after the original
        was lost).  A retransmitted request, by contrast, carries the
        depth its round was started at -- the algorithm does not
        require any further log before it, so incidental process-order
        (e.g. the writer's own ``written`` log completing before a
        retransmission) must not inflate the operation's measured cost.
        """
        message_op = message.op
        inherited = handler_depth if message_op == handler_op else 0
        if not message.is_ack:
            return inherited
        return self._depths.outgoing_depth(message_op, inherited)

    def _make_store_callback(
        self,
        token: Hashable,
        depth: int,
        op: Optional[OperationId],
        incarnation: int,
        register: Optional[str],
    ) -> Callable[[], None]:
        def callback() -> None:
            self._on_store_durable(token, depth, op, incarnation, register)

        return callback

    def _set_timer(
        self,
        effect: SetTimer,
        depth: int,
        op: Optional[OperationId],
        slot: _RegisterSlot,
    ) -> None:
        key = (slot.register, effect.token)
        existing = self._timers.pop(key, None)
        if existing is not None:
            existing.cancel()
        handle = self._kernel.schedule_cancellable(
            effect.delay,
            self._on_timer,
            effect.token,
            depth,
            op,
            self.incarnation,
            slot.register,
        )
        self._timers[key] = handle

    def _complete_operation(
        self, effect: Reply, depth: int, slot: _RegisterSlot
    ) -> None:
        handle = slot.current
        if handle is None or handle.op != effect.op:
            # A reply for an operation that was aborted by a crash of
            # this process cannot happen (incarnation guards), so this
            # is a protocol bug worth failing loudly on.
            raise ProtocolError(
                f"process {self.pid} replied to unknown operation {effect.op}"
            )
        causal = max(depth, self._depths.depth_of(effect.op))
        handle.done = True
        handle.result = effect.result
        handle.completed_at = self._kernel.now
        handle.causal_logs = causal
        slot.current = None
        self._recorder.record_reply(effect.op, self.pid, handle.kind, effect.result)
        self._recorder.record_causal_logs(effect.op, causal)
        if effect.tag is not None:
            self._recorder.record_tag(effect.op, effect.tag)
        trace = self._trace
        if trace.wants(tracing.REPLY):
            trace.emit(
                TraceEvent(
                    time=self._kernel.now,
                    kind=tracing.REPLY,
                    pid=self.pid,
                    detail={
                        "op": effect.op, "kind": handle.kind, "causal_logs": causal
                    },
                )
            )
        else:
            trace.tick(tracing.REPLY, self._kernel.now, self.pid, effect.op)
        handle._settle()
