"""Network delay models shared by the simulator and the experiments."""

from repro.net.delay import DelayModel, DelaySample

__all__ = ["DelayModel", "DelaySample"]
