"""Network delay models shared by the simulator and the experiments.

:class:`~repro.net.delay.DelayModel` turns a message size into a
delivery delay -- the linear ``base_delay + size / bandwidth + jitter``
model (plus loss and duplication probabilities) calibrated against the
paper's 100 Mb/s LAN testbed.  :mod:`repro.sim.network` samples it
per transmission; the figure harnesses read its constants to place the
analytic curves.
"""

from repro.net.delay import DelayModel, DelaySample

__all__ = ["DelayModel", "DelaySample"]
