"""Size-dependent message delay model.

The paper's testbed is a 100 Mb/s LAN where a small message transits in
about 0.1 ms, and Figure 6 (bottom) shows write latency growing linearly
with payload size up to the 64 KB UDP limit.  This module provides the
linear cost model that underlies both observations::

    delay(size) = base_delay + size / bandwidth + jitter

Instances are pure: they compute delays from a caller-provided random
stream so that simulation runs are reproducible from their seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.config import NetworkConfig


@dataclass(frozen=True)
class DelaySample:
    """One sampled delay, decomposed for tracing and experiments."""

    base: float
    transmission: float
    jitter: float

    @property
    def total(self) -> float:
        """The full one-way delay in seconds."""
        return self.base + self.transmission + self.jitter


class DelayModel:
    """Computes one-way message delays under a :class:`NetworkConfig`."""

    def __init__(self, config: NetworkConfig):
        self._config = config

    @property
    def config(self) -> NetworkConfig:
        return self._config

    def sample(self, size: int, rng: random.Random) -> DelaySample:
        """Sample the delay of a ``size``-byte message.

        ``size`` counts the application payload; per-packet framing is
        folded into ``base_delay``.  Raises :class:`ValueError` for
        payloads over the transport's maximum (the paper notes a UDP
        packet cannot carry more than 64 KB and that chunking would
        change the algorithm, so oversized sends are a caller bug).
        """
        if size < 0:
            raise ValueError(f"message size must be >= 0, got {size}")
        if size > self._config.max_payload:
            raise ValueError(
                f"message of {size} bytes exceeds the transport maximum "
                f"of {self._config.max_payload} bytes"
            )
        jitter = 0.0
        if self._config.max_jitter > 0.0:
            jitter = rng.uniform(0.0, self._config.max_jitter)
        return DelaySample(
            base=self._config.base_delay,
            transmission=size / self._config.bandwidth,
            jitter=jitter,
        )

    def mean_delay(self, size: int) -> float:
        """Expected delay for a ``size``-byte message (no sampling)."""
        if size < 0:
            raise ValueError(f"message size must be >= 0, got {size}")
        return (
            self._config.base_delay
            + size / self._config.bandwidth
            + self._config.max_jitter / 2.0
        )

    def should_drop(self, rng: random.Random) -> bool:
        """Decide whether a single transmission is lost."""
        if self._config.drop_probability == 0.0:
            return False
        return rng.random() < self._config.drop_probability

    def should_duplicate(self, rng: random.Random) -> bool:
        """Decide whether a single transmission is duplicated."""
        if self._config.duplicate_probability == 0.0:
            return False
        return rng.random() < self._config.duplicate_probability
