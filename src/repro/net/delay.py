"""Size-dependent message delay model.

The paper's testbed is a 100 Mb/s LAN where a small message transits in
about 0.1 ms, and Figure 6 (bottom) shows write latency growing linearly
with payload size up to the 64 KB UDP limit.  This module provides the
linear cost model that underlies both observations::

    delay(size) = base_delay + size / bandwidth + jitter

Instances are pure: they compute delays from a caller-provided random
stream so that simulation runs are reproducible from their seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.config import NetworkConfig


@dataclass(frozen=True)
class DelaySample:
    """One sampled delay, decomposed for tracing and experiments."""

    base: float
    transmission: float
    jitter: float

    @property
    def total(self) -> float:
        """The full one-way delay in seconds."""
        return self.base + self.transmission + self.jitter


class DelayModel:
    """Computes one-way message delays under a :class:`NetworkConfig`.

    The config's constants are hoisted to instance attributes at
    construction: the model sits on the simulator's per-transmission
    path, where repeated dataclass field lookups are measurable.
    """

    def __init__(self, config: NetworkConfig):
        self._config = config
        self._base_delay = config.base_delay
        self._bandwidth = config.bandwidth
        self._max_jitter = config.max_jitter
        self._max_payload = config.max_payload
        self._drop_probability = config.drop_probability
        self._duplicate_probability = config.duplicate_probability

    @property
    def config(self) -> NetworkConfig:
        return self._config

    @property
    def drop_probability(self) -> float:
        """Per-transmission loss probability (see :meth:`should_drop`)."""
        return self._drop_probability

    @property
    def duplicate_probability(self) -> float:
        """Per-transmission duplication probability (see :meth:`should_duplicate`)."""
        return self._duplicate_probability

    def sample(self, size: int, rng: random.Random) -> DelaySample:
        """Sample the delay of a ``size``-byte message.

        ``size`` counts the application payload; per-packet framing is
        folded into ``base_delay``.  Raises :class:`ValueError` for
        payloads over the transport's maximum (the paper notes a UDP
        packet cannot carry more than 64 KB and that chunking would
        change the algorithm, so oversized sends are a caller bug).
        """
        if size < 0:
            raise ValueError(f"message size must be >= 0, got {size}")
        if size > self._max_payload:
            raise ValueError(
                f"message of {size} bytes exceeds the transport maximum "
                f"of {self._max_payload} bytes"
            )
        jitter = 0.0
        if self._max_jitter > 0.0:
            jitter = rng.uniform(0.0, self._max_jitter)
        return DelaySample(
            base=self._base_delay,
            transmission=size / self._bandwidth,
            jitter=jitter,
        )

    def sample_total(self, size: int, rng: random.Random) -> float:
        """Sample one total delay without building a :class:`DelaySample`.

        The simulator's per-transmission path only needs the scalar;
        the float arithmetic (and the random stream consumption) is
        identical to ``sample(size, rng).total``, so seeded runs are
        unaffected by which entry point a caller uses.
        """
        if size < 0:
            raise ValueError(f"message size must be >= 0, got {size}")
        if size > self._max_payload:
            raise ValueError(
                f"message of {size} bytes exceeds the transport maximum "
                f"of {self._max_payload} bytes"
            )
        if self._max_jitter > 0.0:
            jitter = rng.uniform(0.0, self._max_jitter)
        else:
            jitter = 0.0
        return self._base_delay + size / self._bandwidth + jitter

    def mean_delay(self, size: int) -> float:
        """Expected delay for a ``size``-byte message (no sampling)."""
        if size < 0:
            raise ValueError(f"message size must be >= 0, got {size}")
        return (
            self._base_delay
            + size / self._bandwidth
            + self._max_jitter / 2.0
        )

    def should_drop(self, rng: random.Random) -> bool:
        """Decide whether a single transmission is lost."""
        if self._drop_probability == 0.0:
            return False
        return rng.random() < self._drop_probability

    def should_duplicate(self, rng: random.Random) -> bool:
        """Decide whether a single transmission is duplicated."""
        if self._duplicate_probability == 0.0:
            return False
        return rng.random() < self._duplicate_probability
