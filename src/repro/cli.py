"""Command-line interface: regenerate the paper's figures and tables.

Usage::

    python -m repro figure6-top
    python -m repro figure6-bottom --repeats 20
    python -m repro figure1
    python -m repro lower-bounds
    python -m repro log-complexity
    python -m repro ablations
    python -m repro weaker-memory
    python -m repro kv-bench [--quick]
    python -m repro bench [--quick]
    python -m repro soak --list
    python -m repro soak soak-100k --seed 7
    python -m repro soak --quick --workers 2
    python -m repro fleet --scenarios soak-100k --seeds 0..9 --workers 8
    python -m repro fleet --quick --seeds 0..1 --workers 2
    python -m repro trace crash-during-write --format chrome
    python -m repro stats soak-100k --quick
    python -m repro trace-bench [--quick]
    python -m repro lint [--format json] [--rule DET001] [--check-stale]
    python -m repro all

The figure/table subcommands print the same rows/series the paper
reports (see docs/protocols.md for the paper-vs-measured mapping);
``bench`` and ``soak`` track the engine's own performance and the
scenario suite (see docs/benchmarks.md and docs/scenarios.md);
``trace``/``stats``/``trace-bench`` surface the observability layer
(see docs/observability.md); ``lint`` statically checks the
determinism and contract invariants (see docs/determinism.md) and is
the one subcommand that exits nonzero, when findings remain.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional


class CommandFailed(Exception):
    """A subcommand produced output but the process must exit nonzero.

    ``repro lint`` raises this when findings remain: the report is in
    ``output`` (so :func:`run` callers and tests still see it), and
    :func:`main` turns it into exit status 1 for CI.
    """

    def __init__(self, output: str) -> None:
        super().__init__(output)
        self.output = output


def _seed_kw(args: argparse.Namespace) -> Dict[str, int]:
    """``{"seed": N}`` when ``--seed`` was given, else ``{}``.

    Every subcommand takes the same ``--seed`` flag (from the shared
    parent parser) with the same default: ``None``, meaning "use the
    command's documented per-run seeds".  Handlers forward an explicit
    seed to their harness with this helper, so the plumbing is uniform
    instead of ad hoc per subparser.
    """
    seed = getattr(args, "seed", None)
    return {} if seed is None else {"seed": seed}


def seed_report(args: argparse.Namespace) -> str:
    """The uniform seed line every command's output starts with."""
    seed = getattr(args, "seed", None)
    if seed is None:
        return "seed: command defaults (override with --seed)"
    return f"seed: {seed}"


def _cmd_figure6_top(args: argparse.Namespace) -> str:
    from repro.experiments.figure6 import figure6_top, format_figure6_top

    series = figure6_top(repeats=args.repeats, **_seed_kw(args))
    return (
        "Figure 6 (top): average write time vs. number of workstations\n"
        "(paper at N=5: crash-stop ~500us, transient ~700us, persistent ~900us)\n\n"
        + format_figure6_top(series)
    )


def _cmd_figure6_bottom(args: argparse.Namespace) -> str:
    from repro.experiments.figure6 import (
        figure6_bottom,
        format_figure6_bottom,
        linearity_of,
    )

    series = figure6_bottom(repeats=args.repeats, **_seed_kw(args))
    lines = [
        "Figure 6 (bottom): average write time vs. payload size, N = 5",
        "(the paper reports linear growth up to the 64 KB UDP limit)",
        "",
        format_figure6_bottom(series),
        "",
    ]
    for algorithm, points in series.items():
        slope, intercept, r2 = linearity_of(points)
        lines.append(
            f"{algorithm}: latency_us = {slope:.6f} * bytes + {intercept:.1f}"
            f"  (R^2 = {r2:.6f})"
        )
    return "\n".join(lines)


def _cmd_figure1(args: argparse.Namespace) -> str:
    from repro.experiments.figure1 import (
        format_figure1,
        run_persistent,
        run_transient,
    )

    return format_figure1(
        run_persistent(**_seed_kw(args)), run_transient(**_seed_kw(args))
    )


def _cmd_lower_bounds(args: argparse.Namespace) -> str:
    from repro.experiments.lower_bounds import (
        format_lower_bounds,
        run_rho1,
        run_rho2,
        run_rho3,
        run_rho4,
    )

    kw = _seed_kw(args)
    runs = [run_rho1(a, **kw) for a in ("persistent", "transient", "broken-no-prelog")]
    runs += [run_rho4(a, **kw) for a in ("persistent", "transient", "broken-no-writeback")]
    runs.append(run_rho2("persistent", **kw))
    runs.append(run_rho3("persistent", **kw))
    return (
        "Lower-bound runs (Theorems 1 and 2; Figures 2 and 3)\n\n"
        + format_lower_bounds(runs)
    )


def _cmd_log_complexity(args: argparse.Namespace) -> str:
    from repro.experiments.log_complexity import (
        format_log_complexity,
        measure_log_complexity,
    )

    rows = measure_log_complexity(operations=args.operations, **_seed_kw(args))
    return (
        "Measured causal logs per operation vs. the paper's bounds\n\n"
        + format_log_complexity(rows)
    )


def _cmd_ablations(args: argparse.Namespace) -> str:
    from repro.experiments.ablations import format_ablations, run_all_ablations

    return (
        "Ablations: remove one design ingredient, observe its anomaly\n\n"
        + format_ablations(run_all_ablations(**_seed_kw(args)))
    )


def _cmd_show_run(args: argparse.Namespace) -> str:
    from repro.experiments.figure1 import run_persistent, run_transient
    from repro.viz import render_history

    persistent = run_persistent(**_seed_kw(args))
    transient = run_transient(**_seed_kw(args))
    return (
        "Space-time diagrams of the Figure 1 runs (cf. the paper's figure)\n\n"
        "persistent algorithm -- recovery finishes the interrupted write:\n\n"
        + render_history(persistent.history, width=92)
        + "\n\ntransient algorithm -- the interrupted write overlaps W(v3):\n\n"
        + render_history(transient.history, width=92)
    )


def _cmd_complexity(args: argparse.Namespace) -> str:
    from repro.experiments.complexity import format_complexity, measure_complexity

    results = measure_complexity(operations=5, **_seed_kw(args))
    return (
        "Message and time complexity per operation\n"
        "(the paper: 4 communication steps for any operation; minimizing\n"
        " logs adds no messages or steps over the crash-stop baseline)\n\n"
        + format_complexity(results)
    )


def _cmd_weaker_memory(args: argparse.Namespace) -> str:
    from repro.experiments.weaker_memory import (
        COMPARED,
        format_costs,
        format_inversions,
        measure_costs,
        new_old_inversion_run,
    )

    rows = measure_costs(repeats=args.repeats, **_seed_kw(args))
    inversions = [new_old_inversion_run(a, **_seed_kw(args)) for a in COMPARED]
    return (
        "Section VI: weaker-than-atomic emulations\n\n"
        + format_costs(rows)
        + "\n\nNew/old inversion schedule:\n\n"
        + format_inversions(inversions)
    )


def _cmd_kv_bench(args: argparse.Namespace) -> str:
    from repro.experiments.kv_bench import format_kv_bench, run_kv_bench

    clients = getattr(args, "clients", 16)
    rows = run_kv_bench(
        quick=getattr(args, "quick", False),
        protocol=getattr(args, "protocol", "persistent"),
        num_clients=clients,
        operations_per_client=getattr(args, "operations", 30) or 30,
        **_seed_kw(args),
    )
    return (
        "KV store: simulated-time throughput vs. shard count and batch window\n"
        f"({clients} zipfian closed-loop clients; per-key histories checked "
        "for atomicity)\n\n" + format_kv_bench(rows)
    )


def _cmd_bench(args: argparse.Namespace) -> str:
    from repro.experiments.bench import format_bench, run_bench, write_bench_files

    report = run_bench(
        quick=getattr(args, "quick", False),
        repeats=getattr(args, "bench_repeats", None),
        **_seed_kw(args),
    )
    paths = write_bench_files(report, getattr(args, "output_dir", "."))
    return (
        "Engine performance trajectory (wall-clock; see BENCH_*.json)\n\n"
        + format_bench(report)
        + "\n\nwrote " + ", ".join(paths)
    )


def _cmd_soak(args: argparse.Namespace) -> str:
    from repro.scenarios.soak import (
        format_scenario_list,
        format_soak_results,
        run_soak,
        run_soak_suite,
        write_soak_file,
    )

    if getattr(args, "list", False):
        return format_scenario_list()
    scenario = getattr(args, "scenario", None)
    quick = getattr(args, "quick", False)
    output_dir = getattr(args, "output_dir", ".")
    if scenario is None:
        # Bare ``repro soak`` (and ``repro all``) smoke the whole
        # library at quick budgets; ``--ops`` sets one explicit budget
        # for every scenario instead.  ``--workers N`` shards the
        # sweep across a process pool (same results, same order).
        ops = getattr(args, "ops", None)
        workers = getattr(args, "workers", None)
        results = run_soak_suite(
            protocol=getattr(args, "protocol", None),
            seed=getattr(args, "seed", None),
            ops=ops,
            workers=workers,
        )
        path = write_soak_file(results, output_dir, quick=ops is None)
        budgets = (
            f"{ops}-op budgets" if ops is not None else "quick smoke budgets"
        )
        sharding = (
            f"; {workers} workers" if workers is not None and workers > 1
            else ""
        )
        return (
            f"Scenario suite ({budgets}{sharding}; see docs/scenarios.md)\n\n"
            + format_soak_results(results)
            + f"\n\nwrote {path}"
        )
    ops = getattr(args, "ops", None)
    result = run_soak(
        scenario,
        protocol=getattr(args, "protocol", None),
        seed=getattr(args, "seed", None),
        ops=ops,
        quick=quick,
    )
    # The payload's quick flag records whether the budget was actually
    # trimmed; an explicit --ops overrides --quick in run_soak.
    path = write_soak_file([result], output_dir, quick=quick and ops is None)
    return result.summary() + f"\n\nwrote {path}"


def _cmd_fleet(args: argparse.Namespace) -> str:
    import sys as _sys

    from repro.scenarios.fleet import (
        build_fleet_specs,
        parse_int_list,
        run_fleet,
        run_scaling,
    )
    from repro.scenarios.soak import format_soak_results, write_soak_file

    scenarios = (
        [name for name in args.scenarios.split(",") if name]
        if getattr(args, "scenarios", None)
        else None
    )
    if getattr(args, "seeds", None):
        seeds = parse_int_list(args.seeds, "seed")
    elif getattr(args, "seed", None) is not None:
        seeds = [args.seed]
    else:
        seeds = [None]
    protocols = (
        [name for name in args.protocols.split(",") if name]
        if getattr(args, "protocols", None)
        else None
    )
    specs = build_fleet_specs(
        scenarios=scenarios,
        seeds=seeds,
        protocols=protocols,
        ops=getattr(args, "ops", None),
        quick=getattr(args, "quick", False),
    )

    def stream(finished: int, total: int, spec, result) -> None:
        # Stream completions as they land (stderr: the composed report
        # still goes to stdout at the end, in stable spec order).
        print(
            f"[{finished}/{total}] {spec.label()}: "
            f"{'PASS' if result.verdict else 'FAIL'} "
            f"({result.completed} ops, {result.wall_s:.2f}s)",
            file=_sys.stderr,
            flush=True,
        )

    kwargs = dict(
        parity=getattr(args, "parity", "canary"),
        timeout=getattr(args, "timeout", None),
        on_result=stream,
    )
    scaling_rows = None
    scaling_text = ""
    if getattr(args, "scaling", None):
        counts = parse_int_list(args.scaling, "worker count")
        reports, scaling_rows = run_scaling(specs, counts, **kwargs)
        report = reports[-1]
        header = (
            f"{'workers':>7}  {'wall':>9}  {'ops/s':>12}  "
            f"{'speedup':>8}  {'efficiency':>10}  verdict"
        )
        scaling_text = "\n".join(
            [
                "",
                f"scaling ({len(specs)} runs per point; baseline "
                f"workers={counts[0]}):",
                header,
                "-" * len(header),
            ]
            + [
                f"{row['workers']:>7}  {row['wall_s']:>8.2f}s  "
                f"{row['ops_per_s']:>10,.0f}/s  "
                f"{row['speedup_vs_baseline']:>7.2f}x  "
                f"{row['efficiency']:>9.1%}  "
                f"{'PASS' if row['verdict'] else 'FAIL'}"
                for row in scaling_rows
            ]
        )
    else:
        report = run_fleet(specs, workers=getattr(args, "workers", None),
                           **kwargs)
    path = write_soak_file(
        report.results,
        getattr(args, "output_dir", "."),
        quick=getattr(args, "quick", False),
        fleet=report.as_dict(),
        scaling=scaling_rows,
    )
    return (
        f"Scenario fleet ({len(specs)} runs; see docs/scenarios.md)\n\n"
        + format_soak_results(report.results)
        + "\n\n"
        + report.summary()
        + scaling_text
        + f"\n\nwrote {path}"
    )


def _run_named_soak(args: argparse.Namespace, scenario: str):
    from repro.scenarios.soak import run_soak

    return run_soak(
        scenario,
        protocol=getattr(args, "protocol", None),
        seed=getattr(args, "seed", None),
        ops=getattr(args, "ops", None),
        quick=getattr(args, "quick", False),
    )


def _cmd_trace(args: argparse.Namespace) -> str:
    import json
    from pathlib import Path

    from repro.scenarios.soak import format_scenario_list

    scenario = getattr(args, "scenario", None)
    if scenario is None:
        return (
            "repro trace <scenario>: run a scenario, export its "
            "flight-recorder ring (see docs/observability.md)\n\n"
            + format_scenario_list()
        )
    result = _run_named_soak(args, scenario)
    ring = result.flight_recorder
    if ring is None:
        return result.summary() + (
            "\n\nthe run kept no flight recorder (ring disabled)"
        )
    fmt = getattr(args, "format", "chrome")
    if fmt == "text":
        payload = "\n".join(
            f"{event.time:12.6f}  {event.kind:<14} p{event.pid}"
            + (f"  {event.op}" if event.op is not None else "")
            for event in ring.events()
        )
        output = getattr(args, "output", None)
        if output is None:
            return result.summary() + "\n\n" + payload
    elif fmt == "jsonl":
        payload = ring.to_jsonl()
        output = getattr(args, "output", None) or f"TRACE_{scenario}.jsonl"
    else:
        payload = json.dumps(ring.to_chrome_trace()) + "\n"
        output = getattr(args, "output", None) or f"TRACE_{scenario}.json"
    Path(output).write_text(
        payload if payload.endswith("\n") or not payload else payload + "\n"
    )
    counts = ", ".join(
        f"{kind}={count}" for kind, count in sorted(ring.counts().items())
    )
    return (
        result.summary()
        + f"\n\nring: {len(ring):,} of {ring.total:,} events retained"
        + f" ({counts})"
        + f"\nwrote {output} ({fmt})"
    )


def _format_metrics_dict(metrics: Dict[str, object]) -> str:
    """Align a :meth:`MetricsSnapshot.as_dict` payload for the CLI."""
    scalars = dict(metrics.get("scalars", {}))
    hists = dict(metrics.get("histograms", {}))
    if not scalars and not hists:
        return "  (no metrics)"
    width = max(len(name) for name in list(scalars) + list(hists))
    lines = []
    for name, value in sorted(
        scalars.items(), key=lambda item: (-item[1], item[0])
    ):
        text = f"{value:,.0f}" if float(value).is_integer() else f"{value:,.6g}"
        lines.append(f"  {name:<{width}}  {text:>14}")
    for name, hist in sorted(hists.items()):
        lines.append(
            f"  {name:<{width}}  count={hist['count']:,} "
            f"mean={hist['mean'] * 1e6:,.0f}us p50={hist['p50'] * 1e6:,.0f}us "
            f"p99={hist['p99'] * 1e6:,.0f}us max={hist['max'] * 1e6:,.0f}us"
        )
    return "\n".join(lines)


def _cmd_stats(args: argparse.Namespace) -> str:
    from repro.scenarios.soak import format_scenario_list

    scenario = getattr(args, "scenario", None)
    if scenario is None:
        return (
            "repro stats <scenario>: run a scenario, report its metrics "
            "registry (see docs/observability.md)\n\n"
            + format_scenario_list()
        )
    result = _run_named_soak(args, scenario)
    sections = [result.summary(), "", "final metrics:",
                _format_metrics_dict(result.metrics or {})]
    for phase in result.phases:
        if phase.metrics:
            sections += ["", f"phase {phase.name} (diff):",
                         _format_metrics_dict(phase.metrics)]
    return "\n".join(sections)


def _cmd_trace_bench(args: argparse.Namespace) -> str:
    from repro.experiments.trace_bench import (
        format_trace_bench,
        run_trace_bench,
        write_trace_file,
    )

    report = run_trace_bench(
        quick=getattr(args, "quick", False),
        ops=getattr(args, "ops", None),
        repeats=getattr(args, "trace_repeats", None),
        **_seed_kw(args),
    )
    path = write_trace_file(report, getattr(args, "output_dir", "."))
    return (
        "Flight-recorder overhead A/B (wall-clock; see BENCH_trace.json)\n\n"
        + format_trace_bench(report)
        + f"\n\nwrote {path}"
    )


def _cmd_recovery_bench(args: argparse.Namespace) -> str:
    from repro.experiments.recovery_bench import (
        format_recovery_bench,
        run_recovery_bench,
        write_recovery_file,
    )

    report = run_recovery_bench(
        quick=getattr(args, "quick", False),
        seed=getattr(args, "seed", None),
    )
    path = write_recovery_file(report, getattr(args, "output_dir", "."))
    return (
        "Recovery-time SLO sweep (virtual time; merged into "
        "BENCH_engine.json)\n\n"
        + format_recovery_bench(report)
        + f"\n\nwrote {path}"
    )


def _cmd_lint(args: argparse.Namespace) -> str:
    from pathlib import Path

    from repro.lint import LintError, lint_paths, lint_tree

    rules = getattr(args, "rule", None) or None
    check_stale = getattr(args, "check_stale", False)
    paths = getattr(args, "paths", None)
    try:
        if paths:
            report = lint_paths(
                [Path(p) for p in paths],
                rule_ids=rules,
                check_stale=check_stale,
            )
        else:
            report = lint_tree(rule_ids=rules, check_stale=check_stale)
    except LintError as exc:
        raise CommandFailed(f"repro lint: error: {exc}")
    text = (
        report.format_json()
        if getattr(args, "format", "text") == "json"
        else report.format_text()
    )
    if not report.clean:
        raise CommandFailed(text)
    return text


COMMANDS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "figure6-top": _cmd_figure6_top,
    "figure6-bottom": _cmd_figure6_bottom,
    "figure1": _cmd_figure1,
    "lower-bounds": _cmd_lower_bounds,
    "log-complexity": _cmd_log_complexity,
    "message-complexity": _cmd_complexity,
    "ablations": _cmd_ablations,
    "weaker-memory": _cmd_weaker_memory,
    "show-run": _cmd_show_run,
    "kv-bench": _cmd_kv_bench,
    "bench": _cmd_bench,
    "soak": _cmd_soak,
    "fleet": _cmd_fleet,
    "trace": _cmd_trace,
    "stats": _cmd_stats,
    "trace-bench": _cmd_trace_bench,
    "recovery-bench": _cmd_recovery_bench,
    "lint": _cmd_lint,
}

#: Subcommands ``repro all`` skips: the flight-recorder diagnostics
#: want an explicit scenario, the trace-overhead A/B takes minutes at
#: its full budget, the fleet spawns a process pool sized to the
#: machine, and the linter is a static check with its own exit-status
#: contract, not an experiment -- run them deliberately (``repro
#: trace`` / ``repro stats`` / ``repro trace-bench`` / ``repro
#: fleet`` / ``repro lint``).
SKIPPED_BY_ALL = frozenset({"trace", "stats", "trace-bench", "fleet", "lint"})


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the evaluation of 'Robust Emulations of Shared "
            "Memory in a Crash-Recovery Model' (Guerraoui & Levy, ICDCS 2004)"
        ),
    )
    # Every subcommand shares the same seed flag with the same default
    # (None = the command's documented per-run seeds) and the same
    # reporting (the "seed:" line run() prepends).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--seed", type=int, default=None,
        help="override the run's seed(s); default: each command's "
        "documented per-run seeds",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name in COMMANDS:
        if name == "soak":
            sub = subparsers.add_parser(
                name,
                parents=[common],
                help="run fault/workload scenarios (see repro soak --list)",
            )
            sub.add_argument(
                "scenario", nargs="?", default=None,
                help="scenario name (omit to smoke the whole library)",
            )
            sub.add_argument(
                "--list", action="store_true",
                help="list the registered scenarios and exit",
            )
            sub.add_argument(
                "--quick", action="store_true",
                help="trim the operation budget to the CI smoke size "
                "(the whole-suite run is always smoke-sized unless "
                "--ops sets an explicit budget)",
            )
            sub.add_argument(
                "--ops", type=int, default=None,
                help="override the scenario's total operation budget",
            )
            sub.add_argument(
                "--protocol", default=None,
                help="override the scenario's default register protocol",
            )
            sub.add_argument(
                "--workers", type=int, default=None,
                help="shard the whole-suite sweep across N pool workers "
                "(ignored when a single scenario is named; results and "
                "fingerprints match the serial path)",
            )
            sub.add_argument(
                "--output-dir", dest="output_dir", default=".",
                help="directory for BENCH_soak.json (default: current directory)",
            )
            continue
        if name == "fleet":
            sub = subparsers.add_parser(
                name,
                parents=[common],
                help="sweep seeds x scenarios x protocols across a "
                "process pool (see docs/scenarios.md)",
            )
            sub.add_argument(
                "--scenarios", default=None,
                help="comma-separated scenario names (default: the whole "
                "library; see repro soak --list)",
            )
            sub.add_argument(
                "--seeds", default=None,
                help="seed sweep, e.g. 0..9 or 0,3,7 (default: --seed, "
                "else each scenario's default seed)",
            )
            sub.add_argument(
                "--protocols", default=None,
                help="comma-separated protocols to cross with every "
                "scenario (default: each scenario's default)",
            )
            sub.add_argument(
                "--ops", type=int, default=None,
                help="operation budget per run (default: scenario "
                "defaults, or smoke budgets with --quick)",
            )
            sub.add_argument(
                "--quick", action="store_true",
                help="trim every run to its CI smoke budget",
            )
            sub.add_argument(
                "--workers", type=int, default=None,
                help="pool size (default: the machine's core count)",
            )
            sub.add_argument(
                "--scaling", default=None,
                help="run the same fleet at several worker counts, e.g. "
                "1,2,4,8, and report speedup/efficiency per point",
            )
            sub.add_argument(
                "--parity", choices=("canary", "full", "off"),
                default="canary",
                help="serial re-execution to assert pool fingerprints "
                "byte-identical: one trimmed canary (default), every "
                "run, or off",
            )
            sub.add_argument(
                "--timeout", type=float, default=None,
                help="hard wall-clock deadline in seconds for the whole "
                "fleet (a deadlocked pool fails fast instead of hanging)",
            )
            sub.add_argument(
                "--output-dir", dest="output_dir", default=".",
                help="directory for BENCH_soak.json (default: current "
                "directory)",
            )
            continue
        if name in ("trace", "stats"):
            what = (
                "export its flight-recorder ring"
                if name == "trace"
                else "report its metrics registry"
            )
            sub = subparsers.add_parser(
                name, parents=[common],
                help=f"run a scenario, {what} (docs/observability.md)",
            )
            sub.add_argument(
                "scenario", nargs="?", default=None,
                help="scenario name (omit to list the library)",
            )
            sub.add_argument(
                "--quick", action="store_true",
                help="trim the operation budget to the CI smoke size",
            )
            sub.add_argument(
                "--ops", type=int, default=None,
                help="override the scenario's total operation budget",
            )
            sub.add_argument(
                "--protocol", default=None,
                help="override the scenario's default register protocol",
            )
            if name == "trace":
                sub.add_argument(
                    "--format", choices=("chrome", "jsonl", "text"),
                    default="chrome",
                    help="export format: Chrome trace_event JSON (load in "
                    "chrome://tracing or Perfetto), JSONL, or plain text "
                    "(default: chrome)",
                )
                sub.add_argument(
                    "--output", default=None,
                    help="output path (default: TRACE_<scenario>.json/.jsonl; "
                    "text prints to stdout)",
                )
            continue
        if name == "trace-bench":
            sub = subparsers.add_parser(
                name, parents=[common],
                help="measure trace-off vs ring-on vs full-trace overhead "
                "(writes BENCH_trace.json)",
            )
            sub.add_argument(
                "--quick", action="store_true",
                help="CI-sized A/B (trimmed budget, fewer repeats)",
            )
            sub.add_argument(
                "--ops", type=int, default=None,
                help="override the soak scenario's operation budget",
            )
            sub.add_argument(
                "--trace-repeats", dest="trace_repeats", type=int,
                default=None,
                help="timed repetitions per mode (default: 3, or 2 with "
                "--quick)",
            )
            sub.add_argument(
                "--output-dir", dest="output_dir", default=".",
                help="directory for BENCH_trace.json (default: current "
                "directory)",
            )
            continue
        if name == "lint":
            # No ``common`` parent: the linter is static analysis and
            # takes no seed; run() skips the seed line for it too.
            sub = subparsers.add_parser(
                name,
                help="statically check determinism & contract "
                "invariants; exits nonzero on findings "
                "(docs/determinism.md)",
            )
            sub.add_argument(
                "paths", nargs="*", default=None,
                help="files to lint (default: every module under "
                "src/repro)",
            )
            sub.add_argument(
                "--format", choices=("text", "json"), default="text",
                help="report format (default: text)",
            )
            sub.add_argument(
                "--rule", action="append", default=None, metavar="ID",
                help="check only this rule id (repeatable; default: "
                "every registered rule)",
            )
            sub.add_argument(
                "--check-stale", dest="check_stale", action="store_true",
                help="also report reasoned suppressions whose rule no "
                "longer fires on that line (LINT002)",
            )
            continue
        if name == "recovery-bench":
            sub = subparsers.add_parser(
                name, parents=[common],
                help="sweep ops x checkpointing and record log footprint "
                "and recovery time (merges into BENCH_engine.json)",
            )
            sub.add_argument(
                "--quick", action="store_true",
                help="CI-sized sweep (smaller operation budgets)",
            )
            sub.add_argument(
                "--output-dir", dest="output_dir", default=".",
                help="directory holding BENCH_engine.json (default: "
                "current directory)",
            )
            continue
        sub = subparsers.add_parser(
            name, parents=[common], help=f"regenerate {name}"
        )
        sub.add_argument(
            "--repeats", type=int, default=50,
            help="operations per data point (default: 50)",
        )
        sub.add_argument(
            "--operations", type=int, default=30,
            help="operations per workload (log-complexity, kv-bench; default: 30)",
        )
        if name == "kv-bench":
            sub.add_argument(
                "--quick", action="store_true",
                help="CI-sized smoke sweep (1 vs 8 shards, fewer operations)",
            )
            sub.add_argument(
                "--clients", type=int, default=16,
                help="closed-loop clients (default: 16)",
            )
            sub.add_argument(
                "--protocol", default="persistent",
                help="register protocol to run the store on (default: persistent)",
            )
        if name == "bench":
            sub.add_argument(
                "--quick", action="store_true",
                help="CI-sized run (fewer repeats, smaller KV sweep)",
            )
            sub.add_argument(
                "--output-dir", dest="output_dir", default=".",
                help="directory for BENCH_engine.json / BENCH_kv.json "
                "(default: current directory)",
            )
            sub.add_argument(
                "--bench-repeats", dest="bench_repeats", type=int, default=None,
                help="timed repetitions per engine/checker case "
                "(default: 10, or 3 with --quick)",
            )
    all_cmd = subparsers.add_parser(
        "all", parents=[common], help="run every experiment"
    )
    all_cmd.add_argument("--repeats", type=int, default=20)
    all_cmd.add_argument("--operations", type=int, default=20)
    return parser


def run(argv: Optional[List[str]] = None) -> str:
    """Execute the CLI and return the produced text (for tests)."""
    args = build_parser().parse_args(argv)
    if args.command == "all":
        sections = [seed_report(args)]
        for name, command in COMMANDS.items():
            if name in SKIPPED_BY_ALL:
                continue
            sections.append("=" * 72)
            sections.append(f"== {name}")
            sections.append("=" * 72)
            sections.append(command(args))
            sections.append("")
        return "\n".join(sections)
    if args.command == "lint":
        # No seed line: lint output must stay machine-parseable
        # (--format json) and seeds are meaningless to static checks.
        return COMMANDS[args.command](args)
    return seed_report(args) + "\n\n" + COMMANDS[args.command](args)


def main() -> int:
    try:
        print(run(sys.argv[1:]))
    except CommandFailed as failed:
        print(failed.output)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
