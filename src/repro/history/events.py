"""The event vocabulary of histories (Section III-A of the paper).

A history is a sequence of events of four kinds: invocations, replies,
crashes and recoveries.  Crash and recovery events are associated with
exactly one process; invocations and replies with one process and one
object (we model a single register object, so the object is implicit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.ids import OperationId, ProcessId

READ = "read"
WRITE = "write"
KINDS = (READ, WRITE)


@dataclass(frozen=True)
class HistoryEvent:
    """Base class of history events; ``time`` orders the sequence."""

    time: float
    pid: ProcessId


@dataclass(frozen=True)
class Invoke(HistoryEvent):
    """An invocation event of a read or write operation."""

    op: OperationId = None  # type: ignore[assignment]
    kind: str = READ
    value: Any = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.op is None:
            raise ValueError("Invoke requires an operation id")

    def __str__(self) -> str:
        if self.kind == WRITE:
            return f"p{self.pid}: inv W({self.value!r})"
        return f"p{self.pid}: inv R()"


@dataclass(frozen=True)
class Reply(HistoryEvent):
    """A reply event matching a previous invocation of the same process."""

    op: OperationId = None  # type: ignore[assignment]
    kind: str = READ
    result: Any = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.op is None:
            raise ValueError("Reply requires an operation id")

    def __str__(self) -> str:
        if self.kind == WRITE:
            return f"p{self.pid}: ret W -> ok"
        return f"p{self.pid}: ret R -> {self.result!r}"


@dataclass(frozen=True)
class Crash(HistoryEvent):
    """The process stopped executing; volatile state is lost."""

    def __str__(self) -> str:
        return f"p{self.pid}: CRASH"


@dataclass(frozen=True)
class Recover(HistoryEvent):
    """The process resumed execution after a matching crash."""

    def __str__(self) -> str:
        return f"p{self.pid}: RECOVER"
