"""Histories, atomicity checkers and causal-log accounting.

This package is the correctness machinery of the reproduction:

* :mod:`repro.history.events` / :mod:`repro.history.history` -- the
  event vocabulary of Section III-A (invocations, replies, crashes,
  recoveries) and well-formed histories;
* :mod:`repro.history.checker` -- black-box checkers for *persistent*
  and *transient* atomicity via completion / weak completion and an
  exhaustive linearization search;
* :mod:`repro.history.register_checker` -- a scalable white-box checker
  that verifies the tag-based partial order of Lemmas 1-3;
* :mod:`repro.history.causal_logs` -- engine-level accounting of the
  paper's cost metric (causal logs per operation);
* :mod:`repro.history.partition` -- projection of a multi-register
  (key-value) run onto per-register histories the checkers accept.
"""

from repro.history.causal_logs import CausalDepthTracker
from repro.history.checker import (
    AtomicityVerdict,
    check_persistent_atomicity,
    check_transient_atomicity,
)
from repro.history.events import Crash, HistoryEvent, Invoke, Recover, Reply
from repro.history.history import History, OperationRecord
from repro.history.partition import partition_history
from repro.history.recorder import HistoryRecorder

__all__ = [
    "AtomicityVerdict",
    "CausalDepthTracker",
    "Crash",
    "History",
    "HistoryEvent",
    "HistoryRecorder",
    "Invoke",
    "OperationRecord",
    "Recover",
    "Reply",
    "check_persistent_atomicity",
    "check_transient_atomicity",
    "partition_history",
]
