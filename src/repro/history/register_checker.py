"""Scalable white-box atomicity checker based on operation tags.

The exhaustive checker of :mod:`repro.history.checker` is the ground
truth but exponential.  For soak runs with thousands of operations we
exploit protocol knowledge: every operation reports the timestamp
(:class:`~repro.common.timestamps.Tag`) it wrote or read, and the proof
of the paper's Section IV-B (via Lemmas 1-3, after Lemma 13.16 of
Lynch's *Distributed Algorithms*) shows atomicity follows from simple
conditions on those tags:

1. distinct writes carry distinct tags (Lemma 2);
2. if ``op1`` precedes ``op2`` in real time then
   ``tag(op1) <= tag(op2)``, strictly if ``op2`` is a write (Lemma 1);
3. a read's result is the value written by the write whose tag it
   returns, or the initial value for the bottom tag (Lemma 3).

These conditions certify *transient* atomicity of the completed
operations (pending writes may take effect late, which tags order
consistently).  For *persistent* atomicity one more condition is
needed, covering the paper's orphan-value anomaly:

4. a pending write must take effect -- if ever -- before the writer's
   next invocation: if any read returns the pending write's tag, then
   every completed operation invoked after that next invocation must
   carry a tag ``>=`` the pending write's.

The checker trusts the tags the protocol reported (hence "white-box");
it is used as a cross-check against the black-box checker on small
histories and as the only affordable checker on large ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.common.ids import OperationId
from repro.common.timestamps import Tag, bottom_tag
from repro.history.checker import PERSISTENT, TRANSIENT
from repro.history.events import Invoke, WRITE
from repro.history.history import History, OperationRecord
from repro.history.recorder import HistoryRecorder


@dataclass
class TagCheckResult:
    """Outcome of the white-box check."""

    ok: bool
    criterion: str
    violations: List[str]
    operations: int

    def __bool__(self) -> bool:
        return self.ok


def check_tagged_history(
    history: History,
    recorder: HistoryRecorder,
    criterion: str = PERSISTENT,
    initial_value: Any = None,
) -> TagCheckResult:
    """Verify conditions 1-4 above on a recorded run."""
    if criterion not in (PERSISTENT, TRANSIENT):
        raise ValueError(f"unknown criterion {criterion!r}")
    history.assert_well_formed()
    records = history.operations()
    completed = [record for record in records if not record.pending]
    violations: List[str] = []

    tags: Dict[OperationId, Tag] = {}
    for record in completed:
        tag = recorder.tag_of(record.op)
        if tag is None:
            violations.append(f"{record}: completed operation reported no tag")
            continue
        tags[record.op] = tag

    _check_distinct_write_tags(completed, tags, violations)
    _check_precedence(completed, tags, violations)
    _check_read_values(records, tags, recorder, initial_value, violations)
    if criterion == PERSISTENT:
        _check_pending_write_deadlines(history, records, tags, recorder, violations)

    return TagCheckResult(
        ok=not violations,
        criterion=criterion,
        violations=violations,
        operations=len(records),
    )


def _check_distinct_write_tags(
    completed: List[OperationRecord],
    tags: Dict[OperationId, Tag],
    violations: List[str],
) -> None:
    seen: Dict[Tag, OperationRecord] = {}
    for record in completed:
        if record.kind != WRITE or record.op not in tags:
            continue
        tag = tags[record.op]
        other = seen.get(tag)
        if other is not None:
            violations.append(
                f"duplicate write tag {tag}: {other} and {record}"
            )
        seen[tag] = record


def _check_precedence(
    completed: List[OperationRecord],
    tags: Dict[OperationId, Tag],
    violations: List[str],
) -> None:
    # Sort by reply index; compare each op to later-invoked ones.  A
    # quadratic scan is fine at soak scale (tens of thousands of pairs).
    for op1 in completed:
        if op1.op not in tags:
            continue
        for op2 in completed:
            if op2.op not in tags or op1.op == op2.op:
                continue
            if op1.reply_index is None or op1.reply_index >= op2.invoke_index:
                continue  # not a real-time precedence pair
            tag1, tag2 = tags[op1.op], tags[op2.op]
            if op2.kind == WRITE:
                if not tag1 < tag2:
                    violations.append(
                        f"precedence violated: {op1} (tag {tag1}) precedes "
                        f"write {op2} (tag {tag2}) but tags are not increasing"
                    )
            else:
                if not tag1 <= tag2:
                    violations.append(
                        f"precedence violated: {op1} (tag {tag1}) precedes "
                        f"read {op2} (tag {tag2}) but the read's tag is lower"
                    )


def _check_read_values(
    records: List[OperationRecord],
    tags: Dict[OperationId, Tag],
    recorder: HistoryRecorder,
    initial_value: Any,
    violations: List[str],
) -> None:
    # Map write tag -> written value, for completed AND pending writes:
    # a pending write's value may legitimately be read (it took effect
    # even though the writer crashed); its tag is whatever the protocol
    # recorded for it or what readers returned.
    written: Dict[Tag, Any] = {bottom_tag(): initial_value}
    for record in records:
        if record.kind != WRITE:
            continue
        tag = tags.get(record.op) or recorder.tag_of(record.op)
        if tag is not None:
            written[tag] = record.value
    for record in records:
        if record.kind != "read" or record.pending:
            continue
        tag = tags.get(record.op)
        if tag is None:
            continue  # already reported
        if tag not in written:
            # The read's tag does not correspond to any known write;
            # tolerate only if it matches some written value by equality
            # (a pending write whose tag was never recorded).
            matches = [r for r in records if r.kind == WRITE and r.value == record.result]
            if not matches and record.result != initial_value:
                violations.append(
                    f"{record}: returned tag {tag} matches no write"
                )
            continue
        expected = written[tag]
        if record.result != expected:
            violations.append(
                f"{record}: returned {record.result!r} but tag {tag} "
                f"was written with {expected!r}"
            )


def _check_pending_write_deadlines(
    history: History,
    records: List[OperationRecord],
    tags: Dict[OperationId, Tag],
    recorder: HistoryRecorder,
    violations: List[str],
) -> None:
    events = history.events
    for pending in records:
        if pending.kind != WRITE or not pending.pending:
            continue
        # The pending write is only constrained if it visibly took
        # effect: some completed read returned its value.
        pending_tag = _infer_pending_tag(pending, records, tags, recorder)
        if pending_tag is None:
            continue
        deadline = _next_invocation_index(events, pending)
        if deadline is None:
            continue
        for other in records:
            if other.pending or other.op not in tags:
                continue
            # The deadline is the writer's next invocation; the pending
            # reply must appear strictly before it, so the bounding
            # operation itself (invoke_index == deadline) already
            # follows the pending write.
            if other.invoke_index < deadline:
                continue
            if tags[other.op] < pending_tag:
                violations.append(
                    f"orphan value: pending {pending} (tag {pending_tag}) must "
                    f"take effect before event {deadline}, but later "
                    f"{other} carries smaller tag {tags[other.op]}"
                )


def _infer_pending_tag(
    pending: OperationRecord,
    records: List[OperationRecord],
    tags: Dict[OperationId, Tag],
    recorder: HistoryRecorder,
) -> Optional[Tag]:
    recorded = recorder.tag_of(pending.op)
    if recorded is not None:
        return recorded
    for record in records:
        if record.kind != "read" or record.pending:
            continue
        if record.result == pending.value and record.op in tags:
            # Only trust the inference when the value is unambiguous.
            writers = [
                r for r in records if r.kind == WRITE and r.value == pending.value
            ]
            if len(writers) == 1:
                return tags[record.op]
    return None


def _next_invocation_index(
    events: List[Any], pending: OperationRecord
) -> Optional[int]:
    for index in range(pending.invoke_index + 1, len(events)):
        event = events[index]
        if event.pid == pending.pid and isinstance(event, Invoke):
            return index
    return None
