"""Scalable white-box atomicity checker based on operation tags.

The exhaustive checker of :mod:`repro.history.checker` is the ground
truth but exponential.  For soak runs with thousands of operations we
exploit protocol knowledge: every operation reports the timestamp
(:class:`~repro.common.timestamps.Tag`) it wrote or read, and the proof
of the paper's Section IV-B (via Lemmas 1-3, after Lemma 13.16 of
Lynch's *Distributed Algorithms*) shows atomicity follows from simple
conditions on those tags:

1. distinct writes carry distinct tags (Lemma 2);
2. if ``op1`` precedes ``op2`` in real time then
   ``tag(op1) <= tag(op2)``, strictly if ``op2`` is a write (Lemma 1);
3. a read's result is the value written by the write whose tag it
   returns, or the initial value for the bottom tag (Lemma 3).

These conditions certify *transient* atomicity of the completed
operations (pending writes may take effect late, which tags order
consistently).  For *persistent* atomicity one more condition is
needed, covering the paper's orphan-value anomaly:

4. a pending write must take effect -- if ever -- before the writer's
   next invocation: if any read returns the pending write's tag, then
   every completed operation invoked after that next invocation must
   carry a tag ``>=`` the pending write's.

The checker trusts the tags the protocol reported (hence "white-box");
it is used as a cross-check against the black-box checker on small
histories and as the only affordable checker on large ones.

Complexity.  Every condition is checked in one sweep over the records
(which :meth:`~repro.history.history.History.operations` already hands
out in invocation order) plus O(N log N) heap/bisect work:

* condition 2 replaces the all-pairs precedence scan with a sweep that
  retires replied operations from a min-heap ordered by reply index and
  tracks the *maximum* tag over everything retired so far -- ``op2``
  violates precedence against *some* predecessor iff it violates it
  against the max-tag predecessor (strictness chosen per ``op2``'s
  kind);
* condition 3 prebuilds the tag->written-value and value->writer-count
  indexes once instead of rescanning all records per read;
* condition 4 prebuilds per-process invocation indexes (deadline = the
  writer's next invocation, found by bisect) and a suffix-minimum of
  completed-operation tags by invocation index -- a pending write
  escapes its window iff the minimum tag at-or-after its deadline is
  smaller than its own.

The sweep reports one representative violating pair per operation (the
extremal one) where the quadratic scan reported every pair; the verdict
is identical.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.ids import OperationId
from repro.common.timestamps import Tag, bottom_tag
from repro.history.checker import PERSISTENT, TRANSIENT
from repro.history.events import Invoke, READ, WRITE
from repro.history.history import History, OperationRecord
from repro.history.recorder import HistoryRecorder


@dataclass
class TagCheckResult:
    """Outcome of the white-box check."""

    ok: bool
    criterion: str
    violations: List[str]
    operations: int

    def __bool__(self) -> bool:
        return self.ok


def check_tagged_history(
    history: History,
    recorder: HistoryRecorder,
    criterion: str = PERSISTENT,
    initial_value: Any = None,
) -> TagCheckResult:
    """Verify conditions 1-4 above on a recorded run."""
    if criterion not in (PERSISTENT, TRANSIENT):
        raise ValueError(f"unknown criterion {criterion!r}")
    history.assert_well_formed()
    records = history.operations()
    completed = [record for record in records if not record.pending]
    violations: List[str] = []

    tags: Dict[OperationId, Tag] = {}
    for record in completed:
        tag = recorder.tag_of(record.op)
        if tag is None:
            violations.append(f"{record}: completed operation reported no tag")
            continue
        tags[record.op] = tag

    _check_distinct_write_tags(completed, tags, violations)
    _check_precedence(completed, tags, violations)
    _check_read_values(records, tags, recorder, initial_value, violations)
    if criterion == PERSISTENT:
        _check_pending_write_deadlines(history, records, tags, recorder, violations)

    return TagCheckResult(
        ok=not violations,
        criterion=criterion,
        violations=violations,
        operations=len(records),
    )


def _check_distinct_write_tags(
    completed: List[OperationRecord],
    tags: Dict[OperationId, Tag],
    violations: List[str],
) -> None:
    seen: Dict[Tag, OperationRecord] = {}
    for record in completed:
        if record.kind != WRITE or record.op not in tags:
            continue
        tag = tags[record.op]
        other = seen.get(tag)
        if other is not None:
            violations.append(
                f"duplicate write tag {tag}: {other} and {record}"
            )
        seen[tag] = record


def _check_precedence(
    completed: List[OperationRecord],
    tags: Dict[OperationId, Tag],
    violations: List[str],
) -> None:
    # Sweep in invocation order.  ``replied`` holds tagged operations
    # not yet known to precede the current one, as a min-heap on reply
    # index; entries whose reply lands before the current invocation
    # are retired into a running maximum.  An operation violates
    # condition 2 against some real-time predecessor iff it violates it
    # against the max-tag predecessor.
    replied: List[Tuple[int, OperationRecord]] = []
    max_tag: Optional[Tag] = None
    max_record: Optional[OperationRecord] = None
    for record in completed:
        if record.op not in tags:
            continue
        invoke_index = record.invoke_index
        while replied and replied[0][0] < invoke_index:
            _, predecessor = heapq.heappop(replied)
            tag = tags[predecessor.op]
            if max_tag is None or tag > max_tag:
                max_tag, max_record = tag, predecessor
        tag = tags[record.op]
        if max_tag is not None:
            if record.kind == WRITE:
                if not max_tag < tag:
                    violations.append(
                        f"precedence violated: {max_record} (tag {max_tag}) "
                        f"precedes write {record} (tag {tag}) but tags are "
                        f"not increasing"
                    )
            elif not max_tag <= tag:
                violations.append(
                    f"precedence violated: {max_record} (tag {max_tag}) "
                    f"precedes read {record} (tag {tag}) but the read's "
                    f"tag is lower"
                )
        # reply_index is an event index, hence unique: the heap never
        # has to compare the (uncomparable) records in its entries.
        heapq.heappush(replied, (record.reply_index, record))


class _ValueIndex:
    """How many write records carry each value, with O(1) lookup.

    Values are protocol payloads, so they are not necessarily hashable;
    unhashable ones fall back to a (normally empty) equality-scanned
    list, preserving the semantics of the old per-read linear scan.
    """

    def __init__(self) -> None:
        self._counts: Dict[Any, int] = {}
        self._unhashable: List[Any] = []

    def add(self, value: Any) -> None:
        try:
            self._counts[value] = self._counts.get(value, 0) + 1
        except TypeError:
            self._unhashable.append(value)

    def count(self, value: Any) -> int:
        try:
            count = self._counts.get(value, 0)
        except TypeError:
            count = 0
        if self._unhashable:
            count += sum(1 for other in self._unhashable if other == value)
        return count


def _check_read_values(
    records: List[OperationRecord],
    tags: Dict[OperationId, Tag],
    recorder: HistoryRecorder,
    initial_value: Any,
    violations: List[str],
) -> None:
    # Map write tag -> written value, for completed AND pending writes:
    # a pending write's value may legitimately be read (it took effect
    # even though the writer crashed); its tag is whatever the protocol
    # recorded for it or what readers returned.
    written: Dict[Tag, Any] = {bottom_tag(): initial_value}
    writers = _ValueIndex()
    for record in records:
        if record.kind != WRITE:
            continue
        tag = tags.get(record.op)
        if tag is None:
            tag = recorder.tag_of(record.op)
        if tag is not None:
            written[tag] = record.value
        writers.add(record.value)
    for record in records:
        if record.kind != READ or record.pending:
            continue
        tag = tags.get(record.op)
        if tag is None:
            continue  # already reported
        if tag not in written:
            # The read's tag does not correspond to any known write;
            # tolerate only if it matches some written value by equality
            # (a pending write whose tag was never recorded).
            if writers.count(record.result) == 0 and record.result != initial_value:
                violations.append(
                    f"{record}: returned tag {tag} matches no write"
                )
            continue
        expected = written[tag]
        if record.result != expected:
            violations.append(
                f"{record}: returned {record.result!r} but tag {tag} "
                f"was written with {expected!r}"
            )


def _check_pending_write_deadlines(
    history: History,
    records: List[OperationRecord],
    tags: Dict[OperationId, Tag],
    recorder: HistoryRecorder,
    violations: List[str],
) -> None:
    pending_writes = [
        record for record in records if record.kind == WRITE and record.pending
    ]
    if not pending_writes:
        return
    # One pass over the events: every process's invocation event
    # indexes, in order.  A pending write's deadline is its writer's
    # next invocation, found by bisect.
    invokes_by_pid: Dict[Any, List[int]] = {}
    for index, event in enumerate(history):
        if isinstance(event, Invoke):
            invokes_by_pid.setdefault(event.pid, []).append(index)
    # Completed tagged operations by invocation index, with a suffix
    # minimum: the smallest tag carried by any operation invoked at or
    # after a given event index (and the operation carrying it, for
    # the diagnostic).
    tagged = [record for record in records if record.op in tags]
    invoke_indexes = [record.invoke_index for record in tagged]
    suffix_min: List[Tuple[Tag, OperationRecord]] = [None] * len(tagged)  # type: ignore[list-item]
    best: Optional[Tuple[Tag, OperationRecord]] = None
    for position in range(len(tagged) - 1, -1, -1):
        record = tagged[position]
        tag = tags[record.op]
        if best is None or tag < best[0]:
            best = (tag, record)
        suffix_min[position] = best
    inference = _PendingTagInference(records, tags)

    for pending in pending_writes:
        # The pending write is only constrained if it visibly took
        # effect: some completed read returned its value.
        pending_tag = recorder.tag_of(pending.op)
        if pending_tag is None:
            pending_tag = inference.infer(pending)
        if pending_tag is None:
            continue
        pid_invokes = invokes_by_pid.get(pending.pid, [])
        slot = bisect_right(pid_invokes, pending.invoke_index)
        if slot >= len(pid_invokes):
            continue  # the writer never invokes again: no deadline
        # The deadline is the writer's next invocation; the pending
        # reply must appear strictly before it, so the bounding
        # operation itself (invoke_index == deadline) already follows
        # the pending write.
        deadline = pid_invokes[slot]
        position = bisect_left(invoke_indexes, deadline)
        if position >= len(tagged):
            continue
        min_tag, min_record = suffix_min[position]
        if min_tag < pending_tag:
            violations.append(
                f"orphan value: pending {pending} (tag {pending_tag}) must "
                f"take effect before event {deadline}, but later "
                f"{min_record} carries smaller tag {min_tag}"
            )


class _PendingTagInference:
    """Infers an unrecorded pending write's tag from the reads.

    A pending write whose tag the protocol never recorded can still be
    pinned down when its value is unambiguous: exactly one write ever
    carried it, and some completed tagged read returned it -- that
    read's tag is the write's.  The value->first-read-tag and
    value->writer-count indexes are built lazily, once, on the first
    pending write that actually needs them.
    """

    def __init__(self, records: List[OperationRecord], tags: Dict[OperationId, Tag]):
        self._records = records
        self._tags = tags
        self._built = False
        self._read_tags: Dict[Any, Tag] = {}
        self._writers = _ValueIndex()
        self._unhashable_reads: List[Tuple[Any, Tag]] = []

    def _build(self) -> None:
        self._built = True
        for record in self._records:
            if record.kind == WRITE:
                self._writers.add(record.value)
            elif not record.pending and record.op in self._tags:
                tag = self._tags[record.op]
                try:
                    self._read_tags.setdefault(record.result, tag)
                except TypeError:
                    self._unhashable_reads.append((record.result, tag))

    def infer(self, pending: OperationRecord) -> Optional[Tag]:
        if not self._built:
            self._build()
        # Only trust the inference when the value is unambiguous.
        if self._writers.count(pending.value) != 1:
            return None
        try:
            tag = self._read_tags.get(pending.value)
        except TypeError:
            tag = None
        if tag is not None:
            return tag
        for result, read_tag in self._unhashable_reads:
            if result == pending.value:
                return read_tag
        return None
