"""Recording histories from a live run.

The simulator's nodes (and the asyncio runtime's nodes) report
invocations, replies, crashes and recoveries to a
:class:`HistoryRecorder`, which timestamps and appends them to a
:class:`~repro.history.history.History`.  The recorder also keeps the
per-operation metadata that the checkers and metrics want but that does
not belong in the formal history: the tag each operation used and its
measured causal-log count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.common.ids import OperationId, ProcessId
from repro.common.timestamps import Tag
from repro.history.events import Crash, Invoke, Recover, Reply
from repro.history.history import History

Clock = Callable[[], float]


@dataclass
class OperationMeta:
    """Side-channel facts about one operation (not part of the history)."""

    tag: Optional[Tag] = None
    causal_logs: Optional[int] = None
    messages_sent: int = 0
    #: Register instance the operation targeted (``None`` for the
    #: classic single-register runs); the KV layer records the key here
    #: so histories can be partitioned per register afterwards.
    register: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)


class HistoryRecorder:
    """Builds a :class:`History` plus per-operation metadata from a run."""

    def __init__(self, clock: Clock):
        self._clock = clock
        self.history = History()
        self.meta: Dict[OperationId, OperationMeta] = {}

    def record_invoke(
        self, op: OperationId, pid: ProcessId, kind: str, value: Any = None
    ) -> None:
        self.history.append(
            Invoke(time=self._clock(), pid=pid, op=op, kind=kind, value=value)
        )
        self.meta.setdefault(op, OperationMeta())

    def record_reply(
        self, op: OperationId, pid: ProcessId, kind: str, result: Any = None
    ) -> None:
        self.history.append(
            Reply(time=self._clock(), pid=pid, op=op, kind=kind, result=result)
        )

    def record_crash(self, pid: ProcessId) -> None:
        self.history.append(Crash(time=self._clock(), pid=pid))

    def record_recovery(self, pid: ProcessId) -> None:
        self.history.append(Recover(time=self._clock(), pid=pid))

    def record_tag(self, op: OperationId, tag: Tag) -> None:
        """Attach the tag an operation decided/returned (white-box data)."""
        self.meta.setdefault(op, OperationMeta()).tag = tag

    def record_causal_logs(self, op: OperationId, depth: int) -> None:
        """Attach the measured causal-log count of an operation."""
        self.meta.setdefault(op, OperationMeta()).causal_logs = depth

    def record_register(self, op: OperationId, register: Optional[str]) -> None:
        """Attach the register instance an operation targeted."""
        self.meta.setdefault(op, OperationMeta()).register = register

    def causal_logs(self, op: OperationId) -> Optional[int]:
        meta = self.meta.get(op)
        return meta.causal_logs if meta else None

    def tag_of(self, op: OperationId) -> Optional[Tag]:
        meta = self.meta.get(op)
        return meta.tag if meta else None

    def register_of(self, op: OperationId) -> Optional[str]:
        meta = self.meta.get(op)
        return meta.register if meta else None
