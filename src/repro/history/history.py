"""Histories and operation records.

A :class:`History` is the ordered event sequence of one run.  It offers
the derived views the checkers need: operation records (matched
invocation/reply pairs, pending invocations), per-process local
histories, and the well-formedness test of Section III-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.common.ids import OperationId, ProcessId
from repro.history.events import (
    KINDS,
    Crash,
    HistoryEvent,
    Invoke,
    Recover,
    Reply,
)


@dataclass(frozen=True)
class OperationRecord:
    """One operation execution reconstructed from a history.

    ``reply_index``/``result`` are ``None`` for pending invocations
    (the invoking process crashed, or the run was cut short).
    """

    op: OperationId
    pid: ProcessId
    kind: str
    value: Any
    invoke_index: int
    invoke_time: float
    reply_index: Optional[int] = None
    reply_time: Optional[float] = None
    result: Any = None

    @property
    def pending(self) -> bool:
        """Whether the invocation has no matching reply."""
        return self.reply_index is None

    @property
    def latency(self) -> Optional[float]:
        """Invocation-to-reply duration, or ``None`` if pending."""
        if self.reply_time is None:
            return None
        return self.reply_time - self.invoke_time

    def __str__(self) -> str:
        op_text = f"W({self.value!r})" if self.kind == "write" else "R()"
        if self.pending:
            return f"p{self.pid} {op_text} pending"
        if self.kind == "read":
            return f"p{self.pid} {op_text} -> {self.result!r}"
        return f"p{self.pid} {op_text} -> ok"


class MalformedHistoryError(ValueError):
    """The event sequence violates well-formedness (Section III-A)."""


class History:
    """An ordered sequence of invocation/reply/crash/recovery events."""

    def __init__(self, events: Optional[Sequence[HistoryEvent]] = None):
        self._events: List[HistoryEvent] = list(events) if events else []

    # -- construction ------------------------------------------------------

    def append(self, event: HistoryEvent) -> None:
        """Add ``event`` at the end of the history."""
        self._events.append(event)

    # -- basic access ------------------------------------------------------

    @property
    def events(self) -> List[HistoryEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[HistoryEvent]:
        return iter(self._events)

    def restricted_to(self, pid: ProcessId) -> "History":
        """The local history of process ``pid`` (``H`` at ``p``)."""
        return History([event for event in self._events if event.pid == pid])

    def object_events(self) -> "History":
        """The history without crash/recovery events."""
        return History(
            [
                event
                for event in self._events
                if isinstance(event, (Invoke, Reply))
            ]
        )

    # -- derived views ---------------------------------------------------------

    def operations(self) -> List[OperationRecord]:
        """All operation executions, in invocation order.

        Raises :class:`MalformedHistoryError` if a reply has no open
        matching invocation.
        """
        open_invocations: Dict[OperationId, OperationRecord] = {}
        records: List[OperationRecord] = []
        order: Dict[OperationId, int] = {}
        for index, event in enumerate(self._events):
            if isinstance(event, Invoke):
                if event.op in open_invocations:
                    raise MalformedHistoryError(
                        f"duplicate invocation of {event.op}"
                    )
                record = OperationRecord(
                    op=event.op,
                    pid=event.pid,
                    kind=event.kind,
                    value=event.value,
                    invoke_index=index,
                    invoke_time=event.time,
                )
                open_invocations[event.op] = record
                order[event.op] = len(records)
                records.append(record)
            elif isinstance(event, Reply):
                record = open_invocations.pop(event.op, None)
                if record is None:
                    raise MalformedHistoryError(
                        f"reply without matching invocation: {event.op}"
                    )
                completed = OperationRecord(
                    op=record.op,
                    pid=record.pid,
                    kind=record.kind,
                    value=record.value,
                    invoke_index=record.invoke_index,
                    invoke_time=record.invoke_time,
                    reply_index=index,
                    reply_time=event.time,
                    result=event.result,
                )
                records[order[event.op]] = completed
        return records

    def pending_operations(self) -> List[OperationRecord]:
        """Operations whose invocation has no matching reply."""
        return [record for record in self.operations() if record.pending]

    def completed_operations(self) -> List[OperationRecord]:
        """Operations with a matching reply."""
        return [record for record in self.operations() if not record.pending]

    # -- well-formedness ------------------------------------------------------

    def is_well_formed(self) -> bool:
        """Check Section III-A well-formedness of every local history.

        (a) a local history starts with an invocation or a crash,
        (b) a crash can only be followed by a matching recovery,
        (c) an invocation can only be followed by a crash or a reply.
        """
        try:
            self.assert_well_formed()
        except MalformedHistoryError:
            return False
        return True

    def assert_well_formed(self) -> None:
        """Like :meth:`is_well_formed`, raising a diagnostic on failure."""
        pids = {event.pid for event in self._events}
        for pid in pids:
            self._assert_local_well_formed(pid)

    def _assert_local_well_formed(self, pid: ProcessId) -> None:
        # State machine over the local history: 'idle' (may invoke or
        # crash), 'busy' (open invocation), 'down' (crashed).
        state = "start"
        open_op: Optional[OperationId] = None
        for event in self._events:
            if event.pid != pid:
                continue
            if isinstance(event, Invoke):
                if state in ("busy",):
                    raise MalformedHistoryError(
                        f"p{pid}: invocation while {open_op} is open"
                    )
                if state == "down":
                    raise MalformedHistoryError(
                        f"p{pid}: invocation while crashed"
                    )
                state = "busy"
                open_op = event.op
            elif isinstance(event, Reply):
                if state != "busy" or event.op != open_op:
                    raise MalformedHistoryError(
                        f"p{pid}: reply {event.op} does not match open invocation"
                    )
                state = "idle"
                open_op = None
            elif isinstance(event, Crash):
                if state == "down":
                    raise MalformedHistoryError(f"p{pid}: crash while crashed")
                state = "down"
                open_op = None
            elif isinstance(event, Recover):
                if state != "down":
                    raise MalformedHistoryError(
                        f"p{pid}: recovery without preceding crash"
                    )
                state = "idle"

    # -- debugging ---------------------------------------------------------------

    def format(self) -> str:
        """Readable multi-line transcript of the history."""
        return "\n".join(
            f"{event.time * 1e6:10.1f}us  {event}" for event in self._events
        )

    def __repr__(self) -> str:
        return f"History({len(self._events)} events)"
