"""Histories and operation records.

A :class:`History` is the ordered event sequence of one run.  It offers
the derived views the checkers need: operation records (matched
invocation/reply pairs, pending invocations), per-process local
histories, and the well-formedness test of Section III-A.

Incremental contract
--------------------

A history is **append-only**: events are only ever added at the end
(via :meth:`History.append` or the constructor), never removed or
reordered.  The derived views exploit that:

* :meth:`operations` keeps a cached record list and the set of open
  invocations, and folds only the events appended since the previous
  call into it -- one cheap scan per *new* event instead of a full
  reconstruction per call;
* :meth:`assert_well_formed` keeps one per-process state machine and
  likewise advances it only over the new suffix, so re-validating a
  grown history is O(new events);
* :meth:`completed_operations` / :meth:`pending_operations` memoize
  their filtered views against the history length.

Malformed input is still reported lazily, exactly as the from-scratch
scans did: :meth:`append` never raises, and the first violation is
raised (every time) by the view that would have detected it --
duplicate invocations and unmatched replies by :meth:`operations`,
local-history violations by :meth:`assert_well_formed`.  Since events
are append-only, a history that became malformed stays malformed, so
the cached diagnostic is permanent.

The views hand out fresh list copies; the cached records themselves are
immutable (:class:`OperationRecord` is frozen), so callers can hold on
to them across appends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.ids import OperationId, ProcessId
from repro.history.events import (
    KINDS,
    Crash,
    HistoryEvent,
    Invoke,
    Recover,
    Reply,
)

# Per-process well-formedness states (Section III-A).
_IDLE = 0  # may invoke or crash (also the initial state)
_BUSY = 1  # an invocation is open
_DOWN = 2  # crashed, awaiting recovery


@dataclass(frozen=True)
class OperationRecord:
    """One operation execution reconstructed from a history.

    ``reply_index``/``result`` are ``None`` for pending invocations
    (the invoking process crashed, or the run was cut short).
    """

    op: OperationId
    pid: ProcessId
    kind: str
    value: Any
    invoke_index: int
    invoke_time: float
    reply_index: Optional[int] = None
    reply_time: Optional[float] = None
    result: Any = None

    @property
    def pending(self) -> bool:
        """Whether the invocation has no matching reply."""
        return self.reply_index is None

    @property
    def latency(self) -> Optional[float]:
        """Invocation-to-reply duration, or ``None`` if pending."""
        if self.reply_time is None:
            return None
        return self.reply_time - self.invoke_time

    def __str__(self) -> str:
        op_text = f"W({self.value!r})" if self.kind == "write" else "R()"
        if self.pending:
            return f"p{self.pid} {op_text} pending"
        if self.kind == "read":
            return f"p{self.pid} {op_text} -> {self.result!r}"
        return f"p{self.pid} {op_text} -> ok"


class MalformedHistoryError(ValueError):
    """The event sequence violates well-formedness (Section III-A)."""


class History:
    """An ordered, append-only sequence of history events."""

    def __init__(self, events: Optional[Sequence[HistoryEvent]] = None):
        self._events: List[HistoryEvent] = list(events) if events else []
        # -- operations() cache: folded up to event _records_scanned.
        self._records: List[OperationRecord] = []
        self._open: Dict[OperationId, int] = {}  # op -> index in _records
        self._records_scanned = 0
        self._records_error: Optional[str] = None
        # -- memoized filtered views, keyed by history length.
        self._completed_memo: Optional[Tuple[int, List[OperationRecord]]] = None
        self._pending_memo: Optional[Tuple[int, List[OperationRecord]]] = None
        # -- well-formedness cache: per-pid state machines.
        self._wf_states: Dict[ProcessId, int] = {}
        self._wf_open: Dict[ProcessId, OperationId] = {}
        self._wf_scanned = 0
        self._wf_error: Optional[str] = None

    # -- construction ------------------------------------------------------

    def append(self, event: HistoryEvent) -> None:
        """Add ``event`` at the end of the history."""
        self._events.append(event)

    # -- basic access ------------------------------------------------------

    @property
    def events(self) -> List[HistoryEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[HistoryEvent]:
        return iter(self._events)

    def restricted_to(self, pid: ProcessId) -> "History":
        """The local history of process ``pid`` (``H`` at ``p``)."""
        return History([event for event in self._events if event.pid == pid])

    def object_events(self) -> "History":
        """The history without crash/recovery events."""
        return History(
            [
                event
                for event in self._events
                if isinstance(event, (Invoke, Reply))
            ]
        )

    # -- derived views ---------------------------------------------------------

    def operations(self) -> List[OperationRecord]:
        """All operation executions, in invocation order.

        Raises :class:`MalformedHistoryError` if a reply has no open
        matching invocation.
        """
        self._fold_records()
        if self._records_error is not None:
            raise MalformedHistoryError(self._records_error)
        return list(self._records)

    def _fold_records(self) -> None:
        """Fold events appended since the last call into the record cache."""
        if self._records_error is not None:
            return
        events = self._events
        records = self._records
        open_invocations = self._open
        index = self._records_scanned
        try:
            while index < len(events):
                event = events[index]
                if isinstance(event, Invoke):
                    if event.op in open_invocations:
                        raise MalformedHistoryError(
                            f"duplicate invocation of {event.op}"
                        )
                    open_invocations[event.op] = len(records)
                    records.append(
                        OperationRecord(
                            op=event.op,
                            pid=event.pid,
                            kind=event.kind,
                            value=event.value,
                            invoke_index=index,
                            invoke_time=event.time,
                        )
                    )
                elif isinstance(event, Reply):
                    slot = open_invocations.pop(event.op, None)
                    if slot is None:
                        raise MalformedHistoryError(
                            f"reply without matching invocation: {event.op}"
                        )
                    record = records[slot]
                    records[slot] = OperationRecord(
                        op=record.op,
                        pid=record.pid,
                        kind=record.kind,
                        value=record.value,
                        invoke_index=record.invoke_index,
                        invoke_time=record.invoke_time,
                        reply_index=index,
                        reply_time=event.time,
                        result=event.result,
                    )
                index += 1
        except MalformedHistoryError as error:
            # Append-only: the history can never become well-matched
            # again, so the diagnostic is cached permanently.
            self._records_error = str(error)
            raise
        finally:
            self._records_scanned = index

    def pending_operations(self) -> List[OperationRecord]:
        """Operations whose invocation has no matching reply."""
        records = self.operations()
        memo = self._pending_memo
        if memo is None or memo[0] != len(self._events):
            self._pending_memo = (
                len(self._events),
                [record for record in records if record.pending],
            )
        return list(self._pending_memo[1])

    def completed_operations(self) -> List[OperationRecord]:
        """Operations with a matching reply."""
        records = self.operations()
        memo = self._completed_memo
        if memo is None or memo[0] != len(self._events):
            self._completed_memo = (
                len(self._events),
                [record for record in records if not record.pending],
            )
        return list(self._completed_memo[1])

    # -- well-formedness ------------------------------------------------------

    def is_well_formed(self) -> bool:
        """Check Section III-A well-formedness of every local history.

        (a) a local history starts with an invocation or a crash,
        (b) a crash can only be followed by a matching recovery,
        (c) an invocation can only be followed by a crash or a reply.
        """
        try:
            self.assert_well_formed()
        except MalformedHistoryError:
            return False
        return True

    def assert_well_formed(self) -> None:
        """Like :meth:`is_well_formed`, raising a diagnostic on failure.

        Incremental: only the events appended since the previous call
        are validated (the first violation, once found, is permanent).
        """
        if self._wf_error is None and self._wf_scanned < len(self._events):
            self._wf_error = self._scan_well_formedness()
        if self._wf_error is not None:
            raise MalformedHistoryError(self._wf_error)

    def _scan_well_formedness(self) -> Optional[str]:
        """Advance the per-pid state machines; return the first violation."""
        events = self._events
        states = self._wf_states
        open_ops = self._wf_open
        index = self._wf_scanned
        try:
            while index < len(events):
                event = events[index]
                pid = event.pid
                state = states.get(pid, _IDLE)
                if isinstance(event, Invoke):
                    if state == _BUSY:
                        return (
                            f"p{pid}: invocation while {open_ops[pid]} is open"
                        )
                    if state == _DOWN:
                        return f"p{pid}: invocation while crashed"
                    states[pid] = _BUSY
                    open_ops[pid] = event.op
                elif isinstance(event, Reply):
                    if state != _BUSY or event.op != open_ops.get(pid):
                        return (
                            f"p{pid}: reply {event.op} does not match "
                            f"open invocation"
                        )
                    states[pid] = _IDLE
                    open_ops.pop(pid, None)
                elif isinstance(event, Crash):
                    if state == _DOWN:
                        return f"p{pid}: crash while crashed"
                    states[pid] = _DOWN
                    open_ops.pop(pid, None)
                elif isinstance(event, Recover):
                    if state != _DOWN:
                        return f"p{pid}: recovery without preceding crash"
                    states[pid] = _IDLE
                index += 1
            return None
        finally:
            self._wf_scanned = index

    # -- debugging ---------------------------------------------------------------

    def format(self) -> str:
        """Readable multi-line transcript of the history."""
        return "\n".join(
            f"{event.time * 1e6:10.1f}us  {event}" for event in self._events
        )

    def __repr__(self) -> str:
        return f"History({len(self._events)} events)"
