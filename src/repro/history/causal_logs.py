"""Engine-level accounting of the paper's cost metric: causal logs.

Section I-B defines the metric: two logs are *causally related* when
one causally precedes the other (in Lamport's happened-before sense),
and the cost of an operation is the length of the longest chain of
causally related logs it performs -- because causally independent logs
proceed in parallel and cost one log latency together, while a chain of
``k`` causal logs costs ``k * lambda`` on the critical path.

The accounting is deliberately implemented *outside* the protocols, at
the effect-execution boundary, so an algorithm cannot misreport its own
cost.  Each process hosts a :class:`CausalDepthTracker`, and the
environments thread a *depth context* through every handler:

* a client invocation starts its operation at depth 0;
* a message carries the sending handler's depth in its envelope;
* a :class:`~repro.protocol.base.Store` effect issued at depth ``d``
  completes at depth ``d + 1`` -- one more log on the chain;
* a handler's context is the maximum of the triggering event's depth
  and everything this process already logged *for the same operation*
  (Lamport's process order: a log performed here earlier precedes any
  later send from here, even a retransmitted acknowledgment);
* when the operation replies, its causal-log count is the maximum depth
  that reached the invoking process for that operation.

With this machinery the persistent algorithm measures exactly 2 causal
logs per write, the transient algorithm 1, reads at most 1 (0 without
concurrency), and the crash-stop baseline 0 -- Table/claims of
Section IV, reproduced as measurements rather than assertions.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.common.ids import OperationId

#: How many operations' depth data each process retains.  Operations
#: are short-lived; the cap only guards against unbounded growth in
#: very long soak runs.
DEFAULT_RETENTION = 4096


class CausalDepthTracker:
    """Per-process bookkeeping of operation causal-log depths."""

    def __init__(self, retention: int = DEFAULT_RETENTION):
        if retention < 1:
            raise ValueError("retention must be >= 1")
        self._retention = retention
        self._depths: "OrderedDict[OperationId, int]" = OrderedDict()

    def observe(self, op: Optional[OperationId], depth: int) -> int:
        """Fold an incoming event's depth into the operation's record.

        Returns the handler context: the maximum of the event's depth
        and anything previously recorded here for the same operation.
        For events outside any operation (``op is None``) the event
        depth passes through unchanged.
        """
        if depth < 0:
            raise ValueError("depth must be >= 0")
        if op is None:
            return depth
        known = self._depths.get(op, 0)
        context = max(known, depth)
        self._set(op, context)
        return context

    def record_store(self, op: Optional[OperationId], issue_depth: int) -> int:
        """Account one completed log issued at ``issue_depth``.

        Returns the depth of the completed store (``issue_depth + 1``),
        which becomes the context of the completion handler.
        """
        depth = issue_depth + 1
        if op is not None:
            known = self._depths.get(op, 0)
            if depth > known:
                self._set(op, depth)
        return depth

    def outgoing_depth(self, op: Optional[OperationId], handler_depth: int) -> int:
        """Depth to stamp on a message sent from a handler.

        The maximum of the handler's own context and every log this
        process performed for the operation -- the latter covers
        acknowledgments re-sent after the original log (process order
        still makes the log causally precede the resent ack).
        """
        if op is None:
            return handler_depth
        return max(handler_depth, self._depths.get(op, 0))

    def depth_of(self, op: OperationId) -> int:
        """Deepest causal log chain observed for ``op`` at this process."""
        return self._depths.get(op, 0)

    def reset(self) -> None:
        """Forget everything (used at crash: volatile bookkeeping)."""
        self._depths.clear()

    def _set(self, op: OperationId, depth: int) -> None:
        self._depths[op] = depth
        self._depths.move_to_end(op)
        while len(self._depths) > self._retention:
            self._depths.popitem(last=False)


def summarize_causal_logs(counts: Dict[str, list]) -> Dict[str, Dict[str, float]]:
    """Aggregate per-kind causal-log counts into min/mean/max rows.

    ``counts`` maps an operation kind (``"read"``/``"write"``) to the
    list of measured causal-log counts.  Used by the log-complexity
    experiment to print the paper's claims as a table.
    """
    summary: Dict[str, Dict[str, float]] = {}
    for kind, values in counts.items():
        if not values:
            continue
        summary[kind] = {
            "min": float(min(values)),
            "mean": sum(values) / len(values),
            "max": float(max(values)),
            "count": float(len(values)),
        }
    return summary
