"""Partitioning multi-register histories into per-register histories.

The formal histories of Section III-A talk about one register object,
and both atomicity checkers (:mod:`repro.history.checker`,
:mod:`repro.history.register_checker`) assume it.  A key-value run
multiplexes many register instances over the same processes, so its
recorded history interleaves operations on different registers -- and a
process may even have several operations open at once, one per
register, which makes the combined history ill-formed *as a
single-register history* while every per-register projection is
perfectly well-formed.

:func:`partition_history` restores the checkers' world view: it
projects the combined history onto each register, keeping

* that register's invocation and reply events, and
* **every** crash and recovery event -- a process crash is a crash of
  all the virtual registers it hosts, so failure events belong to every
  projection (and the projections stay well-formed: a local history may
  start with a crash).

Each projection can then be checked independently; per-register
atomicity of every projection is exactly the consistency a sharded
store promises (there is no cross-key ordering guarantee, as in any
per-key linearizable KV store).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.common.ids import OperationId
from repro.history.events import Crash, HistoryEvent, Invoke, Recover, Reply
from repro.history.history import History

RegisterOf = Callable[[OperationId], Optional[str]]


def partition_history(
    history: History,
    register_of: RegisterOf,
    registers: Optional[Iterable[Optional[str]]] = None,
) -> Dict[Optional[str], History]:
    """Split ``history`` into one history per register instance.

    ``register_of`` maps an operation id to the register it targeted
    (the KV layer's :meth:`~repro.history.recorder.HistoryRecorder.register_of`);
    operations mapping to ``None`` form the projection of the classic
    anonymous register.  ``registers`` optionally forces keys into the
    result even when no event mentions them (useful to assert that an
    untouched register has an empty-but-for-failures history).
    """
    partitions: Dict[Optional[str], History] = {}
    if registers is not None:
        for register in registers:
            partitions.setdefault(register, History())

    # Single pass.  A projection is created lazily at a register's first
    # invocation; every failure event seen so far belongs to it (failures
    # are shared by all registers), so the new projection is seeded with
    # the failure prefix -- which preserves per-projection event order.
    failures: List[HistoryEvent] = []
    for event in history:
        if isinstance(event, (Crash, Recover)):
            failures.append(event)
            for partition in partitions.values():
                partition.append(event)
        elif isinstance(event, (Invoke, Reply)):
            register = register_of(event.op)
            partition = partitions.get(register)
            if partition is None:
                partition = History(failures)
                partitions[register] = partition
            partition.append(event)
    return partitions
