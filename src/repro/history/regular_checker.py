"""Checkers for safe and regular register semantics (Lamport 1986).

Used by the Section VI extension: the regular emulation's histories are
*not* atomic in general (new/old inversion is allowed) but must satisfy
regularity, and everything must satisfy safety.  Definitions, for a
single-writer register:

* a read is **legal under safety** if, when it overlaps no write, it
  returns the value of the last write whose reply precedes the read's
  invocation (or the initial value); overlapping reads may return
  anything that was ever written (we still require a real value --
  Lamport's "arbitrary" is unhelpfully weak for testing);
* a read is **legal under regularity** if it returns the last preceding
  write's value or the value of some write it overlaps.

Pending writes count as overlapping every later read (their reply may
be arbitrarily late), which matches the crash-recovery reading: an
interrupted write's value may or may not be observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.history.events import WRITE
from repro.history.history import History, OperationRecord


@dataclass
class RegularityVerdict:
    """Outcome of a safety/regularity check."""

    ok: bool
    criterion: str
    violations: List[str]
    operations: int

    def __bool__(self) -> bool:
        return self.ok


def _last_preceding_write(
    reads_invoke: int, writes: List[OperationRecord]
) -> Optional[OperationRecord]:
    last: Optional[OperationRecord] = None
    for write in writes:
        if write.reply_index is not None and write.reply_index < reads_invoke:
            if last is None or write.reply_index > last.reply_index:
                last = write
    return last


def _overlapping_writes(
    read: OperationRecord, writes: List[OperationRecord]
) -> List[OperationRecord]:
    overlapping = []
    assert read.reply_index is not None
    for write in writes:
        starts_before_read_ends = write.invoke_index < read.reply_index
        ends_after_read_starts = (
            write.reply_index is None or write.reply_index > read.invoke_index
        )
        if starts_before_read_ends and ends_after_read_starts:
            overlapping.append(write)
    return overlapping


def check_regularity(history: History, initial_value: Any = None) -> RegularityVerdict:
    """Every completed read returns a regular value."""
    return _check(history, initial_value, criterion="regular")


def check_safety(history: History, initial_value: Any = None) -> RegularityVerdict:
    """Every completed read not overlapping a write returns the last value.

    Reads that do overlap writes are only required to return *some*
    written (or initial) value.
    """
    return _check(history, initial_value, criterion="safe")


def _check(history: History, initial_value: Any, criterion: str) -> RegularityVerdict:
    history.assert_well_formed()
    records = history.operations()
    writes = [record for record in records if record.kind == WRITE]
    violations: List[str] = []
    for read in records:
        if read.kind == WRITE or read.pending:
            continue
        last = _last_preceding_write(read.invoke_index, writes)
        last_value = initial_value if last is None else last.value
        overlapping = _overlapping_writes(read, writes)
        if not overlapping:
            # No concurrency: both criteria require the last value.
            if read.result != last_value:
                violations.append(
                    f"{read}: no concurrent write, expected {last_value!r}"
                )
            continue
        if criterion == "regular":
            allowed = [last_value] + [write.value for write in overlapping]
        else:  # safe: any value ever written (or initial)
            allowed = [initial_value] + [write.value for write in writes]
        if not any(read.result == candidate for candidate in allowed):
            violations.append(
                f"{read}: returned {read.result!r}, allowed {allowed!r}"
            )
    return RegularityVerdict(
        ok=not violations,
        criterion=criterion,
        violations=violations,
        operations=len(records),
    )
