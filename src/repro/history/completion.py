"""Completion rules for pending invocations (Sections III-B and III-C).

Given a well-formed history, a *completion* decides the fate of each
pending invocation: it is either absent, or gets a matching reply
subject to a placement bound that differs between the two criteria:

* **complete** (persistent atomicity): the reply must appear before the
  subsequent *invocation* of the same process;
* **weakly complete** (transient atomicity): the reply must appear
  before the subsequent *write reply* of the same process.

This module computes those placement bounds; the checkers build their
precedence relation from them.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.history.events import HistoryEvent, Invoke, Reply, WRITE
from repro.history.history import History, OperationRecord

PERSISTENT = "persistent"
TRANSIENT = "transient"


def pending_reply_bound(
    events: Sequence[HistoryEvent], record: OperationRecord, criterion: str
) -> float:
    """Exclusive upper bound (event index) for a pending op's reply.

    Returns ``math.inf`` when nothing constrains the placement (the
    process never performs the bounding event again).
    """
    if criterion not in (PERSISTENT, TRANSIENT):
        raise ValueError(f"unknown criterion {criterion!r}")
    for index in range(record.invoke_index + 1, len(events)):
        event = events[index]
        if event.pid != record.pid:
            continue
        if criterion == PERSISTENT and isinstance(event, Invoke):
            return float(index)
        if (
            criterion == TRANSIENT
            and isinstance(event, Reply)
            and event.kind == WRITE
        ):
            return float(index)
    return math.inf


def completion_windows(history: History, criterion: str):
    """Yield ``(record, bound)`` for every pending operation.

    Mostly a debugging/teaching helper: it shows exactly how much slack
    each criterion gives a crashed operation.  ``bound`` is an event
    index (exclusive) or ``math.inf``.
    """
    events = history.events
    for record in history.operations():
        if record.pending:
            yield record, pending_reply_bound(events, record, criterion)
