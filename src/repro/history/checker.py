"""Black-box checkers for persistent and transient atomicity.

Given a recorded history (invocations, replies, crashes, recoveries),
these checkers decide whether it satisfies the paper's consistency
criteria by *constructing a witness*: a completion of the history plus
a legal sequential ordering of the completed operations that preserves
operation precedence (Section III).

Completion rules
----------------

A pending invocation (one with no matching reply -- the invoking
process crashed, or the run was cut short) may be:

* **absent** from the completion (the operation never took effect), or
* **completed** by placing a matching reply

  * *persistent atomicity* (Section III-B): before the **subsequent
    invocation of the same process**;
  * *transient atomicity* (Section III-C, "weak completion"): before
    the **subsequent write reply of the same process** -- this is what
    lets an interrupted write overlap the writer's next write.

Pending *reads* are always treated as absent: a read has no effect on
the register, so if any completion with the read present linearizes,
the completion without it does too.

Search
------

The precedence relation (op1 precedes op2 iff op1's reply -- actual or
latest-allowed -- comes before op2's invocation) is a partial order; a
witness is a linear extension of it, over some subset that keeps all
completed operations, in which every read returns the last written
value.  :func:`check_history` explores linear extensions with
memoized depth-first search.  Exponential in the worst case, so meant
for the unit/property tests' histories (tens of operations); for large
soak runs use :mod:`repro.history.register_checker`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.common.ids import OperationId
from repro.history.completion import pending_reply_bound
from repro.history.events import WRITE
from repro.history.history import History, OperationRecord

PERSISTENT = "persistent"
TRANSIENT = "transient"
CRITERIA = (PERSISTENT, TRANSIENT)

#: Safety valve: histories with more operations than this are rejected
#: with a clear error instead of hanging the test suite.
MAX_OPERATIONS = 64


@dataclass
class AtomicityVerdict:
    """Outcome of an atomicity check."""

    ok: bool
    criterion: str
    #: Witness linearization (operation ids in order), when ``ok``.
    linearization: Optional[List[OperationId]] = None
    #: Pending operations the witness treats as absent, when ``ok``.
    dropped: Optional[List[OperationId]] = None
    #: Diagnostic for failures.
    reason: str = ""
    operations: int = 0

    def __bool__(self) -> bool:
        return self.ok


@dataclass
class _Op:
    """Internal operation view with effective response position."""

    index: int  # dense id used in bitset-free frozensets
    record: OperationRecord
    #: Exclusive upper bound on the reply position, as an event index;
    #: ``math.inf`` when unconstrained.  For completed operations this
    #: is the actual reply index.
    response_bound: float = math.inf
    pending: bool = False

    def precedes(self, other: "_Op") -> bool:
        """Mandatory precedence: must this op linearize before ``other``?"""
        if self.pending:
            # Latest allowed reply position is just before the bound
            # event, so precedence holds only for operations invoked at
            # or after the bound.
            return self.response_bound <= other.record.invoke_index
        return self.response_bound < other.record.invoke_index


def check_persistent_atomicity(
    history: History, initial_value: Any = None
) -> AtomicityVerdict:
    """Check that ``history`` is persistent atomic (Section III-B)."""
    return check_history(history, PERSISTENT, initial_value=initial_value)


def check_transient_atomicity(
    history: History, initial_value: Any = None
) -> AtomicityVerdict:
    """Check that ``history`` is transient atomic (Section III-C)."""
    return check_history(history, TRANSIENT, initial_value=initial_value)


def check_history(
    history: History, criterion: str, initial_value: Any = None
) -> AtomicityVerdict:
    """Check ``history`` against ``criterion`` and return a verdict."""
    if criterion not in CRITERIA:
        raise ValueError(f"criterion must be one of {CRITERIA}, got {criterion!r}")
    history.assert_well_formed()
    records = history.operations()
    if len(records) > MAX_OPERATIONS:
        raise ValueError(
            f"history has {len(records)} operations; the exhaustive checker "
            f"is capped at {MAX_OPERATIONS} -- use the register_checker "
            f"for large runs"
        )
    ops = _build_ops(history, records, criterion)
    searcher = _LinearizationSearch(ops, initial_value)
    witness = searcher.search()
    if witness is not None:
        order, dropped = witness
        return AtomicityVerdict(
            ok=True,
            criterion=criterion,
            linearization=[ops[i].record.op for i in order],
            dropped=[ops[i].record.op for i in dropped],
            operations=len(records),
        )
    return AtomicityVerdict(
        ok=False,
        criterion=criterion,
        reason=(
            "no completion of the history is equivalent to a legal "
            "sequential history preserving operation precedence"
        ),
        operations=len(records),
    )


def _build_ops(
    history: History, records: Sequence[OperationRecord], criterion: str
) -> List[_Op]:
    events = history.events
    ops: List[_Op] = []
    for dense_index, record in enumerate(records):
        if not record.pending:
            ops.append(
                _Op(
                    index=dense_index,
                    record=record,
                    response_bound=float(record.reply_index),
                    pending=False,
                )
            )
            continue
        bound = pending_reply_bound(events, record, criterion)
        ops.append(
            _Op(index=dense_index, record=record, response_bound=bound, pending=True)
        )
    return ops


class _LinearizationSearch:
    """Memoized DFS for a legal linear extension of the precedence order."""

    def __init__(self, ops: List[_Op], initial_value: Any):
        self._ops = ops
        self._initial_value = initial_value
        n = len(ops)
        # Precompute mandatory predecessor sets.
        self._preds: List[Set[int]] = [set() for _ in range(n)]
        for a in ops:
            for b in ops:
                if a.index != b.index and a.precedes(b):
                    self._preds[b.index].add(a.index)
        self._failed: Set[Tuple[FrozenSet[int], Any]] = set()
        # Witness accumulators (valid when search succeeds).
        self._order: List[int] = []
        self._dropped: List[int] = []

    def search(self) -> Optional[Tuple[List[int], List[int]]]:
        remaining = frozenset(op.index for op in self._ops)
        if self._dfs(remaining, None):
            return list(self._order), list(self._dropped)
        return None

    def _dfs(self, remaining: FrozenSet[int], value_key: Optional[int]) -> bool:
        if not remaining:
            return True
        if all(self._ops[i].pending for i in remaining):
            # Everything left can be treated as absent.
            self._dropped.extend(sorted(remaining))
            return True
        state = (remaining, value_key)
        if state in self._failed:
            return False
        current_value = (
            self._initial_value
            if value_key is None
            else self._ops[value_key].record.value
        )
        for i in sorted(remaining):
            if self._preds[i] & remaining:
                continue  # a mandatory predecessor is still unplaced
            op = self._ops[i]
            rest = remaining - {i}
            if op.record.kind == WRITE:
                # Branch 1: linearize the write here.
                self._order.append(i)
                if self._dfs(rest, i):
                    return True
                self._order.pop()
                # Branch 2: a pending write may be absent.
                if op.pending:
                    self._dropped.append(i)
                    if self._dfs(rest, value_key):
                        return True
                    self._dropped.pop()
            else:
                if op.pending:
                    # Pending reads are always treated as absent.
                    self._dropped.append(i)
                    if self._dfs(rest, value_key):
                        return True
                    self._dropped.pop()
                elif self._values_equal(op.record.result, current_value):
                    self._order.append(i)
                    if self._dfs(rest, value_key):
                        return True
                    self._order.pop()
        self._failed.add(state)
        return False

    @staticmethod
    def _values_equal(a: Any, b: Any) -> bool:
        return a == b
