"""Declarative configuration for clusters, networks and storage.

Defaults are calibrated to the paper's testbed (Section V-A): a 100 Mb/s
local area network of Pentium IV workstations where a message transits
between workstations in about 0.1 ms and logging synchronously to a
local IDE disk takes about twice as long.  All durations are seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError

#: One microsecond, for readable arithmetic on calibrated constants.
MICROSECOND = 1e-6

#: Message transit time between two workstations on the paper's LAN.
PAPER_DELTA = 100 * MICROSECOND

#: Synchronous single-log latency on the paper's IDE disks ("logging a
#: single byte on a local disk might take twice as long" as delta).
PAPER_LAMBDA = 200 * MICROSECOND

#: 100 Mb/s Ethernet in bytes per second.
PAPER_NETWORK_BANDWIDTH = 100e6 / 8

#: Sustained sequential write bandwidth of an early-2000s IDE disk.
PAPER_DISK_BANDWIDTH = 25e6

#: Largest datagram the paper's UDP transport can carry (Section V-B).
UDP_MAX_PAYLOAD = 64 * 1024


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the (fair-lossy) message-passing substrate.

    The one-way delay of a message of ``size`` bytes is::

        base_delay + size / bandwidth + jitter

    where jitter is drawn uniformly from ``[0, max_jitter]``.  Loss,
    duplication and reordering model the fair-lossy channels of the
    model section: a message sent infinitely often to a correct process
    is received infinitely often.
    """

    base_delay: float = PAPER_DELTA
    bandwidth: float = PAPER_NETWORK_BANDWIDTH
    max_jitter: float = 0.0
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    max_payload: int = UDP_MAX_PAYLOAD
    #: Sender-side cost per transmission (system call, NIC serialization).
    #: A broadcast to N processes occupies the sender N times this long,
    #: which is what makes latency grow gently with cluster size in the
    #: paper's top graph of Figure 6.
    send_overhead: float = 5 * MICROSECOND

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise ConfigurationError("base_delay must be >= 0")
        if self.send_overhead < 0:
            raise ConfigurationError("send_overhead must be >= 0")
        if self.bandwidth <= 0:
            raise ConfigurationError("bandwidth must be > 0")
        if self.max_jitter < 0:
            raise ConfigurationError("max_jitter must be >= 0")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ConfigurationError("drop_probability must be in [0, 1)")
        if not 0.0 <= self.duplicate_probability < 1.0:
            raise ConfigurationError("duplicate_probability must be in [0, 1)")
        if self.max_payload <= 0:
            raise ConfigurationError("max_payload must be > 0")


@dataclass(frozen=True)
class StorageConfig:
    """Parameters of the synchronous stable-storage substrate.

    Logging ``size`` bytes costs::

        base_latency + size / bandwidth + jitter

    mirroring the linear growth the paper measures in Figure 6 (bottom).
    The storage is synchronous: the ``store`` primitive only completes
    once the data is durable, as required to preserve even transient
    atomicity (Section V-A).
    """

    base_latency: float = PAPER_LAMBDA
    bandwidth: float = PAPER_DISK_BANDWIDTH
    max_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base_latency < 0:
            raise ConfigurationError("base_latency must be >= 0")
        if self.bandwidth <= 0:
            raise ConfigurationError("bandwidth must be > 0")
        if self.max_jitter < 0:
            raise ConfigurationError("max_jitter must be >= 0")


@dataclass(frozen=True)
class ClusterConfig:
    """Configuration of one emulated shared-memory cluster."""

    num_processes: int = 3
    network: NetworkConfig = field(default_factory=NetworkConfig)
    storage: StorageConfig = field(default_factory=StorageConfig)
    #: How long a process waits before retransmitting an unacknowledged
    #: round message (the ``repeat ... until`` loops of Figures 4 and 5).
    retransmit_interval: float = 20 * PAPER_DELTA
    #: Local computation cost charged per protocol step ("it costs
    #: almost nothing for a process to execute a local operation").
    local_step_cost: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_processes < 1:
            raise ConfigurationError("num_processes must be >= 1")
        if self.retransmit_interval <= 0:
            raise ConfigurationError("retransmit_interval must be > 0")
        if self.local_step_cost < 0:
            raise ConfigurationError("local_step_cost must be >= 0")

    @property
    def majority(self) -> int:
        """Size of a majority quorum: ``ceil((n + 1) / 2)``."""
        return self.num_processes // 2 + 1
