"""Process and operation identifiers.

Processes are numbered ``0 .. n-1``; the number doubles as the tiebreak
component of timestamps (:class:`repro.common.timestamps.Tag`).
Operations get globally unique ids so that histories, traces and the
causal-log accounting can refer to a specific operation execution even
when the same process runs many reads and writes.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass

ProcessId = int
"""A process identifier: a small non-negative integer."""


@dataclass(frozen=True, order=True)
class OperationId:
    """Unique id of one operation execution.

    ``pid`` is the invoking process; ``seq`` is a per-run monotonically
    increasing counter handed out by :func:`make_operation_id`.  Ids are
    ordered so they can key sorted containers deterministically.

    Ids key the hottest dicts in the engine (causal-depth tracking,
    recorder indexes, quorum rounds), so the hash is computed once at
    construction instead of building a ``(pid, seq)`` tuple per lookup.
    """

    pid: ProcessId
    seq: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.pid, self.seq)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"op(p{self.pid}#{self.seq})"


_COUNTER = itertools.count()
_COUNTER_LOCK = threading.Lock()


def make_operation_id(pid: ProcessId) -> OperationId:
    """Mint a fresh :class:`OperationId` for process ``pid``.

    Thread-safe: the asyncio runtime invokes operations from multiple
    event-loop callbacks and the simulator from a single thread; a lock
    keeps the counter safe in both settings.
    """
    with _COUNTER_LOCK:
        seq = next(_COUNTER)
    return OperationId(pid=pid, seq=seq)
