"""Lexicographic timestamps ("tags") used to order written values.

The emulation algorithms order values with monotonically increasing
timestamps.  A timestamp is a pair ``[sn, pid]`` of a sequence number
and the id of the writing process; pairs are compared lexicographically
so that two concurrent writers that pick the same sequence number are
still totally ordered (footnote 2 and Lemma 2 of the paper).

The transient-atomicity algorithm (Figure 5 of the paper) additionally
uses a *recovery counter* ``rec``: the writer increments its sequence
number by ``rec + 1`` so that a write started after a recovery cannot
reuse the sequence number of the write it interrupted.  We carry
``rec`` as an explicit third, least-significant component of the tag.
For crash-stop algorithms and the persistent algorithm it is always
zero, so the tag degenerates to the paper's ``[sn, pid]`` pair.  For
the transient algorithm it additionally serves as a tiebreak between
incarnations of the same writer; see
:mod:`repro.protocol.transient` for why that closes a duplicate-tag
corner case while preserving the algorithm's log complexity.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple


@dataclass(frozen=True)
class Tag:
    """An ordered ``[sequence_number, process_id, recovery_count]`` timestamp.

    Instances are immutable, hashable and totally ordered.  The order is
    lexicographic: by :attr:`sn`, then :attr:`pid`, then :attr:`rec`.
    All four comparisons are spelled out (rather than derived with
    ``functools.total_ordering``) because tag comparisons sit on the
    quorum-counting hot path and the derived operators cost a second
    dispatch through ``__lt__``.

    >>> Tag(1, 0) < Tag(1, 1) < Tag(2, 0)
    True
    >>> Tag(1, 1, 0) < Tag(1, 1, 2)
    True
    """

    sn: int
    pid: int
    rec: int = 0

    def __post_init__(self) -> None:
        if self.sn < 0:
            raise ValueError(f"sequence number must be >= 0, got {self.sn}")
        if self.pid < 0:
            raise ValueError(f"process id must be >= 0, got {self.pid}")
        if self.rec < 0:
            raise ValueError(f"recovery count must be >= 0, got {self.rec}")

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Tag):
            return NotImplemented
        return (self.sn, self.pid, self.rec) < (other.sn, other.pid, other.rec)

    def __le__(self, other: object) -> bool:
        if not isinstance(other, Tag):
            return NotImplemented
        return (self.sn, self.pid, self.rec) <= (other.sn, other.pid, other.rec)

    def __gt__(self, other: object) -> bool:
        if not isinstance(other, Tag):
            return NotImplemented
        return (self.sn, self.pid, self.rec) > (other.sn, other.pid, other.rec)

    def __ge__(self, other: object) -> bool:
        if not isinstance(other, Tag):
            return NotImplemented
        return (self.sn, self.pid, self.rec) >= (other.sn, other.pid, other.rec)

    def next_for(self, pid: int, increment: int = 1, rec: int = 0) -> "Tag":
        """Return the tag a writer with id ``pid`` derives from this one.

        The writer takes the highest sequence number it collected from a
        majority and increments it: by one in the persistent algorithm
        (Figure 4, line 11), by ``rec + 1`` in the transient algorithm
        (Figure 5, line 11).  The caller passes the already-computed
        ``increment`` and the writer's recovery count ``rec``.
        """
        if increment < 1:
            raise ValueError(f"increment must be >= 1, got {increment}")
        return Tag(self.sn + increment, pid, rec)

    def as_tuple(self) -> Tuple[int, int, int]:
        """Return the ``(sn, pid, rec)`` triple, e.g. for serialization."""
        return (self.sn, self.pid, self.rec)

    @classmethod
    def from_tuple(cls, triple: Tuple[int, ...]) -> "Tag":
        """Rebuild a tag from :meth:`as_tuple` output (2- or 3-tuple)."""
        if len(triple) == 2:
            sn, pid = triple
            return cls(sn, pid)
        sn, pid, rec = triple
        return cls(sn, pid, rec)

    def __str__(self) -> str:
        if self.rec:
            return f"[{self.sn},{self.pid},r{self.rec}]"
        return f"[{self.sn},{self.pid}]"


def bottom_tag() -> Tag:
    """The initial tag every process starts with (value ``\\u22a5``)."""
    return Tag(0, 0, 0)


def max_tag(tags: Iterable[Tag]) -> Optional[Tag]:
    """Return the lexicographically largest tag, or ``None`` if empty.

    Used by both rounds of the algorithms: the writer picks the highest
    collected sequence number; the reader picks the value with the
    highest collected tag.
    """
    best: Optional[Tag] = None
    for tag in tags:
        if best is None or tag > best:
            best = tag
    return best
