"""Shared building blocks used across the repro library.

This package holds the pieces that every layer of the emulation depends
on but that carry no protocol logic of their own:

* :mod:`repro.common.timestamps` -- the lexicographically ordered
  ``[sequence_number, process_id]`` tags the paper uses to order written
  values.
* :mod:`repro.common.ids` -- process and operation identifiers.
* :mod:`repro.common.errors` -- the exception hierarchy.
* :mod:`repro.common.config` -- declarative configuration objects for
  clusters, networks and storage devices.
"""

from repro.common.errors import (
    ConfigurationError,
    NotRecoveredError,
    OperationAborted,
    ProcessCrashed,
    ProtocolError,
    ReproError,
    StorageError,
    TransportError,
)
from repro.common.ids import OperationId, ProcessId, make_operation_id
from repro.common.timestamps import Tag, bottom_tag, max_tag
from repro.common.values import SizedValue, payload_size

__all__ = [
    "ConfigurationError",
    "NotRecoveredError",
    "OperationAborted",
    "OperationId",
    "ProcessCrashed",
    "ProcessId",
    "ProtocolError",
    "ReproError",
    "SizedValue",
    "StorageError",
    "Tag",
    "TransportError",
    "bottom_tag",
    "make_operation_id",
    "max_tag",
    "payload_size",
]
