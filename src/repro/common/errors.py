"""Exception hierarchy for the repro library.

Every exception raised by the library derives from :class:`ReproError`
so that callers can catch library failures without catching unrelated
bugs.  The distinctions mirror the crash-recovery model:

* a *crash* is not an error of the algorithm -- it is an event of the
  model -- but user code that awaits an operation on a crashed process
  observes :class:`OperationAborted`;
* :class:`ProcessCrashed` guards against driving a crashed process
  (sending it invocations while it is down);
* :class:`NotRecoveredError` guards against invoking operations on a
  process that restarted but has not finished its recovery procedure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by the repro library."""


class ConfigurationError(ReproError):
    """A cluster/network/storage configuration is invalid."""


class ProcessCrashed(ReproError):
    """The targeted process is currently crashed."""


class NotRecoveredError(ReproError):
    """The process restarted but its recovery procedure has not finished.

    The model (Section II of the paper) lets a recovering process run an
    unbounded recovery procedure before it resumes the algorithm; client
    operations are rejected until that procedure completes.
    """


class OperationAborted(ReproError):
    """The invoking process crashed before the operation returned.

    In history terms the invocation stays *pending*: it has no matching
    reply.  The atomicity checkers decide how pending invocations may be
    completed (persistent) or weakly completed (transient).
    """


class ProtocolError(ReproError):
    """A protocol state machine was driven incorrectly.

    Raised, for example, when a second operation is invoked on a
    process that already has one outstanding (processes are sequential
    in the model), or when a crash-stop protocol is asked to recover.
    """


class CapabilityError(ReproError):
    """A backend was asked for something it cannot do.

    The unified façade (:mod:`repro.api`) exposes one vocabulary over
    every backend; operations a backend cannot honor -- virtual-time
    clock control on the live cluster, network partitions over real
    sockets -- raise this instead of silently degrading.  Check
    :attr:`repro.api.Cluster.capabilities` before calling them.
    """


class StorageError(ReproError):
    """A stable-storage read or write failed."""


class TransportError(ReproError):
    """A runtime transport could not be set up or used."""
