"""Helpers for sizing and representing written values.

The experiments write payloads of configurable size (Figure 6 bottom
sweeps 4 bytes up to the 64 KB UDP limit), so the cost models need a
byte size for every value.  :func:`payload_size` provides a
deterministic estimate; tests that need exact sizing write ``bytes``
payloads, whose size is their length.
"""

from __future__ import annotations

from typing import Any

#: Size billed for scalar values (a 4-byte integer padded to a word,
#: matching the paper's first experiment which writes a 4-byte integer).
SCALAR_SIZE = 4


def payload_size(value: Any) -> int:
    """Billable byte size of a written value.

    * ``None`` (the initial value, the paper's ``\\u22a5``) is free;
    * :class:`SizedValue` is billed at its declared size;
    * ``bytes``/``bytearray`` are billed at their length;
    * ``str`` is billed at its UTF-8 length;
    * ints, floats and bools are billed at :data:`SCALAR_SIZE`;
    * anything else is billed at the length of its ``repr`` -- a stable
      proxy that keeps exotic test payloads roughly honest.
    """
    if value is None:
        return 0
    if isinstance(value, SizedValue):
        return value.size
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return SCALAR_SIZE
    return len(repr(value))


class SizedValue:
    """A value with an explicit billable size.

    Lets workloads simulate large payloads without allocating them::

        SizedValue("photo-1", size=48 * 1024)

    Equality and hashing are by ``label`` so registers treat two sized
    values with the same label as the same written value.
    """

    __slots__ = ("label", "size")

    def __init__(self, label: Any, size: int):
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self.label = label
        self.size = size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SizedValue):
            return NotImplemented
        return self.label == other.label

    def __hash__(self) -> int:
        return hash(("SizedValue", self.label))

    def __repr__(self) -> str:
        return f"SizedValue({self.label!r}, size={self.size})"
