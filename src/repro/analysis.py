"""Trace analysis: message, step and log complexity per operation.

The paper claims its algorithms "use the same number of communication
steps as [the crash-stop algorithm of Lynch-Shvartsman], namely 4 for
any operation" -- i.e. minimizing logs costs nothing in messages or
rounds.  This module derives those complexity measures from a run's
trace so the claim can be checked as a measurement:

* **rounds**: distinct broadcast rounds the operation ran (query and
  propagate phases);
* **communication steps**: ``2 * rounds`` -- each round is a request
  step plus an acknowledgment step;
* **messages**: total transmissions attributable to the operation
  (requests, acks and retransmissions, across all processes);
* **logs**: total stable-storage writes performed for the operation
  (distinct from *causal* logs: a persistent write totals ~1 + majority
  logs, but only 2 of them chain causally).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.common.ids import OperationId
from repro.sim import tracing


@dataclass
class OperationProfile:
    """Complexity measures of one operation, derived from the trace."""

    op: OperationId
    kind: str = "?"
    messages: int = 0
    rounds: int = 0
    logs: int = 0
    #: Which request kinds the initiator broadcast (one round each).
    request_kinds: Set[str] = field(default_factory=set)

    @property
    def communication_steps(self) -> int:
        """Request + acknowledgment step per round (the paper's metric)."""
        return 2 * self.rounds


def profile_operations(cluster) -> Dict[OperationId, OperationProfile]:
    """Build per-operation complexity profiles from a cluster's trace.

    Requires the cluster to have been created with ``capture_trace=True``
    (the default).  Retransmissions count toward ``messages`` but not
    toward ``rounds``.
    """
    profiles: Dict[OperationId, OperationProfile] = {}

    def profile(op: Optional[OperationId]) -> Optional[OperationProfile]:
        if op is None:
            return None
        if op not in profiles:
            profiles[op] = OperationProfile(op=op)
        return profiles[op]

    for event in cluster.trace.events:
        if event.kind == tracing.SEND:
            entry = profile(event.detail.get("op"))
            if entry is not None:
                entry.messages += 1
        elif event.kind == tracing.STORE_END:
            entry = profile(event.detail.get("op"))
            if entry is not None:
                entry.logs += 1
        elif event.kind == tracing.INVOKE:
            entry = profile(event.detail.get("op"))
            if entry is not None:
                entry.kind = event.detail.get("kind", "?")

    # Rounds: distinct *request* message kinds the initiator broadcast
    # for the operation.  Every algorithm in this library runs at most
    # one round per request kind (SnQuery, ReadQuery, WriteRequest), so
    # the kind set sizes the rounds while retransmissions (same kind)
    # collapse.
    request_kinds: Dict[OperationId, Set[str]] = {}
    for event in cluster.trace.events:
        if event.kind != tracing.SEND:
            continue
        op = event.detail.get("op")
        if not isinstance(op, OperationId) or event.pid != op.pid:
            continue
        message_kind = event.detail.get("msg", "")
        if message_kind in ("SnQuery", "ReadQuery", "WriteRequest"):
            request_kinds.setdefault(op, set()).add(message_kind)
    for op, kinds in request_kinds.items():
        if op in profiles:
            profiles[op].rounds = len(kinds)
            profiles[op].request_kinds = kinds
    return profiles


@dataclass
class ComplexitySummary:
    """Aggregated complexity per operation kind."""

    kind: str
    count: int
    steps_min: int
    steps_max: int
    messages_mean: float
    logs_mean: float


def summarize_profiles(
    profiles: Dict[OperationId, OperationProfile]
) -> List[ComplexitySummary]:
    """Aggregate profiles into per-kind rows."""
    by_kind: Dict[str, List[OperationProfile]] = {}
    for entry in profiles.values():
        by_kind.setdefault(entry.kind, []).append(entry)
    rows: List[ComplexitySummary] = []
    for kind in sorted(by_kind):
        entries = by_kind[kind]
        steps = [entry.communication_steps for entry in entries]
        rows.append(
            ComplexitySummary(
                kind=kind,
                count=len(entries),
                steps_min=min(steps),
                steps_max=max(steps),
                messages_mean=sum(e.messages for e in entries) / len(entries),
                logs_mean=sum(e.logs for e in entries) / len(entries),
            )
        )
    return rows


def format_summary(algorithm: str, rows: List[ComplexitySummary]) -> str:
    header = (
        f"{'algorithm':<12s} {'op':<6s} {'n':>4s} "
        f"{'steps':>8s} {'msgs/op':>8s} {'logs/op':>8s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        steps = (
            str(row.steps_min)
            if row.steps_min == row.steps_max
            else f"{row.steps_min}-{row.steps_max}"
        )
        lines.append(
            f"{algorithm:<12s} {row.kind:<6s} {row.count:>4d} "
            f"{steps:>8s} {row.messages_mean:>8.1f} {row.logs_mean:>8.1f}"
        )
    return "\n".join(lines)
