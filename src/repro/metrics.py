"""Aggregated metrics of a simulation run.

Collects what the paper's evaluation reports -- operation latencies,
log counts, message counts -- from a cluster's recorder, trace and
nodes, into plain dataclasses the experiments print as tables.

The *wall-clock* statistics used by the ``repro bench`` trajectory
harness (:mod:`repro.experiments.bench`) and the exact percentile math
live in :mod:`repro.obs.summary` -- one shared implementation with the
telemetry layer's bucketed histograms -- and are re-exported here
unchanged for this module's historical callers: simulated-time
latencies judge the reproduction against the paper, wall-clock
percentiles judge the engine against its own past.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.history.events import READ, WRITE
from repro.obs.summary import (  # noqa: F401  (re-exported surface)
    LatencyStats,
    WallClockStats,
    percentile,
)


@dataclass
class RunMetrics:
    """Everything the experiment harnesses report about one run."""

    protocol: str
    num_processes: int
    write_latency: LatencyStats = field(default_factory=LatencyStats)
    read_latency: LatencyStats = field(default_factory=LatencyStats)
    causal_logs_write: List[int] = field(default_factory=list)
    causal_logs_read: List[int] = field(default_factory=list)
    messages_sent: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    stores_completed: int = 0
    bytes_logged: int = 0
    crashes: int = 0
    recoveries: int = 0
    aborted_operations: int = 0

    @property
    def max_causal_logs_write(self) -> Optional[int]:
        return max(self.causal_logs_write) if self.causal_logs_write else None

    @property
    def max_causal_logs_read(self) -> Optional[int]:
        return max(self.causal_logs_read) if self.causal_logs_read else None


def collect_metrics(cluster) -> RunMetrics:
    """Build :class:`RunMetrics` from a finished (or paused) cluster.

    ``cluster`` is a :class:`repro.cluster.SimCluster`; the import is
    late to avoid a cycle.
    """
    history = cluster.history
    write_samples: List[float] = []
    read_samples: List[float] = []
    logs: Dict[str, List[int]] = {READ: [], WRITE: []}
    aborted = 0
    for record in history.operations():
        if record.pending:
            aborted += 1
            continue
        latency = record.latency
        assert latency is not None
        if record.kind == WRITE:
            write_samples.append(latency)
        else:
            read_samples.append(latency)
        measured = cluster.recorder.causal_logs(record.op)
        if measured is not None:
            logs[record.kind].append(measured)
    stores = sum(node.storage.stores_completed for node in cluster.nodes)
    bytes_logged = sum(node.storage.bytes_logged for node in cluster.nodes)
    return RunMetrics(
        protocol=cluster.protocol_name,
        num_processes=cluster.config.num_processes,
        write_latency=LatencyStats.from_samples(write_samples),
        read_latency=LatencyStats.from_samples(read_samples),
        causal_logs_write=logs[WRITE],
        causal_logs_read=logs[READ],
        messages_sent=cluster.network.messages_sent,
        messages_dropped=cluster.network.messages_dropped,
        bytes_sent=cluster.network.bytes_sent,
        stores_completed=stores,
        bytes_logged=bytes_logged,
        crashes=sum(node.crash_count for node in cluster.nodes),
        recoveries=cluster.trace.count("recover"),
        aborted_operations=aborted,
    )
