"""Aggregated metrics of a simulation run.

Collects what the paper's evaluation reports -- operation latencies,
log counts, message counts -- from a cluster's recorder, trace and
nodes, into plain dataclasses the experiments print as tables.

Also hosts the *wall-clock* statistics used by the ``repro bench``
trajectory harness (:mod:`repro.experiments.bench`): simulated-time
latencies judge the reproduction against the paper, wall-clock
percentiles judge the engine against its own past.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.history.events import READ, WRITE


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Small-sample friendly: ``p99`` of five samples interpolates toward
    the maximum instead of requiring a hundred runs.
    """
    if not samples:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * (q / 100.0)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


@dataclass
class WallClockStats:
    """Wall-clock summary of repeated benchmark runs, in seconds."""

    count: int = 0
    best: float = 0.0
    mean: float = 0.0
    p50: float = 0.0
    p99: float = 0.0
    worst: float = 0.0

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "WallClockStats":
        if not samples:
            return cls()
        return cls(
            count=len(samples),
            best=min(samples),
            mean=statistics.fmean(samples),
            p50=percentile(samples, 50.0),
            p99=percentile(samples, 99.0),
            worst=max(samples),
        )

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly form for the ``BENCH_*.json`` trajectory files."""
        return {
            "count": self.count,
            "best_s": self.best,
            "mean_s": self.mean,
            "p50_s": self.p50,
            "p99_s": self.p99,
            "worst_s": self.worst,
        }

    def ops_per_sec(self, operations: int) -> float:
        """Median throughput: ``operations`` per second of p50 wall time.

        The unit every ``BENCH_*.json`` trajectory point reports for
        the engine, checker and KV suites.
        """
        if self.p50 <= 0:
            return 0.0
        return operations / self.p50


@dataclass
class LatencyStats:
    """Summary statistics of a latency sample, in seconds."""

    count: int = 0
    mean: float = 0.0
    median: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    stdev: float = 0.0

    @classmethod
    def from_samples(cls, samples: List[float]) -> "LatencyStats":
        if not samples:
            return cls()
        return cls(
            count=len(samples),
            mean=statistics.fmean(samples),
            median=statistics.median(samples),
            minimum=min(samples),
            maximum=max(samples),
            stdev=statistics.pstdev(samples) if len(samples) > 1 else 0.0,
        )

    @property
    def mean_us(self) -> float:
        """Mean in microseconds, the unit of the paper's graphs."""
        return self.mean * 1e6


@dataclass
class RunMetrics:
    """Everything the experiment harnesses report about one run."""

    protocol: str
    num_processes: int
    write_latency: LatencyStats = field(default_factory=LatencyStats)
    read_latency: LatencyStats = field(default_factory=LatencyStats)
    causal_logs_write: List[int] = field(default_factory=list)
    causal_logs_read: List[int] = field(default_factory=list)
    messages_sent: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    stores_completed: int = 0
    bytes_logged: int = 0
    crashes: int = 0
    recoveries: int = 0
    aborted_operations: int = 0

    @property
    def max_causal_logs_write(self) -> Optional[int]:
        return max(self.causal_logs_write) if self.causal_logs_write else None

    @property
    def max_causal_logs_read(self) -> Optional[int]:
        return max(self.causal_logs_read) if self.causal_logs_read else None


def collect_metrics(cluster) -> RunMetrics:
    """Build :class:`RunMetrics` from a finished (or paused) cluster.

    ``cluster`` is a :class:`repro.cluster.SimCluster`; the import is
    late to avoid a cycle.
    """
    history = cluster.history
    write_samples: List[float] = []
    read_samples: List[float] = []
    logs: Dict[str, List[int]] = {READ: [], WRITE: []}
    aborted = 0
    for record in history.operations():
        if record.pending:
            aborted += 1
            continue
        latency = record.latency
        assert latency is not None
        if record.kind == WRITE:
            write_samples.append(latency)
        else:
            read_samples.append(latency)
        measured = cluster.recorder.causal_logs(record.op)
        if measured is not None:
            logs[record.kind].append(measured)
    stores = sum(node.storage.stores_completed for node in cluster.nodes)
    bytes_logged = sum(node.storage.bytes_logged for node in cluster.nodes)
    return RunMetrics(
        protocol=cluster.protocol_name,
        num_processes=cluster.config.num_processes,
        write_latency=LatencyStats.from_samples(write_samples),
        read_latency=LatencyStats.from_samples(read_samples),
        causal_logs_write=logs[WRITE],
        causal_logs_read=logs[READ],
        messages_sent=cluster.network.messages_sent,
        messages_dropped=cluster.network.messages_dropped,
        bytes_sent=cluster.network.bytes_sent,
        stores_completed=stores,
        bytes_logged=bytes_logged,
        crashes=sum(node.crash_count for node in cluster.nodes),
        recoveries=cluster.trace.count("recover"),
        aborted_operations=aborted,
    )
