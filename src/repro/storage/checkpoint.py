"""Two-phase checkpoint records for stable storage.

The crash-recovery protocols log ever-growing per-register state
(``writing``/``written`` records for every register instance a process
hosts), and recovery replays all of it.  A *checkpoint* bounds both:
the host periodically snapshots the durable records of its quiescent
register slots, persists the snapshot, and truncates the superseded
log entries.  Recovery then restores from snapshot + log suffix
instead of the full log (see ``docs/recovery.md``).

Torn checkpoints are the failure mode to design against: a crash while
the snapshot is being written must leave the process recoverable from
either the *old* snapshot or the *new* one, never a mix.  Following
the coordinated tentative/permanent discipline of Koo-Toueg, a
checkpoint is persisted in two phases:

1. store the snapshot under :data:`TENTATIVE_KEY`;
2. once that is durable, store the identical snapshot under
   :data:`PERMANENT_KEY`;
3. once *that* is durable, the checkpoint is committed: truncate the
   captured log entries and discard the tentative record.

Only :data:`PERMANENT_KEY` counts at recovery.  A crash between
phases leaves a stray tentative record next to the previous permanent
one; recovery ignores it (the truncations it would have justified
never happened, so the log suffix is still complete), and the next
checkpoint overwrites it.

This module owns the record format and the pure helpers shared by the
simulator (:mod:`repro.sim.node`) and the runtime
(:mod:`repro.runtime.node`); the hosts own scheduling and the actual
stores.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

Record = Tuple[Any, ...]

#: Reserved key prefix for checkpoint machinery records.  Register
#: slots never use "/" in their own key suffixes except as the
#: host-assigned register prefix, and no register may be named "ckpt".
KEY_PREFIX = "ckpt/"

#: Phase-1 snapshot record: written first, ignored at recovery.
TENTATIVE_KEY = KEY_PREFIX + "tentative"

#: Phase-2 snapshot record: the only one recovery reads.
PERMANENT_KEY = KEY_PREFIX + "permanent"

#: Billable framing bytes per snapshot record and per captured entry
#: (key, lengths, sequence number) -- same spirit as the per-record
#: overhead the protocols bill on their own stores.
SNAPSHOT_OVERHEAD = 32
ENTRY_OVERHEAD = 24


def is_checkpoint_key(key: str) -> bool:
    """Whether ``key`` belongs to the checkpoint machinery itself."""
    return key.startswith(KEY_PREFIX)


def build_snapshot_record(
    seq: int, captured: Dict[str, Record], sizes: Dict[str, int]
) -> Record:
    """Encode captured records as one storable snapshot record.

    Each entry carries the billed size of the original store so that,
    after recovery, the next checkpoint can re-bill carried-forward
    entries without the original stores.  The entry list is sorted by
    key so the record -- and therefore its billed size and every
    downstream trace -- is independent of dict iteration order.
    """
    entries = tuple(
        (key, record, sizes.get(key, 0))
        for key, record in sorted(captured.items())
    )
    return (seq, entries)


def load_snapshot(
    record: Any,
) -> Tuple[int, Dict[str, Record], Dict[str, int]]:
    """Decode a snapshot record into ``(seq, records, sizes)``.

    ``None`` (no checkpoint ever committed) decodes as sequence 0 with
    no records, so callers need no special case for first boot.
    """
    if record is None:
        return 0, {}, {}
    seq, entries = record
    records = {key: rec for key, rec, _ in entries}
    sizes = {key: size for key, _, size in entries}
    return seq, records, sizes


def snapshot_seq(record: Any) -> int:
    """The sequence number of a snapshot record (0 when ``None``)."""
    return 0 if record is None else record[0]


def snapshot_store_size(entry_sizes: Iterable[int]) -> int:
    """Billable size in bytes of storing a snapshot.

    ``entry_sizes`` are the billed sizes of the captured records (the
    hosts track what each original store cost); the snapshot pays
    those again plus per-entry and per-record framing.
    """
    total = SNAPSHOT_OVERHEAD
    for size in entry_sizes:
        total += size + ENTRY_OVERHEAD
    return total


def capturable_keys(
    keys: Iterable[str], idle_prefixes: Iterable[str]
) -> List[str]:
    """Select the live record keys a checkpoint may capture.

    A key is capturable when it belongs to a register slot that is
    *idle* (no operation in flight and recovery complete) -- captured
    as the slot's prefix -- and is not a checkpoint record itself.
    The default (anonymous) register slot uses the empty prefix, which
    owns every key without a "/" separator; named slots own keys under
    ``"<register>/"``.
    """
    prefixes = set(idle_prefixes)
    selected: List[str] = []
    for key in keys:
        if is_checkpoint_key(key):
            continue
        head, sep, _ = key.rpartition("/")
        prefix = head + sep if sep else ""
        if prefix in prefixes:
            selected.append(key)
    return selected
