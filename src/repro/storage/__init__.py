"""Stable-storage latency model shared by the simulator and experiments."""

from repro.storage.model import StorageLatencyModel

__all__ = ["StorageLatencyModel"]
