"""Stable-storage latency model shared by the simulator and experiments.

:class:`~repro.storage.model.StorageLatencyModel` prices one
synchronous log -- the paper's ~200us IDE-disk write plus bounded
jitter -- as a function of the logged payload.
:mod:`repro.sim.storage` samples it per store; the causal-log cost
metric (:mod:`repro.history.causal_logs`) counts how often protocols
pay it.
"""

from repro.storage.model import StorageLatencyModel

__all__ = ["StorageLatencyModel"]
