"""Latency model for synchronous stable-storage writes.

The paper implements stable storage as files written to disk
synchronously, "so that the operating system writes the data to disk
immediately instead of buffering several writes together (which would
violate even transient atomicity)".  The cost of one synchronous log of
``size`` bytes is modelled as::

    latency(size) = base_latency + size / bandwidth + jitter

with ``base_latency`` calibrated to the paper's observation that logging
a single byte takes roughly twice the 0.1 ms message transit time.
"""

from __future__ import annotations

import random

from repro.common.config import StorageConfig


class StorageLatencyModel:
    """Computes synchronous log latencies under a :class:`StorageConfig`."""

    def __init__(self, config: StorageConfig):
        self._config = config

    @property
    def config(self) -> StorageConfig:
        return self._config

    def sample(self, size: int, rng: random.Random) -> float:
        """Sample the latency of logging ``size`` bytes, in seconds."""
        if size < 0:
            raise ValueError(f"log size must be >= 0, got {size}")
        jitter = 0.0
        if self._config.max_jitter > 0.0:
            jitter = rng.uniform(0.0, self._config.max_jitter)
        return self._config.base_latency + size / self._config.bandwidth + jitter

    def mean_latency(self, size: int) -> float:
        """Expected latency for a ``size``-byte log (no sampling)."""
        if size < 0:
            raise ValueError(f"log size must be >= 0, got {size}")
        return (
            self._config.base_latency
            + size / self._config.bandwidth
            + self._config.max_jitter / 2.0
        )
