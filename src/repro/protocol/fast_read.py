"""Fast-read optimization of the persistent algorithm (extension).

The paper observes that "in the absence of concurrency, a read will not
log" -- the write-back round runs but nobody stores.  The round itself
still costs two communication steps.  This extension removes even
those when they are provably unnecessary: if every member of the read's
query majority reports the **same tag, durably logged**, then the value
already sits -- durable -- at a majority, which is everything the
write-back would establish.  The reader can return immediately:

* a subsequent read queries a majority that intersects this one, so it
  observes a tag at least as large (Lemma 1 reasoning unchanged);
* crash-recovery is unaffected because the certificate is about
  *durable* tags: a unanimous volatile quorum would not suffice, as
  those copies can evaporate (the same forgotten-value logic that
  forces acknowledgments to wait for durability).

Cost: crash-free, contention-free reads drop from 4 communication
steps to 2 (one round trip) while writes and contended reads are
unchanged -- measured in ``benchmarks/test_fast_read.py``.

The condition is deliberately conservative: any disagreement in the
quorum (a propagating write, a lagging log, a recovering process)
falls back to the write-back round of Figure 4, so atomicity is never
at risk.  The property-based suite runs this protocol through the same
random workloads/crash schedules as the baseline.
"""

from __future__ import annotations

from typing import ClassVar

from repro.common.ids import ProcessId
from repro.protocol.base import Effects
from repro.protocol.messages import ReadAck, WriteRequest
from repro.protocol.persistent import PersistentAtomicProtocol
from repro.protocol.quorum import PhaseClock, highest_tagged


class FastReadPersistentProtocol(PersistentAtomicProtocol):
    """Persistent atomic register with one-round-trip quiescent reads."""

    name: ClassVar[str] = "persistent-fastread"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: How many reads completed without a write-back round.
        self.fast_reads = 0
        #: How many reads fell back to the write-back round.
        self.slow_reads = 0

    def _on_read_ack(self, src: ProcessId, message: ReadAck) -> Effects:
        if self._op is None or message.op != self._op or self._op_is_write:
            return []
        if not self._tracker.record(
            message.round_no, src, (message.tag, message.value, message.durable_tag)
        ):
            return []
        responses = self._tracker.responses()
        tags = {tag for _, (tag, _, _) in responses}
        durable_everywhere = all(
            durable is not None and durable >= tag
            for _, (tag, _, durable) in responses
        )
        if len(tags) == 1 and durable_everywhere:
            # Unanimous durable quorum: the write-back would be a no-op
            # at every member, so skip it.
            (tag, value, _) = responses[0][1]
            self._op_tag, self._op_value = tag, value
            self.fast_reads += 1
            effects = self._finish_round()
            op = self._op
            effects.extend(self._complete_operation(op, value))
            return effects
        # Disagreement: run Figure 4's write-back round unchanged.
        self.slow_reads += 1
        best = highest_tagged(
            [(pid, (tag, value)) for pid, (tag, value, _) in responses]
        )
        assert best is not None
        self._op_tag, self._op_value = best
        self._phase.become(PhaseClock.PROPAGATE)
        effects = self._finish_round()
        op = self._op
        tag, value = self._op_tag, self._op_value
        effects.extend(
            self._begin_round(
                lambda round_no: WriteRequest(
                    op=op, round_no=round_no, tag=tag, value=value
                )
            )
        )
        return effects
