"""Persistent atomic memory emulation (Figure 4 of the paper).

Log-optimal robust emulation of a multi-writer/multi-reader
*persistent* atomic register in the crash-recovery model: atomicity is
preserved through crashes, at the cost of **2 causal logs per write**
and **at most 1 causal log per read** -- matching the lower bounds of
Theorems 1 and 2.

Compared to the crash-stop baseline the write adds exactly two logs:

1. after the SN query round the writer logs ``(writing, sn, v)``
   *before* broadcasting, so that upon recovery it can finish the
   interrupted write (preventing *orphan values*) and never reuses the
   timestamp for a different value (preventing *confused values*);
2. every process logs ``(written, sn, pid, v)`` before acknowledging
   the second round, so the written value survives any crash once the
   write returns (preventing *forgotten values*).

The read logs only when it propagates a value not yet durable at a
majority: in the absence of concurrency and failures all processes
already logged the value during the preceding write, the write-back
tag is not lexicographically bigger, and nobody logs -- 0 causal logs.

**Recovery** (Figure 4, ``Recover``): restore ``(tag, value)`` from the
``written`` record, then replay the second round of the last
``writing`` record until a majority acknowledges.  Replaying an
already-finished (or never-started) write is harmless: an old tag never
displaces newer values.
"""

from __future__ import annotations

from typing import ClassVar, Hashable, Optional

from repro.common.timestamps import Tag, bottom_tag
from repro.common.values import payload_size
from repro.protocol.base import Effects, RecoveryComplete, Store
from repro.protocol.messages import WriteRequest
from repro.protocol.quorum import PhaseClock
from repro.protocol.two_round import (
    KEY_WRITING,
    KEY_WRITTEN,
    STORE_RECORD_OVERHEAD,
    TwoRoundRegisterProtocol,
)


class PersistentAtomicProtocol(TwoRoundRegisterProtocol):
    """Log-optimal persistent atomic register (Figure 4)."""

    name: ClassVar[str] = "persistent"
    supports_recovery: ClassVar[bool] = True
    LOGS_ON_ADOPT: ClassVar[bool] = True

    def _reset_volatile(self) -> None:
        super()._reset_volatile()
        self._writing_token: Optional[Hashable] = None
        self._init_stores_pending = 0

    # -- lifecycle -----------------------------------------------------------

    def initialize(self) -> Effects:
        """First boot: log the initial ``writing`` and ``written`` records.

        Figure 4, ``Initialize``: ``store(writing, 0, \\u22a5)`` and
        ``store(written, 0, i, \\u22a5)``.  The process reports ready
        once both initial records are durable.
        """
        self._init_stores_pending = 2
        bottom = bottom_tag()
        self.stats.stores_issued += 2
        return [
            Store(
                key=KEY_WRITING,
                record=(bottom.as_tuple(), None),
                size=STORE_RECORD_OVERHEAD,
                token=self.fresh_token("init-writing"),
            ),
            Store(
                key=KEY_WRITTEN,
                record=(bottom.as_tuple(), None),
                size=STORE_RECORD_OVERHEAD,
                token=self.fresh_token("init-written"),
            ),
        ]

    def recover(self) -> Effects:
        """Restore volatile state from stable storage, replay the last write.

        All processes systematically finish their previous write by
        running the second round of the write operation; even if there
        was no unfinished write, re-writing an old value with an old
        timestamp displaces nothing.

        Checkpoint fast path: when the ``writing`` record survives only
        in a committed checkpoint snapshot
        (:meth:`repro.protocol.base.StableView.checkpointed`), the host
        captured it while this process was idle -- the write it guards
        had completed, so its value already reached a majority and the
        replay round is provably redundant.  Recovery then completes
        immediately, without any message exchange.  Any write begun
        after the capture re-logs ``writing``, which takes the key out
        of the snapshot-only state and the normal replay runs.
        """
        self._reset_volatile()
        written = self.stable.retrieve(KEY_WRITTEN)
        if written is not None:
            tag_tuple, value = written
            self.tag = Tag.from_tuple(tag_tuple)
            self.value = value
            self.durable_tag = self.tag
        writing = self.stable.retrieve(KEY_WRITING)
        if writing is not None and self.stable.checkpointed(KEY_WRITING):
            self._recovery_done = True
            return [RecoveryComplete()]
        if writing is not None:
            replay_tag = Tag.from_tuple(writing[0])
            replay_value = writing[1]
        else:
            # Crashed before initialization finished; replay bottom.
            replay_tag, replay_value = bottom_tag(), None
        self._phase.become(PhaseClock.RECOVERING)
        return self._begin_round(
            lambda round_no: WriteRequest(
                op=None, round_no=round_no, tag=replay_tag, value=replay_value
            )
        )

    # -- write ------------------------------------------------------------------

    def _after_sn_quorum(self, highest: Tag) -> Effects:
        """Log ``(writing, sn, v)`` before broadcasting (Figure 4, line 12).

        This is the first causal log of the write: the broadcast only
        happens once the record is durable, so every later log of this
        write causally follows it.
        """
        self._op_tag = Tag(highest.sn + 1, self.pid)
        self._phase.become(PhaseClock.STORE)
        self._writing_token = self.fresh_token(KEY_WRITING)
        self.stats.stores_issued += 1
        return [
            Store(
                key=KEY_WRITING,
                record=(self._op_tag.as_tuple(), self._op_value),
                size=STORE_RECORD_OVERHEAD + payload_size(self._op_value),
                token=self._writing_token,
            )
        ]

    def _on_subclass_store_complete(self, token: Hashable) -> Effects:
        if token == self._writing_token:
            self._writing_token = None
            return self._propagate_write()
        if self._init_stores_pending > 0:
            self._init_stores_pending -= 1
            if self._init_stores_pending == 0:
                return [RecoveryComplete()]
        return []
