"""Wire messages of the emulation algorithms.

The message vocabulary follows Figures 4 and 5 of the paper:

========== ============================ =====================================
paper name class                        meaning
========== ============================ =====================================
``SN``     :class:`SnQuery`             ask for the highest known tag
``SN ack`` :class:`SnAck`               reply with the local tag
``W``      :class:`WriteRequest`        adopt value+tag if tag is higher
``W ack``  :class:`WriteAck`            value+tag durable (or already newer)
``R``      :class:`ReadQuery`           ask for the local value+tag
``R ack``  :class:`ReadAck`             reply with local value+tag
========== ============================ =====================================

Every request carries the invoking operation's id and a round number so
that late or duplicated acks from a previous round (the fair-lossy
channel may duplicate and reorder) are not miscounted toward the
current round's quorum.  Acks echo both.

Messages also declare their billable payload size so the network can
charge size-dependent delays (Figure 6 bottom).  ``HEADER_SIZE`` covers
opcode, op id, round and tag fields.

Register multiplexing
---------------------

The base algorithms emulate exactly one register, so their messages
carry no object identity.  The key-value layer
(:mod:`repro.kv`) multiplexes many *register instances* over the same
set of processes by namespacing the wire traffic:

* a :class:`RegisterFrame` pairs one protocol message with the id of
  the register instance it belongs to (plus the causal-log depth
  context that single-register envelopes carry at the engine level);
* a :class:`MuxBatch` is the only multiplexed message that actually
  crosses the wire: one datagram carrying one or more frames.  Frames
  addressed to the same destination within a node's batch window share
  the datagram, which is what turns several same-shard operations into
  a single quorum round-trip.

Hosts demultiplex an incoming :class:`MuxBatch` frame by frame,
routing each inner message to the protocol instance registered under
the frame's register id.  Protocol state machines never see the
wrappers -- multiplexing stays an engine concern, exactly like the
causal-log accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, ClassVar, Optional, Tuple

from repro.common.ids import OperationId
from repro.common.timestamps import Tag
from repro.common.values import payload_size

#: Fixed per-message framing overhead, in bytes.
HEADER_SIZE = 32

#: Per-frame overhead of register multiplexing (length prefix of the
#: register id plus the frame's depth field), in bytes.
FRAME_OVERHEAD = 8


@dataclass(frozen=True)
class Message:
    """Base class of all wire messages."""

    op: Optional[OperationId]
    round_no: int

    #: Billable size in bytes (header plus any value payload).  The
    #: network reads it several times per transmission (billing, the
    #: delay model, trace details), so value-carrying subclasses
    #: memoize their computed size with ``functools.cached_property``
    #: (messages are immutable, the size never changes); header-only
    #: messages share this class-level constant.
    size: ClassVar[int] = HEADER_SIZE

    @property
    def kind(self) -> str:
        """Short wire-format name, for traces."""
        return type(self).__name__

    #: Whether this message acknowledges state the sender holds (as
    #: opposed to requesting work).  Causal-log accounting folds a
    #: process's own logs only into acknowledgments: an ack certifies
    #: durability and therefore causally follows the local log it
    #: certifies, while a (re)transmitted request carries the depth at
    #: which its round began.  Class-level, not a wire field.
    is_ack: ClassVar[bool] = False


@dataclass(frozen=True)
class SnQuery(Message):
    """``SN``: request the highest tag known to the receiver."""


@dataclass(frozen=True)
class SnAck(Message):
    """``SN ack``: the receiver's current tag."""

    tag: Tag
    is_ack: ClassVar[bool] = True


@dataclass(frozen=True)
class WriteRequest(Message):
    """``W``: adopt ``value`` with ``tag`` if ``tag`` is lexicographically higher.

    Sent by writers in their second round, by readers in their
    write-back round, and by recovering processes replaying their
    interrupted write (Figure 4's ``Recover``).
    """

    tag: Tag
    value: Any

    @cached_property
    def size(self) -> int:
        return HEADER_SIZE + payload_size(self.value)


@dataclass(frozen=True)
class WriteAck(Message):
    """``W ack``: the sender has the value durable (or something newer)."""

    tag: Tag
    is_ack: ClassVar[bool] = True


@dataclass(frozen=True)
class ReadQuery(Message):
    """``R``: request the receiver's current value and tag."""


@dataclass(frozen=True)
class ReadAck(Message):
    """``R ack``: the receiver's current value and tag.

    ``durable_tag`` additionally reports the highest tag whose stable-
    storage log has completed at the responder.  The base algorithms
    ignore it; the fast-read optimization
    (:class:`repro.protocol.fast_read.FastReadPersistentProtocol`)
    skips the read's write-back round when a majority unanimously
    reports the same durable tag.
    """

    tag: Tag
    value: Any
    durable_tag: Optional[Tag] = None
    is_ack: ClassVar[bool] = True

    @cached_property
    def size(self) -> int:
        return HEADER_SIZE + payload_size(self.value)


@dataclass(frozen=True)
class RegisterFrame:
    """One register instance's message inside a :class:`MuxBatch`.

    ``register`` names the virtual register instance (the KV layer uses
    the key itself); ``depth`` is the causal-log depth context the
    single-register engine would have carried in the delivery envelope
    (see :mod:`repro.history.causal_logs`).  Frames are not messages:
    they only travel inside a batch.
    """

    register: str
    depth: int
    message: Message

    @cached_property
    def size(self) -> int:
        """Billable bytes: register tag plus the full inner message.

        The inner header (op id, round, tag fields) is a real per-frame
        cost; only the datagram framing is shared across the batch.
        """
        return FRAME_OVERHEAD + len(self.register) + self.message.size


@dataclass(frozen=True)
class MuxBatch(Message):
    """One datagram multiplexing frames of several register instances.

    ``op``/``round_no`` are meaningless at the batch level (each frame
    carries its own); hosts construct batches with ``op=None`` and
    ``round_no=0``.  Batching is transparent to the protocols: the
    receiving host dispatches each frame's inner message to the
    protocol instance registered under the frame's register id.
    """

    frames: Tuple[RegisterFrame, ...] = ()

    @cached_property
    def size(self) -> int:
        return HEADER_SIZE + sum(frame.size for frame in self.frames)
