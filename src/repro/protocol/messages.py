"""Wire messages of the emulation algorithms.

The message vocabulary follows Figures 4 and 5 of the paper:

========== ============================ =====================================
paper name class                        meaning
========== ============================ =====================================
``SN``     :class:`SnQuery`             ask for the highest known tag
``SN ack`` :class:`SnAck`               reply with the local tag
``W``      :class:`WriteRequest`        adopt value+tag if tag is higher
``W ack``  :class:`WriteAck`            value+tag durable (or already newer)
``R``      :class:`ReadQuery`           ask for the local value+tag
``R ack``  :class:`ReadAck`             reply with local value+tag
========== ============================ =====================================

Every request carries the invoking operation's id and a round number so
that late or duplicated acks from a previous round (the fair-lossy
channel may duplicate and reorder) are not miscounted toward the
current round's quorum.  Acks echo both.

Messages also declare their billable payload size so the network can
charge size-dependent delays (Figure 6 bottom).  ``HEADER_SIZE`` covers
opcode, op id, round and tag fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Optional

from repro.common.ids import OperationId
from repro.common.timestamps import Tag
from repro.common.values import payload_size

#: Fixed per-message framing overhead, in bytes.
HEADER_SIZE = 32


@dataclass(frozen=True)
class Message:
    """Base class of all wire messages."""

    op: Optional[OperationId]
    round_no: int

    @property
    def size(self) -> int:
        """Billable size in bytes (header plus any value payload)."""
        return HEADER_SIZE

    @property
    def kind(self) -> str:
        """Short wire-format name, for traces."""
        return type(self).__name__

    #: Whether this message acknowledges state the sender holds (as
    #: opposed to requesting work).  Causal-log accounting folds a
    #: process's own logs only into acknowledgments: an ack certifies
    #: durability and therefore causally follows the local log it
    #: certifies, while a (re)transmitted request carries the depth at
    #: which its round began.  Class-level, not a wire field.
    is_ack: ClassVar[bool] = False


@dataclass(frozen=True)
class SnQuery(Message):
    """``SN``: request the highest tag known to the receiver."""


@dataclass(frozen=True)
class SnAck(Message):
    """``SN ack``: the receiver's current tag."""

    tag: Tag
    is_ack: ClassVar[bool] = True


@dataclass(frozen=True)
class WriteRequest(Message):
    """``W``: adopt ``value`` with ``tag`` if ``tag`` is lexicographically higher.

    Sent by writers in their second round, by readers in their
    write-back round, and by recovering processes replaying their
    interrupted write (Figure 4's ``Recover``).
    """

    tag: Tag
    value: Any

    @property
    def size(self) -> int:
        return HEADER_SIZE + payload_size(self.value)


@dataclass(frozen=True)
class WriteAck(Message):
    """``W ack``: the sender has the value durable (or something newer)."""

    tag: Tag
    is_ack: ClassVar[bool] = True


@dataclass(frozen=True)
class ReadQuery(Message):
    """``R``: request the receiver's current value and tag."""


@dataclass(frozen=True)
class ReadAck(Message):
    """``R ack``: the receiver's current value and tag.

    ``durable_tag`` additionally reports the highest tag whose stable-
    storage log has completed at the responder.  The base algorithms
    ignore it; the fast-read optimization
    (:class:`repro.protocol.fast_read.FastReadPersistentProtocol`)
    skips the read's write-back round when a majority unanimously
    reports the same durable tag.
    """

    tag: Tag
    value: Any
    durable_tag: Optional[Tag] = None
    is_ack: ClassVar[bool] = True

    @property
    def size(self) -> int:
        return HEADER_SIZE + payload_size(self.value)
