"""Naive crash-recovery emulation: log every step (strawman baseline).

Section I-C of the paper notes that the crash-stop algorithm "can
easily be adapted to a crash-recovery model by having every process log
each of its steps in stable storage, but the resulting algorithm would
be very expensive (clearly not log optimal)".  This module implements
that strawman so the benchmarks can quantify *how* expensive:

* **Write** -- 4 causal logs: the writer logs its *intent* (the value it
  is about to write) at invocation, logs the chosen timestamp after the
  query round, every process logs the value before acknowledging the
  second round, and the writer logs *done* before replying.
* **Read** -- 3 causal logs: intent at invocation, the majority's
  ``written`` logs during write-back, and a *result* log before
  replying.

It is persistent atomic (it logs strictly more than Figure 4 at the
same points, and recovery replays like Figure 4), just needlessly slow:
with the paper's calibration a write costs ``4 delta + 4 lambda``
instead of the optimal ``4 delta + 2 lambda``.
"""

from __future__ import annotations

from typing import Any, ClassVar, Hashable, Optional

from repro.common.ids import OperationId
from repro.common.values import payload_size
from repro.protocol.base import Effects, Reply, Store
from repro.protocol.messages import ReadQuery, SnQuery
from repro.protocol.persistent import PersistentAtomicProtocol
from repro.protocol.quorum import PhaseClock
from repro.protocol.two_round import STORE_RECORD_OVERHEAD

KEY_INTENT = "intent"
KEY_DONE = "done"


class NaiveLoggingProtocol(PersistentAtomicProtocol):
    """Log-every-step adaptation of the crash-stop algorithm (strawman)."""

    name: ClassVar[str] = "naive"
    supports_recovery: ClassVar[bool] = True

    def _reset_volatile(self) -> None:
        super()._reset_volatile()
        self._intent_token: Optional[Hashable] = None
        self._done_token: Optional[Hashable] = None
        self._pending_reply: Optional[Reply] = None

    # -- write: intent log before the query round ---------------------------

    def _start_write(self) -> Effects:
        self._phase.become(PhaseClock.STORE)
        self._intent_token = self.fresh_token(KEY_INTENT)
        self.stats.stores_issued += 1
        return [
            Store(
                key=KEY_INTENT,
                record=("write", self._op_value),
                size=STORE_RECORD_OVERHEAD + payload_size(self._op_value),
                token=self._intent_token,
            )
        ]

    # -- read: intent log before the query round -----------------------------

    def invoke_read(self, op: OperationId) -> Effects:
        self._require_idle()
        self.stats.reads_invoked += 1
        self._op = op
        self._op_is_write = False
        self._phase.become(PhaseClock.STORE)
        self._intent_token = self.fresh_token(KEY_INTENT)
        self.stats.stores_issued += 1
        return [
            Store(
                key=KEY_INTENT,
                record=("read",),
                size=STORE_RECORD_OVERHEAD,
                token=self._intent_token,
            )
        ]

    # -- completion: done/result log before replying ---------------------------

    def _complete_operation(self, op: OperationId, result: Any) -> Effects:
        self._done_token = self.fresh_token(KEY_DONE)
        self._pending_reply = Reply(op, result, tag=self._op_tag)
        self.stats.stores_issued += 1
        kind = "write" if self._op_is_write else "read"
        return [
            Store(
                key=KEY_DONE,
                record=(kind, result),
                size=STORE_RECORD_OVERHEAD + payload_size(result),
                token=self._done_token,
            )
        ]

    def _on_subclass_store_complete(self, token: Hashable) -> Effects:
        if token == self._intent_token:
            self._intent_token = None
            op = self._op
            self._phase.become(PhaseClock.QUERY)
            if self._op_is_write:
                # Proceed with the normal write: SN query round first.
                return self._begin_round(
                    lambda round_no: SnQuery(op=op, round_no=round_no)
                )
            return self._begin_round(
                lambda round_no: ReadQuery(op=op, round_no=round_no)
            )
        if token == self._done_token:
            self._done_token = None
            reply = self._pending_reply
            self._pending_reply = None
            self._clear_operation()
            assert reply is not None
            return [reply]
        return super()._on_subclass_store_complete(token)
