"""Crash-stop single-writer/multi-reader atomic register (ABD).

The classic emulation of Attiya, Bar-Noy & Dolev (JACM 1995),
reference [1] of the paper.  With a single writer there is nothing to
query: the writer owns the sequence number and increments it locally,
so a write needs only one round trip (2 communication steps).  Reads
are the usual query + write-back (4 steps).

Included as a secondary baseline: it shows what the multi-writer
generalization costs (the extra SN query round) and gives the test
suite a second, structurally different atomic emulation to validate
the checkers against.
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.common.errors import ProtocolError
from repro.common.ids import OperationId
from repro.common.timestamps import Tag
from repro.protocol.base import Effects, RecoveryComplete
from repro.protocol.two_round import TwoRoundRegisterProtocol


class AbdSwmrProtocol(TwoRoundRegisterProtocol):
    """Single-writer crash-stop atomic register emulation ([1]).

    By convention the writer is process 0; any process may read.
    """

    name: ClassVar[str] = "abd"
    supports_recovery: ClassVar[bool] = False
    LOGS_ON_ADOPT: ClassVar[bool] = False

    WRITER_PID = 0

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._next_sn = 0

    def initialize(self) -> Effects:
        return [RecoveryComplete()]

    def recover(self) -> Effects:
        raise ProtocolError("crash-stop processes never recover")

    def invoke_write(self, op: OperationId, value: Any) -> Effects:
        if self.pid != self.WRITER_PID:
            raise ProtocolError(
                f"process {self.pid} is not the writer; ABD is "
                f"single-writer (writer is process {self.WRITER_PID})"
            )
        return super().invoke_write(op, value)

    def _start_write(self) -> Effects:
        """Skip the SN query: the sole writer numbers writes locally."""
        self._next_sn += 1
        self._op_tag = Tag(self._next_sn, self.pid)
        return self._propagate_write()

    def _after_sn_quorum(self, highest: Tag) -> Effects:
        raise AssertionError("ABD writes never run an SN query round")
