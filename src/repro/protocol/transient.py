"""Transient atomic memory emulation (Figure 5 of the paper).

Log-optimal robust emulation of a multi-writer/multi-reader *transient*
atomic register: atomicity is guaranteed between crashes, and the only
deviation from persistent atomicity is that a write interrupted by a
crash may appear to overlap with the writer's next write.  The reward
is **1 causal log per write** (matching the Theorem 1 discussion in
Section IV-C) instead of two; reads cost at most 1 causal log as
before.

Differences from the persistent algorithm (Figure 4):

* the writer does **not** log ``writing`` before broadcasting, so the
  one causal log of a write is the majority's ``written`` logs;
* recovery does **not** replay an interrupted write (there is nothing
  logged to replay);
* instead, a stable counter ``rec`` of recoveries is maintained: the
  writer increments its sequence number by ``rec + 1`` (Figure 5,
  line 11) so timestamps keep increasing monotonically across crashes,
  and recovery performs exactly one log to bump the counter.

Fidelity note -- duplicate-tag corner case
------------------------------------------

Figure 5 folds ``rec`` only into the sequence-number arithmetic.  In a
fully asynchronous run the following is possible: the writer's
interrupted write used tag ``(m1 + rec + 1, i)`` where ``m1`` was the
maximum over its query majority; after recovery, a different query
majority can return a maximum ``m2 = m1 - 1`` (majorities intersect,
but the *maximum* of the new majority can be below the old one when
the only adopters of the interrupted write are outside it and the
writer's own ``written`` log had not completed before the crash).
Then ``m2 + rec' + 1 = m1 + rec + 1`` with a different value --
two values under one tag, which no completion of the history can
linearize.  We therefore carry ``rec`` as an explicit least-significant
tag component (:class:`repro.common.timestamps.Tag` is the triple
``[sn, pid, rec]``): the sequence-number arithmetic is kept verbatim,
and the extra component -- which is already logged by Figure 5's own
recovery procedure and travels in the same messages -- breaks the tie
between incarnations.  Log, message and time complexity are unchanged.
The unrepaired behaviour is available as
:class:`repro.protocol.broken.NoRecCounterTransient` for the ablation
experiments.
"""

from __future__ import annotations

from typing import ClassVar, Hashable, Optional

from repro.common.timestamps import Tag, bottom_tag
from repro.protocol.base import Effects, RecoveryComplete, Store
from repro.protocol.two_round import (
    KEY_RECOVERED,
    KEY_WRITTEN,
    STORE_RECORD_OVERHEAD,
    TwoRoundRegisterProtocol,
)


class TransientAtomicProtocol(TwoRoundRegisterProtocol):
    """Log-optimal transient atomic register (Figure 5)."""

    name: ClassVar[str] = "transient"
    supports_recovery: ClassVar[bool] = True
    LOGS_ON_ADOPT: ClassVar[bool] = True

    def _reset_volatile(self) -> None:
        super()._reset_volatile()
        #: Number of times this process recovered (restored from stable).
        self.rec = 0
        self._recovered_token: Optional[Hashable] = None
        self._init_stores_pending = 0

    # -- lifecycle ---------------------------------------------------------

    def initialize(self) -> Effects:
        """First boot: log a zero recovery counter and the initial value.

        Figure 5, ``Initialize``: ``store(recovered, 0)`` and
        ``store(written, 0, i, \\u22a5)``.
        """
        self._init_stores_pending = 2
        self.stats.stores_issued += 2
        return [
            Store(
                key=KEY_RECOVERED,
                record=(0,),
                size=STORE_RECORD_OVERHEAD,
                token=self.fresh_token("init-recovered"),
            ),
            Store(
                key=KEY_WRITTEN,
                record=(bottom_tag().as_tuple(), None),
                size=STORE_RECORD_OVERHEAD,
                token=self.fresh_token("init-written"),
            ),
        ]

    def recover(self) -> Effects:
        """Restore from stable storage and bump the recovery counter.

        Figure 5, ``Recover``: no write replay; one log to persist the
        incremented recovery count.  The process reports ready once the
        counter is durable -- recovering without persisting the bump
        first could let a second crash reuse the old count.
        """
        self._reset_volatile()
        written = self.stable.retrieve(KEY_WRITTEN)
        if written is not None:
            tag_tuple, value = written
            self.tag = Tag.from_tuple(tag_tuple)
            self.value = value
            self.durable_tag = self.tag
        recovered = self.stable.retrieve(KEY_RECOVERED)
        previous = recovered[0] if recovered is not None else 0
        self.rec = previous + 1
        self._recovered_token = self.fresh_token(KEY_RECOVERED)
        self.stats.stores_issued += 1
        return [
            Store(
                key=KEY_RECOVERED,
                record=(self.rec,),
                size=STORE_RECORD_OVERHEAD,
                token=self._recovered_token,
            )
        ]

    # -- write ----------------------------------------------------------------

    def _after_sn_quorum(self, highest: Tag) -> Effects:
        """Broadcast immediately -- no writer pre-log (Figure 5, lines 11-13).

        ``sn := sn + rec + 1``: the increment skips past any sequence
        number an interrupted pre-crash write of this process may have
        used; ``rec`` also rides along as the tag's least-significant
        component (see the module docstring).
        """
        self._op_tag = Tag(highest.sn + self.rec + 1, self.pid, self.rec)
        return self._propagate_write()

    def _on_subclass_store_complete(self, token: Hashable) -> Effects:
        if token == self._recovered_token:
            self._recovered_token = None
            return [RecoveryComplete()]
        if self._init_stores_pending > 0:
            self._init_stores_pending -= 1
            if self._init_stores_pending == 0:
                return [RecoveryComplete()]
        return []
