"""Safe/regular register emulations in the crash-recovery model (Section VI).

The paper's concluding remarks discuss what its results imply for
memories *weaker* than atomic, in the sense of Lamport's single-writer
hierarchy:

* a **safe** register only guarantees that a read not concurrent with
  any write returns the last written value;
* a **regular** register additionally guarantees that a read concurrent
  with writes returns either the last written value or one of the
  concurrently written ones (no third option);
* the **atomic** register additionally forbids new/old inversion
  between reads.

The conclusions the paper draws, which the emulations here make
measurable (:mod:`repro.experiments.weaker_memory`):

1. *any* meaningful crash-recovery emulation still needs one causal log
   per write (a value that nobody logged dies with the first total
   crash), so weakening the consistency saves nothing on write logging;
2. the one-causal-log-per-read lower bound (Theorem 2) does **not**
   hold for safe/regular memory: a single-round read without write-back
   never logs;
3. but an *atomic* read also logs only when concurrency/failures force
   it to, "so in a system where logging is very expensive and the cost
   of sending and receiving messages is negligible, it does not make
   sense to emulate safe or even regular memory" -- the only saving a
   regular read offers is one message round trip, not any log.

The implementation is the transient machinery with a single-round read
and the single-writer restriction (the classic regularity notions are
single-writer; the multi-writer generalizations of Shao, Pierce &
Welch (DISC 2003) are out of scope, as in the paper).  A safe register
would be implemented identically -- a majority query is already needed
so that crash-free, write-free reads see the last value -- so only the
regular class exists; it trivially also satisfies safety.
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.common.errors import ProtocolError
from repro.common.ids import OperationId, ProcessId
from repro.protocol.base import Effects
from repro.protocol.messages import ReadAck, ReadQuery
from repro.protocol.quorum import PhaseClock, highest_tagged
from repro.protocol.transient import TransientAtomicProtocol


class RegularRegisterProtocol(TransientAtomicProtocol):
    """Single-writer regular register, crash-recovery, one-round reads.

    Writes are exactly the transient algorithm's (1 causal log; the
    recovery counter keeps timestamps monotonic across crashes).
    Reads query a majority and return the highest-tag value without
    writing it back: 2 communication steps, never any log -- at the
    price of atomicity (two sequential reads concurrent with one write
    may observe new-then-old).
    """

    name: ClassVar[str] = "regular"
    supports_recovery: ClassVar[bool] = True

    WRITER_PID = 0

    def invoke_write(self, op: OperationId, value: Any) -> Effects:
        if self.pid != self.WRITER_PID:
            raise ProtocolError(
                f"process {self.pid} is not the writer; regular registers "
                f"are single-writer (writer is process {self.WRITER_PID})"
            )
        return super().invoke_write(op, value)

    def _on_read_ack(self, src: ProcessId, message: ReadAck) -> Effects:
        if self._op is None or message.op != self._op or self._op_is_write:
            return []
        if not self._tracker.record(message.round_no, src, (message.tag, message.value)):
            return []
        best = highest_tagged(self._tracker.responses())
        assert best is not None
        self._op_tag, self._op_value = best
        effects = self._finish_round()
        op, value = self._op, self._op_value
        effects.extend(self._complete_operation(op, value))
        return effects

    def invoke_read(self, op: OperationId) -> Effects:
        self._require_idle()
        self.stats.reads_invoked += 1
        self._op = op
        self._op_is_write = False
        self._phase.become(PhaseClock.QUERY)
        return self._begin_round(lambda round_no: ReadQuery(op=op, round_no=round_no))
