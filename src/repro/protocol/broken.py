"""Deliberately broken protocol variants for the ablation experiments.

Section I-C of the paper motivates each log of the persistent algorithm
by the failure it prevents (*forgotten-value*, *confused-values*,
*orphan-value*; the table in ``docs/protocols.md`` maps each variant to
its anomaly).  Each class below removes exactly one ingredient, and the
integration tests demonstrate that the corresponding anomaly becomes
reachable (caught by the atomicity checkers) under an adversarial
crash or schedule.

None of these classes should ever be used outside tests and the
ablation benchmarks.
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.common.ids import OperationId, ProcessId
from repro.common.timestamps import Tag
from repro.protocol.base import Effects, RecoveryComplete
from repro.protocol.messages import ReadAck
from repro.protocol.persistent import PersistentAtomicProtocol
from repro.protocol.quorum import highest_tagged
from repro.protocol.transient import TransientAtomicProtocol
from repro.protocol.two_round import KEY_WRITTEN


class NoPreLogWriter(PersistentAtomicProtocol):
    """Persistent algorithm without the writer's ``writing`` pre-log.

    Removing log (1) of Figure 4 lets a writer crash after a single
    process adopted its value, recover with no memory of the attempt,
    and reuse the same timestamp for a different value
    (*confused-values*) -- or simply never finish the write
    (*orphan-value*).  This is the situation Theorem 1 proves
    unavoidable with fewer than two causal logs.
    """

    name: ClassVar[str] = "broken-no-prelog"

    def _after_sn_quorum(self, highest: Tag) -> Effects:
        self._op_tag = Tag(highest.sn + 1, self.pid)
        return self._propagate_write()

    def recover(self) -> Effects:
        """Restore the local value but replay nothing."""
        self._reset_volatile()
        written = self.stable.retrieve(KEY_WRITTEN)
        if written is not None:
            tag_tuple, value = written
            self.tag = Tag.from_tuple(tag_tuple)
            self.value = value
            self.durable_tag = self.tag
        return [RecoveryComplete()]


class NoWriteBackReader(PersistentAtomicProtocol):
    """Persistent algorithm whose reads skip the write-back round.

    A read that returns the highest tag seen at *some* majority without
    first propagating it to a majority allows the classic new/old
    inversion: a later read by another process can still observe the
    older value, violating atomicity even without any crash.
    """

    name: ClassVar[str] = "broken-no-writeback"

    def _on_read_ack(self, src: ProcessId, message: ReadAck) -> Effects:
        if self._op is None or message.op != self._op:
            return []
        if not self._tracker.record(message.round_no, src, (message.tag, message.value)):
            return []
        best = highest_tagged(self._tracker.responses())
        assert best is not None
        self._op_tag, self._op_value = best
        effects = self._finish_round()
        op, value = self._op, self._op_value
        effects.extend(self._complete_operation(op, value))
        return effects


class NoRecCounterTransient(TransientAtomicProtocol):
    """Transient algorithm without the recovery counter.

    The writer increments the queried sequence number by one, exactly
    like the crash-stop algorithm, and ``rec`` neither enters the
    arithmetic nor the tag.  A writer that crashes mid-write and writes
    again after recovery can then reuse the interrupted write's
    timestamp for a different value -- two values under one tag
    (*confused-values*), which even weak completion cannot linearize.
    """

    name: ClassVar[str] = "broken-no-rec"

    def _after_sn_quorum(self, highest: Tag) -> Effects:
        self._op_tag = Tag(highest.sn + 1, self.pid)
        return self._propagate_write()


class SubMajorityWriter(PersistentAtomicProtocol):
    """Persistent algorithm whose writes wait for a single ack only.

    The second round returns after the first acknowledgment instead of
    a majority.  If the few processes that adopted the value crash
    (or the value only ever reached the writer itself), a completed
    write can vanish: a subsequent read finds no trace of it
    (*forgotten-value*).  This demonstrates why a correct majority is
    "clearly needed for robust emulations" (Section II).
    """

    name: ClassVar[str] = "broken-submajority"

    ACK_QUORUM = 1

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._write_ack_quorum = self.ACK_QUORUM

    def _propagate_write(self) -> Effects:
        effects = super()._propagate_write()
        # Shrink the quorum for this round only: reads keep the real
        # majority so the anomaly is the write's fault alone.
        self._tracker.quorum_size = self._write_ack_quorum
        return effects

    def _complete_operation(self, op: OperationId, result: Any) -> Effects:
        self._tracker.quorum_size = self.majority
        return super()._complete_operation(op, result)


BROKEN_PROTOCOLS = {
    cls.name: cls
    for cls in (
        NoPreLogWriter,
        NoWriteBackReader,
        NoRecCounterTransient,
        SubMajorityWriter,
    )
}
