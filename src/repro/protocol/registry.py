"""Name-based lookup of the available protocols.

The high-level APIs (:class:`repro.cluster.SimCluster`, the runtime,
the experiment harnesses) select algorithms by their short name so that
benchmark sweeps can be written as data::

    for algorithm in ("crash-stop", "transient", "persistent"):
        ...
"""

from __future__ import annotations

from typing import Dict, Type

from repro.common.errors import ConfigurationError
from repro.protocol.abd import AbdSwmrProtocol
from repro.protocol.base import RegisterProtocol
from repro.protocol.broken import BROKEN_PROTOCOLS
from repro.protocol.crash_stop import CrashStopMwmrProtocol
from repro.protocol.naive import NaiveLoggingProtocol
from repro.protocol.fast_read import FastReadPersistentProtocol
from repro.protocol.persistent import PersistentAtomicProtocol
from repro.protocol.regular import RegularRegisterProtocol
from repro.protocol.transient import TransientAtomicProtocol

PROTOCOLS: Dict[str, Type[RegisterProtocol]] = {
    AbdSwmrProtocol.name: AbdSwmrProtocol,
    CrashStopMwmrProtocol.name: CrashStopMwmrProtocol,
    PersistentAtomicProtocol.name: PersistentAtomicProtocol,
    TransientAtomicProtocol.name: TransientAtomicProtocol,
    NaiveLoggingProtocol.name: NaiveLoggingProtocol,
    RegularRegisterProtocol.name: RegularRegisterProtocol,
    FastReadPersistentProtocol.name: FastReadPersistentProtocol,
}
"""Production algorithms, keyed by :attr:`RegisterProtocol.name`."""

ALL_PROTOCOLS: Dict[str, Type[RegisterProtocol]] = {**PROTOCOLS, **BROKEN_PROTOCOLS}
"""Production plus deliberately broken variants (tests/ablations only)."""


def get_protocol_class(
    name: str, include_broken: bool = False
) -> Type[RegisterProtocol]:
    """Resolve an algorithm name to its protocol class.

    Raises :class:`~repro.common.errors.ConfigurationError` for unknown
    names, listing the valid ones.
    """
    table = ALL_PROTOCOLS if include_broken else PROTOCOLS
    try:
        return table[name]
    except KeyError:
        valid = ", ".join(sorted(table))
        raise ConfigurationError(
            f"unknown protocol {name!r}; valid names: {valid}"
        ) from None
