"""Sans-io protocol state machines for the shared-memory emulations.

Every algorithm in the paper (and every baseline) is implemented as a
pure state machine that consumes events -- invocations, received
messages, stable-storage completions, timers, crash and recovery -- and
emits :class:`~repro.protocol.base.Effect` values describing what the
hosting environment should do (send a message, log to stable storage,
reply to the client, arm a timer).  The same protocol classes therefore
run unchanged under the deterministic simulator
(:mod:`repro.sim`) and the asyncio/UDP runtime (:mod:`repro.runtime`).

Implemented protocols:

================================  =========================  ==========
class                             consistency                 model
================================  =========================  ==========
:class:`AbdSwmrProtocol`          atomic (single writer)     crash-stop
:class:`CrashStopMwmrProtocol`    atomic (multi writer)      crash-stop
:class:`PersistentAtomicProtocol` persistent atomic          crash-recovery
:class:`TransientAtomicProtocol`  transient atomic           crash-recovery
:class:`NaiveLoggingProtocol`     persistent atomic          crash-recovery
================================  =========================  ==========

plus the deliberately broken variants of :mod:`repro.protocol.broken`
used by the ablation experiments.
"""

from repro.protocol.abd import AbdSwmrProtocol
from repro.protocol.base import (
    Broadcast,
    CancelTimer,
    Effect,
    RecoveryComplete,
    RegisterProtocol,
    Reply,
    Send,
    SetTimer,
    StableView,
    Store,
)
from repro.protocol.crash_stop import CrashStopMwmrProtocol
from repro.protocol.fast_read import FastReadPersistentProtocol
from repro.protocol.naive import NaiveLoggingProtocol
from repro.protocol.persistent import PersistentAtomicProtocol
from repro.protocol.registry import PROTOCOLS, get_protocol_class
from repro.protocol.regular import RegularRegisterProtocol
from repro.protocol.transient import TransientAtomicProtocol

__all__ = [
    "AbdSwmrProtocol",
    "Broadcast",
    "CancelTimer",
    "CrashStopMwmrProtocol",
    "Effect",
    "FastReadPersistentProtocol",
    "NaiveLoggingProtocol",
    "PROTOCOLS",
    "PersistentAtomicProtocol",
    "RegularRegisterProtocol",
    "RecoveryComplete",
    "RegisterProtocol",
    "Reply",
    "Send",
    "SetTimer",
    "StableView",
    "Store",
    "TransientAtomicProtocol",
    "get_protocol_class",
]
