"""Crash-stop multi-writer/multi-reader atomic register (baseline).

The algorithm of Lynch & Shvartsman (FTCS 1997), reference [2] of the
paper: the most efficient robust atomic memory emulation known in the
crash-stop model and the basis of both crash-recovery algorithms.

* **Write**: query a majority for their tags (round 1), pick the
  highest sequence number, increment it, stamp the writer's id, and
  broadcast value+tag until a majority acknowledges (round 2).
* **Read**: query a majority for value/tag pairs (round 1), pick the
  highest tag, write that value back until a majority acknowledges
  (round 2), then return it.

Four communication steps per operation, zero stable-storage logs --
processes that crash never recover, so volatile state suffices as long
as a majority never crashes.  The paper's experiments use this
algorithm as the "atomic crash-stop" curve of Figure 6.
"""

from __future__ import annotations

from typing import ClassVar

from repro.common.errors import ProtocolError
from repro.common.timestamps import Tag
from repro.protocol.base import Effects, RecoveryComplete
from repro.protocol.two_round import TwoRoundRegisterProtocol


class CrashStopMwmrProtocol(TwoRoundRegisterProtocol):
    """Multi-writer crash-stop atomic register emulation ([2])."""

    name: ClassVar[str] = "crash-stop"
    supports_recovery: ClassVar[bool] = False
    LOGS_ON_ADOPT: ClassVar[bool] = False

    def initialize(self) -> Effects:
        """Nothing to log; the process is immediately ready."""
        return [RecoveryComplete()]

    def recover(self) -> Effects:
        raise ProtocolError(
            "crash-stop processes never recover; use a crash-recovery "
            "algorithm (persistent/transient) if processes may restart"
        )

    def _after_sn_quorum(self, highest: Tag) -> Effects:
        """Increment the highest collected sequence number and broadcast."""
        self._op_tag = Tag(highest.sn + 1, self.pid)
        return self._propagate_write()
