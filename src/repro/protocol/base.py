"""Protocol/environment contract: effects, stable-storage view, base class.

The protocol classes are *sans-io*: they never touch sockets, disks or
clocks.  Instead, every handler returns a list of :class:`Effect`
values, and the hosting environment -- the simulator's
:class:`repro.sim.node.SimNode` or the runtime's
:class:`repro.runtime.node.RuntimeNode` -- performs them.  This is what
makes the algorithms testable deterministically and runnable over real
UDP with the same code.

Causal-log accounting (the paper's cost metric) also lives at this
boundary: *the environment*, not the protocol, tracks how deep each
stable-storage write sits in the operation's causal chain, so protocols
cannot misreport their own cost.  See
:mod:`repro.history.causal_logs`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Hashable, List, Optional, Tuple

from repro.common.ids import OperationId, ProcessId
from repro.protocol.messages import Message

# ---------------------------------------------------------------------------
# Effects
# ---------------------------------------------------------------------------


class Effect:
    """Base class of everything a protocol may ask its environment to do."""

    __slots__ = ()


@dataclass(frozen=True)
class Send(Effect):
    """Send ``message`` to process ``dst`` (fire-and-forget, may be lost)."""

    dst: ProcessId
    message: Message


@dataclass(frozen=True)
class Broadcast(Effect):
    """Send ``message`` to every process, including the sender.

    The paper's implementation uses IP multicast and a listener thread
    on every workstation, so the sender's own listener answers like any
    other process ("when a process waits for a majority of responses,
    it does not necessarily include itself in the majority").
    """

    message: Message


@dataclass(frozen=True)
class Store(Effect):
    """Synchronously log ``record`` under ``key`` in stable storage.

    The environment performs the write with the configured latency and
    then calls :meth:`RegisterProtocol.on_store_complete` with
    ``token``.  ``size`` is the billable payload size in bytes.
    """

    key: str
    record: Tuple[Any, ...]
    size: int
    token: Hashable


@dataclass(frozen=True)
class Reply(Effect):
    """Complete operation ``op`` towards the invoking client.

    ``tag`` exposes the timestamp the operation wrote or read; it is
    not part of the register's interface, but the white-box atomicity
    checker (:mod:`repro.history.register_checker`) consumes it.
    """

    op: OperationId
    result: Any = None
    tag: Optional[Any] = None


@dataclass(frozen=True)
class SetTimer(Effect):
    """Arm a one-shot timer firing after ``delay`` seconds."""

    delay: float
    token: Hashable


@dataclass(frozen=True)
class CancelTimer(Effect):
    """Disarm the timer identified by ``token``.  Idempotent."""

    token: Hashable


@dataclass(frozen=True)
class RecoveryComplete(Effect):
    """Signal that the recovery procedure finished.

    Until a recovering process emits this, the environment rejects
    client invocations with
    :class:`repro.common.errors.NotRecoveredError`.
    """


@dataclass(frozen=True)
class Checkpoint(Effect):
    """Ask the environment to checkpoint this process's stable storage.

    The environment snapshots the durable records, persists the
    snapshot in two phases (tentative, then permanent -- see
    :mod:`repro.storage.checkpoint`), and truncates the per-register
    log records the snapshot supersedes.  Protocols themselves never
    emit this today; hosts trigger checkpoints on a timer.  It is an
    :class:`Effect` so scripted protocols and tests can request one at
    a precise point in an execution.
    """


Effects = List[Effect]
"""Alias for handler return values."""


# ---------------------------------------------------------------------------
# Stable storage view
# ---------------------------------------------------------------------------


class StableView:
    """Read-only view of a process's durable key-value records.

    The environment owns the durable dictionary (it survives crashes);
    protocols read it with :meth:`retrieve` -- the ``retrieve``
    primitive of the model -- and write it only through :class:`Store`
    effects so that every log is billed and traced.

    Hosts that checkpoint (see :mod:`repro.storage.checkpoint`) pass a
    ``snapshot`` dictionary of records captured by the last committed
    checkpoint.  Lookups fall back to the snapshot when the live log no
    longer holds a key (it was truncated), and :meth:`checkpointed`
    tells a recovering protocol whether a record it sees came *only*
    from the snapshot -- i.e. the log entry was superseded and its
    write is known complete, so replay can be skipped.
    """

    def __init__(
        self,
        records: Dict[str, Tuple[Any, ...]],
        snapshot: Optional[Dict[str, Tuple[Any, ...]]] = None,
    ):
        self._records = records
        self._snapshot: Dict[str, Tuple[Any, ...]] = (
            snapshot if snapshot is not None else {}
        )

    def retrieve(self, key: str) -> Optional[Tuple[Any, ...]]:
        """Return the last record logged under ``key``, or ``None``."""
        record = self._records.get(key)
        if record is None:
            return self._snapshot.get(key)
        return record

    def checkpointed(self, key: str) -> bool:
        """Whether ``key`` resolves only via the checkpoint snapshot.

        ``True`` means the live log entry for ``key`` was truncated by
        a committed checkpoint and nothing has been re-logged since --
        the record's effects are known durable at a majority, so
        recovery may skip its replay round.
        """
        return key not in self._records and key in self._snapshot

    def __contains__(self, key: str) -> bool:
        return key in self._records or key in self._snapshot

    def keys(self) -> List[str]:
        merged = dict(self._snapshot)
        merged.update(self._records)
        return list(merged)

    def scoped(self, prefix: str) -> "StableView":
        """A view of the same durable dictionary under a key prefix.

        Multi-register hosts give each protocol instance a scoped view
        (and prefix that instance's :class:`Store` keys the same way),
        so many register emulations can share one process's stable
        storage without their ``written``/``writing`` records
        colliding.  Scoping composes: a scoped view can be scoped
        again.
        """
        return _ScopedStableView(self._records, self._snapshot, prefix)


class _ScopedStableView(StableView):
    """A :class:`StableView` that prefixes every key it is asked for."""

    def __init__(
        self,
        records: Dict[str, Tuple[Any, ...]],
        snapshot: Dict[str, Tuple[Any, ...]],
        prefix: str,
    ):
        super().__init__(records, snapshot)
        self._prefix = prefix

    def retrieve(self, key: str) -> Optional[Tuple[Any, ...]]:
        scoped = self._prefix + key
        record = self._records.get(scoped)
        if record is None:
            return self._snapshot.get(scoped)
        return record

    def checkpointed(self, key: str) -> bool:
        scoped = self._prefix + key
        return scoped not in self._records and scoped in self._snapshot

    def __contains__(self, key: str) -> bool:
        scoped = self._prefix + key
        return scoped in self._records or scoped in self._snapshot

    def keys(self) -> List[str]:
        merged = dict(self._snapshot)
        merged.update(self._records)
        return [
            key[len(self._prefix):]
            for key in merged
            if key.startswith(self._prefix)
        ]

    def scoped(self, prefix: str) -> "StableView":
        return _ScopedStableView(
            self._records, self._snapshot, self._prefix + prefix
        )


# ---------------------------------------------------------------------------
# Base protocol
# ---------------------------------------------------------------------------


@dataclass
class ProtocolStats:
    """Volatile per-incarnation counters, reset by a crash."""

    messages_sent: int = 0
    stores_issued: int = 0
    reads_invoked: int = 0
    writes_invoked: int = 0


class RegisterProtocol(ABC):
    """One process's state machine for a read/write register emulation.

    Lifecycle::

        p = SomeProtocol(pid, num_processes, stable_view)
        effects = p.initialize()          # fresh boot, may log initial records
        ...                               # events arrive
        p.crash()                         # volatile state wiped in place
        effects = p.recover()             # runs the recovery procedure

    Exactly one client operation may be outstanding per process at a
    time (processes are sequential in the model); environments enforce
    this before calling :meth:`invoke_read`/:meth:`invoke_write`.
    """

    #: Short machine-readable algorithm name, e.g. ``"persistent"``.
    name: ClassVar[str] = "abstract"
    #: Whether the algorithm tolerates crash-recovery (vs. crash-stop).
    supports_recovery: ClassVar[bool] = False
    #: Identity of the register instance this state machine emulates,
    #: set by multi-register hosts (``None`` for the classic
    #: single-register deployment).  Protocols never read it -- the
    #: host routes messages and scopes storage on their behalf -- but
    #: traces and debuggers want to know which instance they look at.
    register: Optional[str] = None

    def __init__(self, pid: ProcessId, num_processes: int, stable: StableView):
        if num_processes < 1:
            raise ValueError("num_processes must be >= 1")
        if not 0 <= pid < num_processes:
            raise ValueError(f"pid {pid} out of range for n={num_processes}")
        self.pid = pid
        self.num_processes = num_processes
        self.stable = stable
        self.stats = ProtocolStats()
        self._token_counter = 0

    # -- identity ----------------------------------------------------------

    @property
    def majority(self) -> int:
        """Majority quorum size ``ceil((n + 1) / 2)``."""
        return self.num_processes // 2 + 1

    def fresh_token(self, label: str) -> Tuple[str, int]:
        """Mint a unique hashable token for a store or timer."""
        self._token_counter += 1
        return (label, self._token_counter)

    # -- lifecycle ---------------------------------------------------------

    @abstractmethod
    def initialize(self) -> Effects:
        """First boot of the process (the ``Initialize`` procedure)."""

    @abstractmethod
    def recover(self) -> Effects:
        """Restart after a crash: rebuild volatile state from ``stable``.

        Must eventually lead to a :class:`RecoveryComplete` effect
        (possibly after message exchanges, as in Figure 4's second-round
        replay).  Crash-stop protocols raise ``NotImplementedError``.
        """

    def crash(self) -> None:
        """Wipe volatile state in place.

        The environment calls this at crash time so that a subsequent
        :meth:`recover` starts from nothing but stable storage.  The
        default implementation resets the stats; subclasses extend it.
        """
        self.stats = ProtocolStats()

    # -- client operations ---------------------------------------------------

    @abstractmethod
    def invoke_read(self, op: OperationId) -> Effects:
        """Begin a read operation."""

    @abstractmethod
    def invoke_write(self, op: OperationId, value: Any) -> Effects:
        """Begin a write operation."""

    # -- events ----------------------------------------------------------------

    @abstractmethod
    def on_message(self, src: ProcessId, message: Message) -> Effects:
        """A message arrived from process ``src``."""

    @abstractmethod
    def on_store_complete(self, token: Hashable) -> Effects:
        """The :class:`Store` effect identified by ``token`` is durable."""

    @abstractmethod
    def on_timer(self, token: Hashable) -> Effects:
        """The :class:`SetTimer` identified by ``token`` fired."""
