"""Shared machinery of the two-round quorum register protocols.

Every algorithm in this library -- ABD, the crash-stop multi-writer
algorithm, and the paper's persistent and transient emulations -- has
the same skeleton:

* a *responder* side ("message listener" in Figures 4/5) that answers
  ``SN``/``R`` queries with the local tag/value and handles ``W``
  requests by adopting lexicographically larger tags;
* an *operation* side that runs one or two broadcast rounds, each
  collecting acknowledgments from a majority, with retransmission
  because channels are fair-lossy.

:class:`TwoRoundRegisterProtocol` implements that skeleton once.
Subclasses choose whether adopted values are logged
(:attr:`LOGS_ON_ADOPT`), how a writer derives its new tag, and what the
recovery procedure does.

Durable acknowledgments
-----------------------

A crash-recovery responder may only acknowledge ``W(tag, v)`` once its
stable storage holds a tag ``>= tag``.  Acknowledging from volatile
state would let a writer count a majority that evaporates in a crash
(the *forgotten value* problem of Section I-C).  The base class
therefore tracks ``tag`` (volatile) and ``durable_tag`` (highest tag
whose log completed) separately and parks acknowledgments for
in-flight tags until the covering log is durable.
"""

from __future__ import annotations

from typing import Any, Callable, ClassVar, Dict, Hashable, List, Optional, Tuple

from repro.common.errors import ProtocolError
from repro.common.ids import OperationId, ProcessId
from repro.common.timestamps import Tag, bottom_tag
from repro.common.values import payload_size
from repro.protocol.base import (
    Broadcast,
    CancelTimer,
    Effect,
    Effects,
    RecoveryComplete,
    RegisterProtocol,
    Reply,
    Send,
    SetTimer,
    StableView,
    Store,
)
from repro.protocol.messages import (
    Message,
    ReadAck,
    ReadQuery,
    SnAck,
    SnQuery,
    WriteAck,
    WriteRequest,
)
from repro.protocol.quorum import PhaseClock, RoundTracker, highest_tagged

#: Bytes charged per stable-storage record on top of the value payload
#: (key, tag triple, framing).
STORE_RECORD_OVERHEAD = 16

#: Default retransmission period for unacknowledged rounds, seconds.
DEFAULT_RETRANSMIT_INTERVAL = 2e-3

#: Stable-storage keys used across the crash-recovery algorithms.
KEY_WRITTEN = "written"
KEY_WRITING = "writing"
KEY_RECOVERED = "recovered"


class TwoRoundRegisterProtocol(RegisterProtocol):
    """Common responder and round logic for the quorum register family."""

    #: Do responders log adopted value/tag pairs to stable storage?
    #: ``True`` for crash-recovery algorithms, ``False`` for crash-stop.
    LOGS_ON_ADOPT: ClassVar[bool] = True

    def __init__(
        self,
        pid: ProcessId,
        num_processes: int,
        stable: StableView,
        retransmit_interval: float = DEFAULT_RETRANSMIT_INTERVAL,
    ):
        super().__init__(pid, num_processes, stable)
        if retransmit_interval <= 0:
            raise ProtocolError("retransmit_interval must be > 0")
        self._retransmit_interval = retransmit_interval
        self._reset_volatile()

    # -- volatile state ------------------------------------------------------

    def _reset_volatile(self) -> None:
        """Wipe everything a crash would erase."""
        #: Highest tag adopted (volatile copy).
        self.tag: Tag = bottom_tag()
        #: Value associated with :attr:`tag`.
        self.value: Any = None
        #: Highest tag whose stable-storage log has completed.
        self.durable_tag: Tag = bottom_tag()
        # Acks waiting for a covering log: (required_tag, dst, ack).
        self._parked_acks: List[Tuple[Tag, ProcessId, WriteAck]] = []
        # Store tokens for responder "written" logs: token -> tag.
        self._written_tokens: Dict[Hashable, Tag] = {}
        # Client operation in flight (at most one; processes are sequential).
        self._op: Optional[OperationId] = None
        self._op_is_write = False
        self._op_value: Any = None
        self._op_tag: Optional[Tag] = None
        self._phase = PhaseClock()
        self._tracker: RoundTracker = RoundTracker(self.majority)
        self._round_message: Optional[Message] = None
        self._retry_token: Optional[Hashable] = None
        self._recovery_done = False

    def crash(self) -> None:
        super().crash()
        self._reset_volatile()

    # -- round helpers ---------------------------------------------------------

    def _begin_round(self, make_message: Callable[[int], Message]) -> Effects:
        """Start a broadcast round with retransmission armed."""
        effects: Effects = []
        if self._retry_token is not None:
            effects.append(CancelTimer(self._retry_token))
        round_no = self._tracker.begin()
        self._round_message = make_message(round_no)
        self._retry_token = self.fresh_token("retry")
        self.stats.messages_sent += self.num_processes
        effects.append(Broadcast(self._round_message))
        effects.append(SetTimer(self._retransmit_interval, self._retry_token))
        return effects

    def _finish_round(self) -> Effects:
        """Disarm retransmission after the quorum was reached."""
        effects: Effects = []
        if self._retry_token is not None:
            effects.append(CancelTimer(self._retry_token))
            self._retry_token = None
        self._round_message = None
        return effects

    def on_timer(self, token: Hashable) -> Effects:
        if token != self._retry_token or self._round_message is None:
            return []
        if not self._tracker.active:
            return []
        self.stats.messages_sent += self.num_processes
        return [
            Broadcast(self._round_message),
            SetTimer(self._retransmit_interval, token),
        ]

    # -- responder side ----------------------------------------------------------

    def on_message(self, src: ProcessId, message: Message) -> Effects:
        if isinstance(message, SnQuery):
            return self._answer_sn_query(src, message)
        if isinstance(message, ReadQuery):
            return self._answer_read_query(src, message)
        if isinstance(message, WriteRequest):
            return self._answer_write_request(src, message)
        if isinstance(message, SnAck):
            return self._on_sn_ack(src, message)
        if isinstance(message, ReadAck):
            return self._on_read_ack(src, message)
        if isinstance(message, WriteAck):
            return self._on_write_ack(src, message)
        raise ProtocolError(f"unknown message type {type(message).__name__}")

    def _answer_sn_query(self, src: ProcessId, message: SnQuery) -> Effects:
        self.stats.messages_sent += 1
        return [Send(src, SnAck(op=message.op, round_no=message.round_no, tag=self.tag))]

    def _answer_read_query(self, src: ProcessId, message: ReadQuery) -> Effects:
        self.stats.messages_sent += 1
        return [
            Send(
                src,
                ReadAck(
                    op=message.op,
                    round_no=message.round_no,
                    tag=self.tag,
                    value=self.value,
                    durable_tag=self.durable_tag if self.LOGS_ON_ADOPT else self.tag,
                ),
            )
        ]

    def _answer_write_request(self, src: ProcessId, message: WriteRequest) -> Effects:
        """Adopt a higher tag; acknowledge once it is durable.

        Figure 4, lines 21-27: update value and timestamp if the
        received timestamp is lexicographically bigger, log the new
        value and tag, then acknowledge.
        """
        ack = WriteAck(op=message.op, round_no=message.round_no, tag=message.tag)
        if message.tag > self.tag:
            self.tag = message.tag
            self.value = message.value
            if not self.LOGS_ON_ADOPT:
                self.stats.messages_sent += 1
                return [Send(src, ack)]
            token = self.fresh_token(KEY_WRITTEN)
            self._written_tokens[token] = message.tag
            self._parked_acks.append((message.tag, src, ack))
            self.stats.stores_issued += 1
            return [
                Store(
                    key=KEY_WRITTEN,
                    record=(message.tag.as_tuple(), message.value),
                    size=STORE_RECORD_OVERHEAD + payload_size(message.value),
                    token=token,
                )
            ]
        if not self.LOGS_ON_ADOPT or message.tag <= self.durable_tag:
            self.stats.messages_sent += 1
            return [Send(src, ack)]
        # durable_tag < message.tag <= self.tag: the log that will cover
        # this tag is still in flight; park the ack until it completes.
        self._parked_acks.append((message.tag, src, ack))
        return []

    def on_store_complete(self, token: Hashable) -> Effects:
        tag = self._written_tokens.pop(token, None)
        if tag is None:
            return self._on_subclass_store_complete(token)
        if tag > self.durable_tag:
            self.durable_tag = tag
        return self._release_parked_acks()

    def _release_parked_acks(self) -> Effects:
        effects: Effects = []
        still_parked: List[Tuple[Tag, ProcessId, WriteAck]] = []
        for required, dst, ack in self._parked_acks:
            if required <= self.durable_tag:
                self.stats.messages_sent += 1
                effects.append(Send(dst, ack))
            else:
                still_parked.append((required, dst, ack))
        self._parked_acks = still_parked
        return effects

    def _on_subclass_store_complete(self, token: Hashable) -> Effects:
        """Hook for stores issued by subclasses (writer pre-logs etc.)."""
        return []

    # -- client read (identical in every algorithm of the family) -------------

    def invoke_read(self, op: OperationId) -> Effects:
        self._require_idle()
        self.stats.reads_invoked += 1
        self._op = op
        self._op_is_write = False
        self._phase.become(PhaseClock.QUERY)
        return self._begin_round(
            lambda round_no: ReadQuery(op=op, round_no=round_no)
        )

    def _on_read_ack(self, src: ProcessId, message: ReadAck) -> Effects:
        if self._op is None or message.op != self._op:
            return []
        if not self._tracker.record(message.round_no, src, (message.tag, message.value)):
            return []
        # First round done: pick the freshest value and write it back
        # (Figure 4, lines 35-38) so it reaches a majority before we
        # return it.
        best = highest_tagged(self._tracker.responses())
        assert best is not None
        self._op_tag, self._op_value = best
        self._phase.become(PhaseClock.PROPAGATE)
        effects = self._finish_round()
        op = self._op
        tag, value = self._op_tag, self._op_value
        effects.extend(
            self._begin_round(
                lambda round_no: WriteRequest(
                    op=op, round_no=round_no, tag=tag, value=value
                )
            )
        )
        return effects

    # -- client write (shared plumbing; tag derivation is per-subclass) -------

    def invoke_write(self, op: OperationId, value: Any) -> Effects:
        self._require_idle()
        self.stats.writes_invoked += 1
        self._op = op
        self._op_is_write = True
        self._op_value = value
        return self._start_write()

    def _start_write(self) -> Effects:
        """Begin the write; default is the SN query round of Figure 4."""
        self._phase.become(PhaseClock.QUERY)
        op = self._op
        return self._begin_round(lambda round_no: SnQuery(op=op, round_no=round_no))

    def _on_sn_ack(self, src: ProcessId, message: SnAck) -> Effects:
        if self._op is None or message.op != self._op or not self._op_is_write:
            return []
        if not self._tracker.record(message.round_no, src, message.tag):
            return []
        highest = max(self._tracker.response_values())
        return self._finish_round() + self._after_sn_quorum(highest)

    def _after_sn_quorum(self, highest: Tag) -> Effects:
        """Continue the write once the majority's tags are in.

        Subclasses decide whether to pre-log (persistent) or broadcast
        immediately (crash-stop, transient), and how to increment.
        """
        raise NotImplementedError

    def _propagate_write(self) -> Effects:
        """Second round: broadcast the new value and collect W acks."""
        self._phase.become(PhaseClock.PROPAGATE)
        op = self._op
        tag, value = self._op_tag, self._op_value
        assert tag is not None
        return self._begin_round(
            lambda round_no: WriteRequest(op=op, round_no=round_no, tag=tag, value=value)
        )

    def _on_write_ack(self, src: ProcessId, message: WriteAck) -> Effects:
        if self._phase.phase == PhaseClock.RECOVERING:
            return self._on_recovery_write_ack(src, message)
        if self._op is None or message.op != self._op:
            return []
        if not self._tracker.record(message.round_no, src, message.tag):
            return []
        effects = self._finish_round()
        op = self._op
        result = None if self._op_is_write else self._op_value
        effects.extend(self._complete_operation(op, result))
        return effects

    def _complete_operation(self, op: OperationId, result: Any) -> Effects:
        """Finish the current operation; subclasses may log first."""
        tag = self._op_tag
        self._clear_operation()
        return [Reply(op, result, tag=tag)]

    def _clear_operation(self) -> None:
        self._op = None
        self._op_is_write = False
        self._op_value = None
        self._op_tag = None
        self._phase.become(PhaseClock.IDLE)

    def _on_recovery_write_ack(self, src: ProcessId, message: WriteAck) -> Effects:
        """Ack collection for a recovery replay round (Figure 4 Recover)."""
        if message.op is not None:
            return []
        if not self._tracker.record(message.round_no, src, message.tag):
            return []
        self._phase.become(PhaseClock.IDLE)
        self._recovery_done = True
        return self._finish_round() + [RecoveryComplete()]

    # -- misc ------------------------------------------------------------------

    def _require_idle(self) -> None:
        if self._op is not None:
            raise ProtocolError(
                f"process {self.pid} already has operation {self._op} in flight"
            )
        if self._phase.phase == PhaseClock.RECOVERING:
            raise ProtocolError(f"process {self.pid} is still recovering")

    @property
    def busy(self) -> bool:
        """Whether a client operation is currently in flight."""
        return self._op is not None

    @property
    def phase(self) -> str:
        """Current phase name (see :class:`PhaseClock`), for tests/experiments."""
        return self._phase.phase
