"""Round-based majority-quorum collection.

Each operation of the algorithms runs one or two *rounds*: it
broadcasts a request and waits for acknowledgments from a majority
(the ``repeat ... until receive(... ) from ceil((n+1)/2) processes``
loops of Figures 4 and 5).  Channels are fair-lossy, so requests are
retransmitted periodically and acks may arrive duplicated, late, or
out of order.  :class:`RoundTracker` isolates the bookkeeping:

* each new round gets a fresh round number, so stale acks from an
  earlier round (or an earlier incarnation of the operation) are
  ignored;
* duplicate acks from the same responder count once;
* responses can carry data (tags, values); the tracker stores the first
  response per responder and exposes them when the quorum is reached.
"""

from __future__ import annotations

from typing import Any, Dict, Generic, List, Optional, Tuple, TypeVar

from repro.common.ids import ProcessId

T = TypeVar("T")


class RoundTracker(Generic[T]):
    """Tracks responders for the current round of one process."""

    def __init__(self, quorum_size: int):
        if quorum_size < 1:
            raise ValueError("quorum_size must be >= 1")
        self.quorum_size = quorum_size
        self._round_no = 0
        self._active = False
        self._responses: Dict[ProcessId, T] = {}

    @property
    def round_no(self) -> int:
        """Number of the current (or last) round."""
        return self._round_no

    @property
    def active(self) -> bool:
        """Whether a round is in progress (started, quorum not reached)."""
        return self._active

    @property
    def responders(self) -> int:
        """Distinct processes that answered the current round."""
        return len(self._responses)

    def begin(self) -> int:
        """Start a new round; returns its round number."""
        self._round_no += 1
        self._active = True
        self._responses = {}
        return self._round_no

    def abort(self) -> None:
        """Abandon the current round (e.g. the operation was superseded)."""
        self._active = False
        self._responses = {}

    def record(self, round_no: int, src: ProcessId, response: T) -> bool:
        """Record an ack for round ``round_no`` from ``src``.

        Returns ``True`` exactly once: on the ack that completes the
        quorum.  Acks for other rounds, duplicate acks, and acks after
        completion all return ``False``.
        """
        if not self._active or round_no != self._round_no:
            return False
        if src in self._responses:
            return False
        self._responses[src] = response
        if len(self._responses) >= self.quorum_size:
            self._active = False
            return True
        return False

    def responses(self) -> List[Tuple[ProcessId, T]]:
        """All recorded ``(responder, response)`` pairs, by process id."""
        return sorted(self._responses.items())

    def response_values(self) -> List[T]:
        """Just the responses, ordered by responder id."""
        return [response for _, response in self.responses()]


class PhaseClock:
    """Tracks which phase of a two-round operation a process is in.

    Purely a readability helper for the protocol implementations; the
    allowed values are ``idle``, ``query`` (first round), ``store``
    (writer pre-log in Figure 4), ``propagate`` (second round) and
    ``recovering``.
    """

    IDLE = "idle"
    QUERY = "query"
    STORE = "store"
    PROPAGATE = "propagate"
    RECOVERING = "recovering"

    _VALID = (IDLE, QUERY, STORE, PROPAGATE, RECOVERING)

    def __init__(self) -> None:
        self._phase = self.IDLE

    @property
    def phase(self) -> str:
        return self._phase

    def become(self, phase: str) -> None:
        if phase not in self._VALID:
            raise ValueError(f"unknown phase {phase!r}")
        self._phase = phase

    def is_idle(self) -> bool:
        return self._phase == self.IDLE

    def __repr__(self) -> str:
        return f"PhaseClock({self._phase})"


def highest_tagged(
    responses: List[Tuple[ProcessId, Tuple[Any, Any]]]
) -> Optional[Tuple[Any, Any]]:
    """Pick the ``(tag, value)`` with the lexicographically largest tag.

    ``responses`` holds ``(responder, (tag, value))`` pairs as returned
    by :meth:`RoundTracker.responses`.  Ties cannot happen across
    distinct tags (tags embed the writer id); identical tags carry the
    same value by the algorithms' invariants, so any winner is correct.
    """
    best: Optional[Tuple[Any, Any]] = None
    for _, (tag, value) in responses:
        if best is None or tag > best[0]:
            best = (tag, value)
    return best
