"""High-level simulation API: build a cluster, run operations, inspect.

This is the *low-level* front-end for simulated runs -- the unified,
backend-agnostic client API lives in :mod:`repro.api`
(``open_cluster(backend="sim")`` wraps a cluster built here).  Use
this layer directly when a tool needs simulator-specific surface::

    from repro import SimCluster

    cluster = SimCluster(protocol="persistent", num_processes=5)
    cluster.start()
    cluster.write_sync(pid=0, value="hello")
    assert cluster.read_sync(pid=1) == "hello"
    cluster.crash(0)
    cluster.recover(0)
    verdict = cluster.check_atomicity()
    assert verdict.ok

Everything runs on virtual time: ``write_sync``/``read_sync`` advance
the simulation until the operation settles.  For concurrent workloads,
invoke with :meth:`write`/:meth:`read` (returns a handle immediately)
and drive the clock with :meth:`run`/:meth:`run_until`.

Beyond the single anonymous register, a cluster can host named
*register instances* (one per key of the KV layer): provision them with
:meth:`SimCluster.ensure_register` and address them with the ``key``
argument of :meth:`write`/:meth:`read`.  The sharded, batching
key-value front-end lives in :mod:`repro.kv`.

Failure injection composes on top: :meth:`SimCluster.install_schedule`
arms a time-based :class:`~repro.sim.failures.CrashSchedule`, the
cluster's :attr:`~SimCluster.injector` fires trace-triggered
adversaries, and the declarative scenario layer
(:mod:`repro.scenarios`) builds whole fault/workload/verification
programs from both.  Verification is :meth:`SimCluster.check_atomicity`:
exhaustive black-box search on small histories, the near-linear
white-box tag checker beyond the exhaustive cap (``method="auto"``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set

from repro.common.config import ClusterConfig
from repro.common.errors import ConfigurationError, OperationAborted, ReproError
from repro.common.ids import ProcessId
from repro.history.checker import MAX_OPERATIONS, AtomicityVerdict, check_history
from repro.history.history import History
from repro.history.partition import partition_history
from repro.history.recorder import HistoryRecorder
from repro.history.register_checker import check_tagged_history
from repro.protocol.base import RegisterProtocol, StableView
from repro.protocol.registry import get_protocol_class
from repro.protocol.two_round import TwoRoundRegisterProtocol
from repro.sim.failures import (
    CRASH,
    CrashSchedule,
    TriggerInjector,
)
from repro.sim.kernel import Kernel
from repro.sim.network import SimNetwork
from repro.sim.node import SimNode, SimOperation
from repro.sim.storage import SimStableStorage
from repro.sim.tracing import Trace

#: Default virtual-time budget for synchronous operations, seconds.
DEFAULT_OP_TIMEOUT = 5.0


class SimCluster:
    """A simulated cluster emulating one shared register."""

    def __init__(
        self,
        protocol: str = "persistent",
        num_processes: Optional[int] = None,
        config: Optional[ClusterConfig] = None,
        seed: Optional[int] = None,
        include_broken: bool = False,
        capture_trace: bool = True,
        batch_window: float = 0.0,
        flight_recorder: bool = True,
        checkpoint_interval: Optional[float] = None,
        recovery_scan: bool = False,
    ):
        if config is None:
            config = ClusterConfig()
        if num_processes is not None:
            config = ClusterConfig(
                num_processes=num_processes,
                network=config.network,
                storage=config.storage,
                retransmit_interval=config.retransmit_interval,
                local_step_cost=config.local_step_cost,
                seed=config.seed if seed is None else seed,
            )
        elif seed is not None:
            config = ClusterConfig(
                num_processes=config.num_processes,
                network=config.network,
                storage=config.storage,
                retransmit_interval=config.retransmit_interval,
                local_step_cost=config.local_step_cost,
                seed=seed,
            )
        self.config = config
        self.protocol_name = protocol
        self._protocol_class = get_protocol_class(protocol, include_broken=include_broken)

        self.kernel = Kernel(seed=config.seed)
        self.trace = Trace(
            capture=capture_trace, flight_recorder=flight_recorder
        )
        self.recorder = HistoryRecorder(clock=lambda: self.kernel.now)
        self.network = SimNetwork(
            self.kernel, config.num_processes, config.network, self.trace
        )
        self.nodes: List[SimNode] = []
        for pid in range(config.num_processes):
            storage = SimStableStorage(self.kernel, pid, config.storage, self.trace)
            node = SimNode(
                pid=pid,
                kernel=self.kernel,
                network=self.network,
                storage=storage,
                protocol_factory=self._make_protocol,
                recorder=self.recorder,
                trace=self.trace,
                num_processes=config.num_processes,
                batch_window=batch_window,
                checkpoint_interval=checkpoint_interval,
                recovery_scan=recovery_scan,
            )
            self.nodes.append(node)
        self._registers: Set[str] = set()
        self.injector = TriggerInjector(
            trace=self.trace,
            crash_fn=self._try_crash,
            recover_fn=self._try_recover,
            schedule_fn=lambda delay, fn: self.kernel.schedule(delay, fn),
        )
        self._started = False

    def _make_protocol(
        self, pid: ProcessId, num_processes: int, stable: StableView
    ) -> RegisterProtocol:
        cls = self._protocol_class
        if issubclass(cls, TwoRoundRegisterProtocol):
            return cls(
                pid,
                num_processes,
                stable,
                retransmit_interval=self.config.retransmit_interval,
            )
        return cls(pid, num_processes, stable)

    # -- lifecycle -----------------------------------------------------------

    def start(self, timeout: float = 1.0) -> None:
        """Boot every process and wait until all report ready."""
        if self._started:
            raise ReproError("cluster already started")
        self._started = True
        for node in self.nodes:
            node.boot()
        ok = self.kernel.run_until(
            lambda: all(node.ready for node in self.nodes), timeout=timeout
        )
        if not ok:
            raise ReproError("cluster did not become ready within the timeout")

    @property
    def majority(self) -> int:
        return self.config.majority

    @property
    def flight_recorder(self):
        """The trace's always-on event ring, or ``None`` when disabled."""
        return self.trace.ring

    @property
    def history(self) -> History:
        """The recorded invocation/reply/crash/recovery history so far."""
        return self.recorder.history

    def node(self, pid: ProcessId) -> SimNode:
        if not 0 <= pid < len(self.nodes):
            raise ConfigurationError(f"pid {pid} out of range")
        return self.nodes[pid]

    # -- failures ------------------------------------------------------------

    def crash(self, pid: ProcessId) -> None:
        """Crash process ``pid`` immediately."""
        self.node(pid).crash()

    def recover(self, pid: ProcessId, wait: bool = False, timeout: float = 1.0) -> None:
        """Restart process ``pid``; optionally run until it is ready."""
        node = self.node(pid)
        node.recover()
        if wait:
            ok = self.kernel.run_until(lambda: node.ready, timeout=timeout)
            if not ok:
                raise ReproError(
                    f"process {pid} did not finish recovery within the timeout"
                )

    def crashed_processes(self) -> List[ProcessId]:
        return [node.pid for node in self.nodes if node.crashed]

    def _try_crash(self, pid: ProcessId) -> None:
        node = self.node(pid)
        if not node.crashed:
            node.crash()

    def _try_recover(self, pid: ProcessId) -> None:
        node = self.node(pid)
        if node.crashed:
            node.recover()

    def install_schedule(self, schedule: CrashSchedule) -> None:
        """Arm a time-based crash/recovery schedule.

        Actions whose instant already passed (e.g. scheduled relative
        to t=0 but installed after :meth:`start` advanced the clock)
        fire immediately, preserving their relative order.
        """
        for action in schedule.actions:
            delay = max(0.0, action.time - self.kernel.now)
            if action.action == CRASH:
                self.kernel.schedule(delay, self._try_crash, action.pid)
            else:
                self.kernel.schedule(delay, self._try_recover, action.pid)

    # -- register instances ---------------------------------------------------

    def ensure_register(self, key: str) -> None:
        """Provision the virtual register instance ``key`` on every node.

        Idempotent.  On running nodes the new instance initializes
        within the simulation (its initial records must become durable
        before it accepts operations -- use :meth:`wait_register` or
        any synchronous operation to run the clock); crashed nodes
        boot the instance when they recover.
        """
        if key in self._registers:
            return
        self._registers.add(key)
        for node in self.nodes:
            node.provision_register(key)

    @property
    def registers(self) -> List[str]:
        """Named register instances provisioned so far."""
        return sorted(self._registers)

    def wait_register(self, key: str, timeout: float = 1.0) -> None:
        """Advance the clock until ``key`` is ready on every live node."""
        ok = self.kernel.run_until(
            lambda: all(
                node.crashed or node.register_ready(key) for node in self.nodes
            ),
            timeout=timeout,
        )
        if not ok:
            raise ReproError(f"register {key!r} did not become ready")

    # -- operations ------------------------------------------------------------

    def write(
        self, pid: ProcessId, value: Any, key: Optional[str] = None
    ) -> SimOperation:
        """Invoke a write at process ``pid``; returns the handle.

        ``key`` addresses a named register instance; ``None`` is the
        classic anonymous register.  A named register must have
        finished initializing before it accepts operations: on a
        key's first touch call :meth:`ensure_register` +
        :meth:`wait_register` (or use :meth:`write_sync`, which does)
        or this raises :class:`~repro.common.errors.NotRecoveredError`.
        """
        if key is not None:
            self.ensure_register(key)
        return self.node(pid).invoke_write(value, register=key)

    def read(self, pid: ProcessId, key: Optional[str] = None) -> SimOperation:
        """Invoke a read at process ``pid``; returns the handle.

        Named-register readiness works as in :meth:`write`.
        """
        if key is not None:
            self.ensure_register(key)
        return self.node(pid).invoke_read(register=key)

    def wait(
        self,
        handle: SimOperation,
        timeout: float = DEFAULT_OP_TIMEOUT,
        poll_every: int = 1,
    ) -> SimOperation:
        """Advance virtual time until ``handle`` settles.

        The default ``poll_every=1`` stops on the exact settling event;
        callers that tolerate a few events of overshoot (see
        :meth:`run_until`) can pass a stride to cut polling overhead.
        """
        ok = self.kernel.run_until(
            lambda: handle.settled, timeout=timeout, poll_every=poll_every
        )
        if not ok:
            raise ReproError(f"operation {handle.op} did not settle within {timeout}s")
        return handle

    def wait_all(
        self, handles: Sequence[SimOperation], timeout: float = DEFAULT_OP_TIMEOUT
    ) -> List[SimOperation]:
        """Advance virtual time until every handle settles."""
        ok = self.kernel.run_until(
            lambda: all(handle.settled for handle in handles), timeout=timeout
        )
        if not ok:
            unsettled = [h.op for h in handles if not h.settled]
            raise ReproError(f"operations did not settle: {unsettled}")
        return list(handles)

    def write_sync(
        self,
        pid: ProcessId,
        value: Any,
        key: Optional[str] = None,
        timeout: float = DEFAULT_OP_TIMEOUT,
    ) -> SimOperation:
        """Write and run the simulation until the write returns."""
        if key is not None:
            self.ensure_register(key)
            self.wait_register(key, timeout=timeout)
        handle = self.wait(self.write(pid, value, key=key), timeout=timeout)
        if handle.aborted:
            raise OperationAborted(f"write at p{pid} aborted by a crash")
        return handle

    def read_sync(
        self,
        pid: ProcessId,
        key: Optional[str] = None,
        timeout: float = DEFAULT_OP_TIMEOUT,
    ) -> Any:
        """Read and run the simulation until the value is returned."""
        if key is not None:
            self.ensure_register(key)
            self.wait_register(key, timeout=timeout)
        handle = self.wait(self.read(pid, key=key), timeout=timeout)
        if handle.aborted:
            raise OperationAborted(f"read at p{pid} aborted by a crash")
        return handle.result

    # -- clock ---------------------------------------------------------------------

    def run(self, duration: Optional[float] = None, max_events: int = 1_000_000) -> None:
        """Advance the simulation by ``duration`` (or until quiescent)."""
        if duration is None:
            self.kernel.run(max_events=max_events)
        else:
            self.kernel.run(until=self.kernel.now + duration, max_events=max_events)

    def run_until(
        self,
        predicate,
        timeout: Optional[float] = None,
        poll_every: int = 1,
        max_events: int = 1_000_000,
    ) -> bool:
        """Advance the simulation until ``predicate()`` holds.

        ``poll_every`` amortizes predicate polling (see
        :meth:`repro.sim.kernel.Kernel.run_until`): with a stride ``k``
        up to ``k - 1`` further events may execute after the predicate
        turns true, so only pass ``k > 1`` when that overshoot is
        acceptable (e.g. draining a finished workload).  ``max_events``
        bounds the number of kernel callbacks; soak-scale runs (a
        simulated operation costs tens of kernel events) must raise it
        above the livelock-guard default.
        """
        return self.kernel.run_until(
            predicate, timeout=timeout, poll_every=poll_every,
            max_events=max_events,
        )

    @property
    def now(self) -> float:
        return self.kernel.now

    # -- verification ------------------------------------------------------------

    def per_register_histories(self) -> Dict[Optional[str], History]:
        """Project the recorded history onto each register instance.

        The ``None`` entry is the anonymous register's history (the one
        :meth:`check_atomicity` judges); named entries carry one key's
        operations each, with every crash/recovery event replicated
        into every projection.
        """
        return partition_history(
            self.history, self.recorder.register_of, registers=self._registers
        )

    def check_atomicity(
        self,
        criterion: Optional[str] = None,
        initial_value: Any = None,
        method: str = "auto",
    ) -> AtomicityVerdict:
        """Check the recorded history against an atomicity criterion.

        ``criterion`` defaults to what the running protocol promises:
        ``"transient"`` for the transient algorithm, ``"persistent"``
        for everything else.  When named register instances exist, this
        judges the anonymous register's projection; check the named
        ones via :meth:`per_register_histories` (the KV layer's
        ``check_atomicity`` does exactly that, per key).

        ``method`` picks the checker: ``"blackbox"`` is the exhaustive
        witness search (ground truth, capped at
        :data:`~repro.history.checker.MAX_OPERATIONS`), ``"whitebox"``
        the near-linear tag checker, and ``"auto"`` (the default) uses
        the black-box checker while the history fits under its cap and
        the white-box checker beyond it -- so soak-scale runs get a
        verdict instead of a size error.
        """
        if criterion is None:
            criterion = (
                "transient" if self.protocol_name == "transient" else "persistent"
            )
        if method not in ("auto", "blackbox", "whitebox"):
            raise ConfigurationError(f"unknown checker method {method!r}")
        history = self.history
        if self._registers:
            history = self.per_register_histories().get(None, History())
        if method == "auto":
            method = (
                "blackbox"
                if len(history.operations()) <= MAX_OPERATIONS
                else "whitebox"
            )
        if method == "blackbox":
            return check_history(
                history, criterion=criterion, initial_value=initial_value
            )
        result = check_tagged_history(
            history,
            self.recorder,
            criterion=criterion,
            initial_value=initial_value,
        )
        return AtomicityVerdict(
            ok=result.ok,
            criterion=criterion,
            reason="; ".join(result.violations),
            operations=result.operations,
        )

    def causal_log_counts(self) -> Dict[str, List[int]]:
        """Measured causal-log counts per operation kind."""
        counts: Dict[str, List[int]] = {"read": [], "write": []}
        for record in self.history.completed_operations():
            logs = self.recorder.causal_logs(record.op)
            if logs is not None:
                counts[record.kind].append(logs)
        return counts
