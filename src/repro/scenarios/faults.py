"""Declarative fault-schedule primitives for scenarios.

Each primitive is a frozen dataclass describing one adversarial
ingredient -- a crash/recovery window, a rolling restart wave, a
network partition, a message-loss burst, a slow-link window, or a
trace-triggered crash -- and knows how to **arm** itself on a cluster:
:meth:`FaultAction.arm` translates the declaration into kernel events,
network state changes, or :class:`~repro.sim.failures.TriggerInjector`
triggers.  All times are virtual seconds **relative to the arm
instant** (a scenario arms a phase's faults when the phase opens), and
every primitive is deterministic: randomized ones (the loss burst) own
a seeded generator instead of touching the kernel's stream, so a
scenario run stays a pure function of (scenario, seed).

Primitives compose: a scenario phase carries a tuple of them, and the
network-level effects (link blocks, slow-link penalties) are
refcounted/additive so overlapping windows on the same links stack
instead of clobbering each other.  Two introspection hooks serve the
runner: :meth:`FaultAction.victims` (everyone a fault may crash --
such faults are skipped entirely under protocols whose processes
cannot recover, like crash-stop) and
:meth:`FaultAction.permanent_victims` (victims never recovered, e.g.
:class:`CrashAt` -- clients are kept off those replicas so their work
does not stall against a process that will never come back).
:func:`victims_of` aggregates either set over a fault collection.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Set, Tuple

from repro.common.errors import ConfigurationError
from repro.sim import tracing
from repro.sim.failures import CrashSchedule

__all__ = [
    "CorruptRecord",
    "CrashAt",
    "CrashOnTrace",
    "Downtime",
    "FaultAction",
    "LossBurst",
    "LostStore",
    "PartitionWindow",
    "RollingRestarts",
    "SlowDisk",
    "SlowLinks",
    "TornStore",
    "victims_of",
]


def _sim_of(cluster):
    """The underlying :class:`~repro.cluster.SimCluster` of ``cluster``.

    Accepts a ``SimCluster`` and anything wrapping one behind a
    ``.sim`` attribute -- the KV store and the façade adapters of
    :mod:`repro.api` -- so the same fault declarations arm against any
    virtual-time front-end.
    """
    return getattr(cluster, "sim", cluster)


class FaultAction:
    """Base class: one declarative fault, armable on a cluster."""

    def arm(self, cluster) -> None:
        """Install this fault; times are relative to the current clock."""
        raise NotImplementedError

    def victims(self) -> Set[int]:
        """Processes this fault may crash (empty for network faults)."""
        return set()

    def permanent_victims(self) -> Set[int]:
        """Victims this fault crashes without ever recovering them."""
        return set()


@dataclass(frozen=True)
class Downtime(FaultAction):
    """Crash ``pid`` at ``start`` and recover it at ``end``."""

    pid: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError("downtime needs 0 <= start < end")

    def arm(self, cluster) -> None:
        sim = _sim_of(cluster)
        now = sim.kernel.now
        sim.install_schedule(
            CrashSchedule().downtime(self.pid, now + self.start, now + self.end)
        )

    def victims(self) -> Set[int]:
        return {self.pid}


@dataclass(frozen=True)
class CrashAt(FaultAction):
    """Crash ``pid`` at ``time`` and leave it down."""

    pid: int
    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("crash time must be >= 0")

    def arm(self, cluster) -> None:
        sim = _sim_of(cluster)
        sim.install_schedule(
            CrashSchedule().crash(sim.kernel.now + self.time, self.pid)
        )

    def victims(self) -> Set[int]:
        return {self.pid}

    def permanent_victims(self) -> Set[int]:
        return {self.pid}


@dataclass(frozen=True)
class RollingRestarts(FaultAction):
    """Restart processes one after another, each down for ``downtime``.

    Process ``pids[i]`` (default: every process) crashes at
    ``start + i * interval`` and recovers ``downtime`` later -- the
    classic rolling-upgrade wave.  With ``interval > downtime`` at most
    one process is down at a time, preserving a responsive majority.
    """

    start: float = 0.0
    interval: float = 2e-3
    downtime: float = 1e-3
    pids: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.start < 0 or self.interval <= 0 or self.downtime <= 0:
            raise ConfigurationError(
                "rolling restarts need start >= 0, interval > 0, downtime > 0"
            )

    def _resolved_pids(self, num_processes: int) -> Tuple[int, ...]:
        return self.pids if self.pids is not None else tuple(range(num_processes))

    def arm(self, cluster) -> None:
        sim = _sim_of(cluster)
        now = sim.kernel.now
        schedule = CrashSchedule()
        for i, pid in enumerate(self._resolved_pids(sim.config.num_processes)):
            begin = now + self.start + i * self.interval
            schedule.downtime(pid, begin, begin + self.downtime)
        sim.install_schedule(schedule)

    def victims(self) -> Set[int]:
        # Without a cluster we cannot resolve "every process"; callers
        # that need exact victims pass explicit pids.  The sentinel -1
        # marks "all processes" for victims_of().
        return set(self.pids) if self.pids is not None else {-1}


@dataclass(frozen=True)
class PartitionWindow(FaultAction):
    """Split the cluster into two groups between ``start`` and ``end``.

    Every link between ``group_a`` and ``group_b`` is blocked (both
    directions) at ``start`` and healed at ``end``.  Processes inside a
    group keep talking; operations coordinated from the minority side
    stall on their quorum until the heal, then complete -- the model's
    fair-lossy channels permit arbitrary finite silence.
    """

    group_a: Tuple[int, ...]
    group_b: Tuple[int, ...]
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError("partition needs 0 <= start < end")
        if not self.group_a or not self.group_b:
            raise ConfigurationError("both partition groups must be non-empty")
        if set(self.group_a) & set(self.group_b):
            raise ConfigurationError("partition groups must be disjoint")

    def arm(self, cluster) -> None:
        sim = _sim_of(cluster)
        network = sim.network
        a, b = set(self.group_a), set(self.group_b)

        def heal() -> None:
            for src in a:
                for dst in b:
                    network.unblock(src, dst)
                    network.unblock(dst, src)

        sim.kernel.schedule(self.start, network.partition, a, b)
        sim.kernel.schedule(self.end, heal)


@dataclass(frozen=True)
class LossBurst(FaultAction):
    """Drop a fraction of transmissions between ``start`` and ``end``.

    Every non-loopback transmission in the window is dropped with
    ``probability``, decided by a private generator seeded from
    ``seed`` -- the kernel's random stream is untouched, so the burst
    perturbs the run only through the drops themselves.
    """

    start: float
    end: float
    probability: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError("loss burst needs 0 <= start < end")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("probability must be in [0, 1]")

    def arm(self, cluster) -> None:
        sim = _sim_of(cluster)
        rng = random.Random(self.seed)
        probability = self.probability

        def should_drop(src, dst, message) -> bool:
            return src != dst and rng.random() < probability

        state = {}

        def install() -> None:
            state["remove"] = sim.network.add_filter(should_drop)

        def remove() -> None:
            removal = state.pop("remove", None)
            if removal is not None:
                removal()

        sim.kernel.schedule(self.start, install)
        sim.kernel.schedule(self.end, remove)


@dataclass(frozen=True)
class SlowLinks(FaultAction):
    """Add ``extra_delay`` to deliveries between ``start`` and ``end``.

    ``links`` restricts the penalty to specific ``(src, dst)`` pairs;
    ``None`` degrades every non-loopback link.  Messages still arrive
    -- late -- so unlike a partition nothing retransmits forever, the
    protocols just see their round-trips stretch.
    """

    start: float
    end: float
    extra_delay: float
    links: Optional[Tuple[Tuple[int, int], ...]] = None

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError("slow-link window needs 0 <= start < end")
        if self.extra_delay <= 0:
            raise ConfigurationError("extra_delay must be > 0")

    def _resolved_links(self, num_processes: int) -> Sequence[Tuple[int, int]]:
        if self.links is not None:
            return self.links
        return [
            (src, dst)
            for src in range(num_processes)
            for dst in range(num_processes)
            if src != dst
        ]

    def arm(self, cluster) -> None:
        sim = _sim_of(cluster)
        network = sim.network
        links = self._resolved_links(sim.config.num_processes)

        def slow() -> None:
            for src, dst in links:
                network.slow_link(src, dst, self.extra_delay)

        def restore() -> None:
            for src, dst in links:
                network.unslow_link(src, dst, self.extra_delay)

        sim.kernel.schedule(self.start, slow)
        sim.kernel.schedule(self.end, restore)


@dataclass(frozen=True)
class CrashOnTrace(FaultAction):
    """Crash ``pid`` the instant a matching trace event fires.

    The precision tool of the paper's lower-bound adversaries, exposed
    declaratively: ``kind`` names a trace event kind (e.g.
    ``"store_begin"``), ``source_pid`` optionally restricts which
    process's event triggers, and ``count`` skips the first matches.
    The crash lands *synchronously between the matched event and the
    next simulator step* -- e.g. "crash the writer the moment its first
    log write starts" for the crash-during-write scenario.
    ``recover_after`` schedules the recovery that much virtual time
    after the trigger fires (``None`` leaves the process down).
    """

    kind: str
    pid: int
    source_pid: Optional[int] = None
    count: int = 1
    recover_after: Optional[float] = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError("count must be >= 1")
        if self.recover_after is not None and self.recover_after <= 0:
            raise ConfigurationError("recover_after must be > 0")

    def arm(self, cluster) -> None:
        sim = _sim_of(cluster)
        kind, source = self.kind, self.source_pid

        def matches(event) -> bool:
            return event.kind == kind and (source is None or event.pid == source)

        sim.injector.crash_when(matches, self.pid, count=self.count)
        if self.recover_after is not None:
            # A second trigger on the same event schedules the
            # recovery; the crash trigger (installed first) runs first.
            sim.injector.recover_when(
                matches, self.pid, count=self.count, delay=self.recover_after
            )

    def victims(self) -> Set[int]:
        return {self.pid}

    def permanent_victims(self) -> Set[int]:
        return set() if self.recover_after is not None else {self.pid}


@dataclass(frozen=True)
class TornStore(FaultAction):
    """Crash ``pid`` exactly between the two phases of its checkpoint.

    The adversarial schedule for the two-phase checkpoint discipline
    (:mod:`repro.storage.checkpoint`): the crash lands synchronously on
    the process's ``ckpt_tentative`` trace event -- the tentative
    snapshot is durable, the permanent store was never issued, and no
    truncation happened.  Recovery must ignore the stray tentative
    record and restore from the previous permanent snapshot plus the
    intact log suffix.  ``count`` skips the first matches (tear the
    ``count``-th checkpoint); ``recover_after`` schedules the recovery
    that much virtual time later (``None`` leaves the process down).
    """

    pid: int
    count: int = 1
    recover_after: Optional[float] = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError("count must be >= 1")
        if self.recover_after is not None and self.recover_after <= 0:
            raise ConfigurationError("recover_after must be > 0")

    def arm(self, cluster) -> None:
        sim = _sim_of(cluster)
        pid = self.pid

        def matches(event) -> bool:
            return event.kind == tracing.CKPT_TENTATIVE and event.pid == pid

        sim.injector.crash_when(matches, pid, count=self.count)
        if self.recover_after is not None:
            sim.injector.recover_when(
                matches, pid, count=self.count, delay=self.recover_after
            )

    def victims(self) -> Set[int]:
        return {self.pid}

    def permanent_victims(self) -> Set[int]:
        return set() if self.recover_after is not None else {self.pid}


@dataclass(frozen=True)
class CorruptRecord(FaultAction):
    """Make ``pid``'s durable record under ``key`` unreadable at ``time``.

    Models a record file failing its decode on the next read and being
    quarantined (the :class:`~repro.runtime.storage.FileStableStorage`
    behavior): the key simply stops resolving.  ``key`` is the raw
    storage key -- ``"writing"``/``"written"`` for the default register
    slot, ``"<register>/writing"`` for named slots.  Corrupting
    ``writing`` is always recoverable (recovery replays bottom);
    corrupting ``written`` may lose the only local copy of a value, so
    scenarios that must stay atomic should leave it alone.
    """

    pid: int
    key: str
    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("corruption time must be >= 0")

    def arm(self, cluster) -> None:
        sim = _sim_of(cluster)
        storage = sim.nodes[self.pid].storage
        sim.kernel.schedule(self.time, storage.corrupt, self.key)


@dataclass(frozen=True)
class SlowDisk(FaultAction):
    """Add ``extra_latency`` to ``pid``'s stores between ``start`` and ``end``.

    The storage sibling of :class:`SlowLinks`: every store issued in
    the window pays the extra latency on top of the modelled one, and
    queues behind the slowed writes ahead of it on the sequential
    device.  Windows on the same process must not overlap (the end of
    one would clear the other).
    """

    pid: int
    start: float
    end: float
    extra_latency: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError("slow-disk window needs 0 <= start < end")
        if self.extra_latency <= 0:
            raise ConfigurationError("extra_latency must be > 0")

    def arm(self, cluster) -> None:
        sim = _sim_of(cluster)
        storage = sim.nodes[self.pid].storage
        sim.kernel.schedule(self.start, storage.set_slow, self.extra_latency)
        sim.kernel.schedule(self.end, storage.clear_slow)


@dataclass(frozen=True)
class LostStore(FaultAction):
    """Silently lose ``count`` of ``pid``'s stores from ``time`` on.

    The lying-fsync fault: the device acknowledges the store (the
    protocol proceeds as if it were durable) but the record never
    lands.  The protocols tolerate it the way they tolerate a crash
    that voids an in-flight store -- the paper's algorithms never rely
    on a *single* copy of anything -- but the lost log is visible in
    ``stores_lost`` and in recovery behavior, which is exactly what
    robustness scenarios probe.
    """

    pid: int
    time: float
    count: int = 1

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("loss time must be >= 0")
        if self.count < 1:
            raise ConfigurationError("count must be >= 1")

    def arm(self, cluster) -> None:
        sim = _sim_of(cluster)
        storage = sim.nodes[self.pid].storage
        sim.kernel.schedule(self.time, storage.lose_next_stores, self.count)


def victims_of(
    faults: Iterable[FaultAction],
    num_processes: int,
    permanent_only: bool = False,
) -> Set[int]:
    """Every process the given faults may crash.

    With ``permanent_only`` only victims that are never recovered
    count.  The ``-1`` sentinel (a :class:`RollingRestarts` over all
    processes) expands to the full process set.
    """
    victims: Set[int] = set()
    for fault in faults:
        victims |= (
            fault.permanent_victims() if permanent_only else fault.victims()
        )
    if -1 in victims:
        victims.discard(-1)
        victims |= set(range(num_processes))
    return victims
