"""Scenario execution: spec in, seed-reproducible verdict out.

:func:`run_scenario` builds the cluster a :class:`~repro.scenarios
.spec.Scenario` asks for, then walks its phases: arm the phase's
faults, drive its closed-loop workload to completion, and (under the
``per-phase`` policy) re-check the *same* growing history with the
white-box tag checker.  The append-only :class:`~repro.history
.history.History` contract makes each re-check reuse the cached
operation records (only the phase's new events are folded in); the
checker's sweep itself still walks the whole history, so a pass costs
O(N log N) of the history so far -- cheap in absolute terms (~0.7s at
100k operations), but with many phases the total verification cost is
O(phases x N), so phase counts stay small even for soaks.

Everything observable lands in a :class:`ScenarioResult`.  Its
:meth:`~ScenarioResult.fingerprint` is the determinism contract: two
runs of the same scenario, seed, protocol and budget produce equal
fingerprints (verdicts, per-phase metrics, counters and -- with
``capture_trace`` -- the normalized event transcript).  Wall-clock
timings are reported alongside but excluded from the fingerprint.
"""

from __future__ import annotations

import random
import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.api.base import Cluster, open_cluster
from repro.api.types import SHARDING
from repro.common.errors import ConfigurationError
from repro.scenarios.faults import victims_of
from repro.scenarios.spec import (
    VERIFY_PER_PHASE,
    Scenario,
    WorkloadPhase,
)
from repro.workloads.generators import (
    ClientPlan,
    OperationMix,
    UniqueValues,
    WorkloadRunner,
)
from repro.workloads.kv import ZipfianKeys, KVWorkloadRunner

#: Virtual seconds allowed per operation when sizing phase timeouts
#: (generous: a healthy write costs ~1 ms of virtual time).
_TIMEOUT_PER_OP = 0.02
_TIMEOUT_FLOOR = 30.0
#: Kernel-event budget per operation (a simulated op costs tens of
#: events; retransmissions during partitions cost more).
_EVENTS_PER_OP = 2_000
_EVENTS_FLOOR = 2_000_000

_OPID = re.compile(r"p(\d+)#(\d+)")


@dataclass
class CheckOutcome:
    """One verification pass over the recorded history."""

    phase: str
    ok: bool
    criterion: str
    method: str
    operations: int
    violations: str = ""
    #: Wall seconds the check took; excluded from the fingerprint.
    wall_s: float = 0.0

    def fingerprint(self) -> Dict[str, Any]:
        return {
            "phase": self.phase,
            "ok": self.ok,
            "criterion": self.criterion,
            "method": self.method,
            "operations": self.operations,
            "violations": self.violations,
        }


@dataclass
class PhaseOutcome:
    """What one workload phase did.

    ``sim_duration`` is the virtual time the phase's workload occupied
    -- for the KV front-end that is the measured window after key
    preload, for the register front-end the whole phase.
    """

    name: str
    attempted: int
    completed: int
    aborted: int
    unissued: int
    sim_duration: float
    #: What the phase cost, as a :meth:`~repro.obs.metrics
    #: .MetricsSnapshot.diff` of the cluster's metrics across the
    #: phase (``as_dict`` form).  Observational only -- latency
    #: histograms include bucket estimates and the live backend's
    #: gauges move with wall time -- so it stays out of the
    #: fingerprint.
    metrics: Optional[Dict[str, Any]] = field(default=None, repr=False)

    def fingerprint(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "attempted": self.attempted,
            "completed": self.completed,
            "aborted": self.aborted,
            "unissued": self.unissued,
            "sim_duration": round(self.sim_duration, 12),
        }


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    scenario: str
    store: str
    protocol: str
    seed: int
    ops: int
    phases: List[PhaseOutcome] = field(default_factory=list)
    checks: List[CheckOutcome] = field(default_factory=list)
    completed: int = 0
    aborted: int = 0
    unissued: int = 0
    final_clock: float = 0.0
    kernel_events: int = 0
    messages_sent: int = 0
    messages_dropped: int = 0
    stores_completed: int = 0
    crashes: int = 0
    recoveries: int = 0
    #: Normalized trace transcript (``capture_trace`` scenarios only).
    transcript: Optional[str] = None
    #: Wall seconds: total run, and verification alone.  Excluded from
    #: the fingerprint -- they vary run to run.
    wall_s: float = 0.0
    check_wall_s: float = 0.0
    #: Final cluster-wide metrics snapshot (``as_dict`` form) and the
    #: run's flight-recorder ring, when the backend keeps one.  Both
    #: are observation, not behaviour: they stay out of the
    #: fingerprint so attaching them can never perturb the
    #: determinism contract.
    metrics: Optional[Dict[str, Any]] = field(default=None, repr=False)
    flight_recorder: Optional[Any] = field(default=None, repr=False)
    #: The final snapshot as a live :class:`~repro.obs.metrics
    #: .MetricsSnapshot` (exact bucket counts, picklable) -- the form
    #: fleet aggregation merges.  ``metrics`` above is its lossy
    #: ``as_dict`` summary; both stay out of the fingerprint.
    metrics_snapshot: Optional[Any] = field(default=None, repr=False)
    #: Virtual-seconds duration of every completed crash-recovery, per
    #: process (pid -> durations, in crash order).  Deterministic, but
    #: observational -- reported alongside the fingerprint, not inside
    #: it, like the other metrics.
    recovery_times: Optional[Dict[int, List[float]]] = field(
        default=None, repr=False
    )

    @property
    def verdict(self) -> bool:
        """Whether the run is healthy: checks passed AND work finished.

        A stalled workload (a partition that never healed, an
        exhausted event budget) leaves operations unissued; the checks
        would trivially accept the truncated history, so unissued work
        fails the verdict on its own.  Aborted operations do *not* --
        crash scenarios abort in-flight work by design, and the
        checkers judge whether the survivors stayed atomic.
        """
        return (
            bool(self.checks)
            and all(check.ok for check in self.checks)
            and self.unissued == 0
        )

    def fingerprint(self) -> Dict[str, Any]:
        """The deterministic subset: equal across same-seed runs."""
        return {
            "scenario": self.scenario,
            "store": self.store,
            "protocol": self.protocol,
            "seed": self.seed,
            "ops": self.ops,
            "phases": [phase.fingerprint() for phase in self.phases],
            "checks": [check.fingerprint() for check in self.checks],
            "completed": self.completed,
            "aborted": self.aborted,
            "unissued": self.unissued,
            "final_clock": round(self.final_clock, 12),
            "kernel_events": self.kernel_events,
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "stores_completed": self.stores_completed,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "transcript": self.transcript,
            "verdict": self.verdict,
        }

    def summary(self) -> str:
        """A short human-readable report for the CLI."""
        lines = [
            f"scenario {self.scenario} ({self.store}, {self.protocol}, "
            f"seed {self.seed}): {'PASS' if self.verdict else 'FAIL'}",
            f"  operations: {self.completed} completed, {self.aborted} aborted, "
            f"{self.unissued} unissued of {self.ops}",
            f"  virtual time {self.final_clock * 1e3:.1f}ms, "
            f"{self.kernel_events:,} kernel events, "
            f"{self.messages_sent:,} messages "
            f"({self.messages_dropped:,} dropped), "
            f"{self.stores_completed:,} stable-storage logs",
            f"  failures: {self.crashes} crashes, {self.recoveries} recoveries",
            f"  wall {self.wall_s:.2f}s (verification {self.check_wall_s:.2f}s)",
        ]
        if self.recovery_times:
            durations = [
                duration
                for times in self.recovery_times.values()
                for duration in times
            ]
            if durations:
                lines.append(
                    f"  recovery times: {len(durations)} recoveries, "
                    f"max {max(durations) * 1e3:.2f}ms, "
                    f"mean {sum(durations) / len(durations) * 1e3:.2f}ms"
                )
        for check in self.checks:
            status = "ok" if check.ok else f"VIOLATED ({check.violations})"
            lines.append(
                f"  check[{check.phase}] {check.criterion}/{check.method}: "
                f"{check.operations} ops, {status}, {check.wall_s * 1e3:.0f}ms"
            )
        if self.transcript is not None:
            lines.append(
                f"  transcript: {len(self.transcript.splitlines()):,} trace events"
            )
        if self.flight_recorder is not None:
            ring = self.flight_recorder
            lines.append(
                f"  flight recorder: {len(ring):,} of {ring.total:,} "
                f"events retained"
            )
        return "\n".join(lines)


def _normalize_transcript(lines: List[str]) -> str:
    """Renumber operation ids by first appearance.

    Operation ids come from a process-global counter, so raw ``seq``
    components depend on whatever ran earlier in the interpreter; the
    renumbering makes transcripts comparable across runs (same trick as
    the determinism goldens).
    """
    mapping: Dict[str, str] = {}

    def rename(match: "re.Match[str]") -> str:
        token = match.group(0)
        if token not in mapping:
            mapping[token] = f"p{match.group(1)}#op{len(mapping)}"
        return mapping[token]

    return "\n".join(_OPID.sub(rename, line) for line in lines)


def _phase_seed(seed: int, index: int) -> int:
    """A per-phase derived seed, stable and collision-free in practice."""
    return seed * 1_000_003 + 7919 * (index + 1)


def _supports_recovery(protocol: str) -> bool:
    from repro.protocol.registry import get_protocol_class

    return getattr(
        get_protocol_class(protocol, include_broken=True),
        "supports_recovery",
        True,
    )


def _effective_faults(phase: WorkloadPhase, supports_recovery: bool):
    """The phase's faults, adapted to the protocol's failure model.

    Crash-stop processes never recover (recovery raises), so against
    that baseline every crash-producing fault is skipped -- the
    scenario still runs its workload and network faults, it just
    cannot exercise the crash choreography the crash-recovery
    algorithms exist for.
    """
    if supports_recovery:
        return phase.faults
    return tuple(fault for fault in phase.faults if not fault.victims())


def _client_pids(scenario: Scenario, supports_recovery: bool) -> List[int]:
    """Replicas clients may be pinned to.

    Clients keep off any replica a fault kills for good
    (:meth:`~repro.scenarios.faults.FaultAction.permanent_victims`) --
    a client pinned there would stall against a process that never
    comes back.  If the faults doom every replica, clients stay on the
    full set and the run simply reports the unissued work.
    """
    everyone = list(range(scenario.num_processes))
    faults = [
        fault
        for phase in scenario.phases
        for fault in _effective_faults(phase, supports_recovery)
    ]
    doomed = victims_of(faults, scenario.num_processes, permanent_only=True)
    survivors = [pid for pid in everyone if pid not in doomed]
    return survivors or everyone


def _check(
    cluster: Cluster, criterion: str, phase: str, method: str
) -> CheckOutcome:
    """One façade verification pass over the recorded history.

    ``method`` is the scenario's checker (the white-box tag checker on
    the single register, per-key on the KV store); the façade's merged
    :class:`~repro.api.types.Verdict` maps 1:1 onto the outcome.
    """
    # repro: allow[DET002] CheckOutcome.wall_s is observational check
    # timing, documented as excluded from the fingerprint
    started = time.perf_counter()
    verdict = cluster.check(criterion=criterion, method=method)
    # repro: allow[DET002] same observational check timing as above
    wall = time.perf_counter() - started
    return CheckOutcome(
        phase=phase,
        ok=verdict.ok,
        criterion=verdict.consistency,
        method=verdict.method,
        operations=verdict.operations,
        violations=verdict.reason,
        wall_s=wall,
    )


def _drive_phases(
    result: ScenarioResult,
    scenario: Scenario,
    recovery: bool,
    arm_target,
    run_phase,
    check_fn,
    prepare_phase=None,
) -> None:
    """The shared phase loop of both store front-ends.

    Per phase: run the front-end's ``prepare_phase`` (the KV store
    preloads its key universe here -- *before* the faults, so a
    phase-relative fault window cannot elapse inside setup), arm the
    phase's (protocol-adapted) faults, let ``run_phase(phase,
    phase_ops, index)`` drive the workload and report a
    :class:`PhaseOutcome`, fold the counters, and apply the
    verification policy via ``check_fn(phase_name)``.
    """
    shares = scenario.split_ops(result.ops)
    for index, (phase, phase_ops) in enumerate(zip(scenario.phases, shares)):
        if prepare_phase is not None:
            prepare_phase(phase, index)
        for fault in _effective_faults(phase, recovery):
            fault.arm(arm_target)
        outcome = run_phase(phase, phase_ops, index)
        result.phases.append(outcome)
        result.completed += outcome.completed
        result.aborted += outcome.aborted
        result.unissued += outcome.unissued
        if scenario.verify == VERIFY_PER_PHASE:
            result.checks.append(check_fn(phase.name))
    if scenario.verify != VERIFY_PER_PHASE:
        result.checks.append(check_fn("final"))


def run_scenario(
    scenario: Scenario,
    protocol: Optional[str] = None,
    seed: Optional[int] = None,
    ops: Optional[int] = None,
    capture_trace: Optional[bool] = None,
    flight_recorder: Optional[bool] = None,
) -> ScenarioResult:
    """Execute ``scenario`` and return its result.

    ``protocol``, ``seed``, ``ops`` and ``capture_trace`` override the
    scenario's defaults; ``flight_recorder=False`` switches the
    always-on trace ring off (the default leaves the backend's choice
    alone); everything else is the spec's business.  Two calls with
    equal arguments produce equal :meth:`ScenarioResult.fingerprint`
    values -- the ring and metrics are passive observers.
    """
    protocol = protocol or scenario.default_protocol
    seed = scenario.default_seed if seed is None else seed
    ops = scenario.default_ops if ops is None else ops
    if ops < 1:
        raise ConfigurationError("ops must be >= 1")
    capture = scenario.capture_trace if capture_trace is None else capture_trace
    criterion = "transient" if protocol == "transient" else "persistent"

    # repro: allow[DET002] ScenarioResult.wall_s is observational wall
    # timing, documented as excluded from the fingerprint
    started = time.perf_counter()
    result = _run(
        scenario, protocol, seed, ops, capture, criterion, flight_recorder
    )
    # repro: allow[DET002] same observational wall timing as above
    result.wall_s = time.perf_counter() - started
    result.check_wall_s = sum(check.wall_s for check in result.checks)
    return result


# -- the one backend-agnostic driver -----------------------------------------


def _register_plans(
    phase: WorkloadPhase,
    phase_ops: int,
    pids: List[int],
    rng: random.Random,
) -> List[ClientPlan]:
    """Closed-loop plans distributing ``phase_ops`` over the clients."""
    clients = min(phase.clients or len(pids), len(pids))
    mix = OperationMix(read_fraction=phase.read_fraction)
    base, extra = divmod(phase_ops, clients)
    plans = []
    for i in range(clients):
        count = base + (1 if i < extra else 0)
        if count:
            plans.append(ClientPlan(pid=pids[i], kinds=mix.plan(count, rng)))
    return plans


def _run(
    scenario: Scenario,
    protocol: str,
    seed: int,
    ops: int,
    capture: bool,
    criterion: str,
    flight_recorder: Optional[bool] = None,
) -> ScenarioResult:
    """Drive ``scenario`` against the façade cluster its spec maps to.

    There is one driver for every store: the spec names the backend
    (:attr:`~repro.scenarios.spec.Scenario.backend`), the cluster
    declares its capabilities, and the only backend-sensitive choice
    left -- which closed-loop workload shape to run -- keys off the
    ``sharding`` capability, not the cluster's type.
    """
    options = dict(scenario.backend_options())
    if flight_recorder is not None:
        options["flight_recorder"] = flight_recorder
    cluster = open_cluster(
        backend=scenario.backend,
        protocol=protocol,
        num_processes=scenario.num_processes,
        seed=seed,
        capture_trace=capture,
        **options,
    )
    cluster.start()
    result = ScenarioResult(
        scenario=scenario.name,
        store=scenario.store,
        protocol=protocol,
        seed=seed,
        ops=ops,
    )
    recovery = _supports_recovery(protocol)
    pids = _client_pids(scenario, recovery)
    values = UniqueValues()
    sharded = SHARDING in cluster.capabilities

    def budget(phase_ops: int) -> dict:
        return dict(
            timeout=max(_TIMEOUT_FLOOR, phase_ops * _TIMEOUT_PER_OP),
            max_events=max(_EVENTS_FLOOR, phase_ops * _EVENTS_PER_OP),
        )

    def keys_for(phase: WorkloadPhase, index: int) -> ZipfianKeys:
        return ZipfianKeys(
            num_keys=phase.num_keys, s=phase.zipf_s, seed=_phase_seed(seed, index)
        )

    preloaded: set = set()

    def prepare_phase(phase: WorkloadPhase, index: int) -> None:
        # Preload the phase's key universe before its faults are armed:
        # provisioning 64 registers costs tens of virtual milliseconds,
        # which would otherwise swallow a phase-relative fault window.
        # Key names depend only on (num_keys, prefix), so a universe is
        # preloaded once even across many phases.
        keys = keys_for(phase, index)
        signature = frozenset(keys.keys)
        if signature - preloaded:
            cluster.preload(keys.keys, timeout=_TIMEOUT_FLOOR)
            preloaded.update(signature)

    def run_register_phase(
        phase: WorkloadPhase, phase_ops: int, index: int
    ) -> PhaseOutcome:
        rng = random.Random(_phase_seed(seed, index))
        plans = _register_plans(phase, phase_ops, pids, rng)
        phase_began = cluster.now
        report = WorkloadRunner(cluster, plans, values=values).run(
            **budget(phase_ops)
        )
        return PhaseOutcome(
            name=phase.name,
            attempted=phase_ops,
            completed=report.completed,
            aborted=report.aborted,
            unissued=report.unissued,
            sim_duration=cluster.now - phase_began,
        )

    def run_kv_phase(
        phase: WorkloadPhase, phase_ops: int, index: int
    ) -> PhaseOutcome:
        clients = phase.clients or 16
        # Distribute the phase's share exactly: the budget in the
        # result/BENCH accounting must match what was attempted.
        base, extra = divmod(phase_ops, clients)
        per_client = [base + (1 if i < extra else 0) for i in range(clients)]
        runner = KVWorkloadRunner(
            cluster,
            num_clients=clients,
            operations_per_client=per_client,
            read_fraction=phase.read_fraction,
            keys=keys_for(phase, index),
            seed=_phase_seed(seed, index),
            pids=pids,
            values=values,
        )
        report = runner.run(preload=False, **budget(phase_ops))
        return PhaseOutcome(
            name=phase.name,
            attempted=phase_ops,
            completed=report.completed,
            aborted=report.aborted,
            unissued=report.unissued,
            sim_duration=report.duration,
        )

    def check_fn(phase_name: str) -> CheckOutcome:
        return _check(cluster, criterion, phase_name, scenario.check_method)

    drive = run_kv_phase if sharded else run_register_phase

    def run_phase_metered(
        phase: WorkloadPhase, phase_ops: int, index: int
    ) -> PhaseOutcome:
        # Bracket the phase with registry snapshots: the diff is what
        # the phase itself cost.  Snapshotting only samples gauges and
        # copies counters -- no kernel events, no randomness.
        before = cluster.metrics()
        outcome = drive(phase, phase_ops, index)
        outcome.metrics = cluster.metrics().diff(before).as_dict()
        return outcome

    _drive_phases(
        result,
        scenario,
        recovery,
        cluster,
        run_phase_metered,
        check_fn,
        prepare_phase=prepare_phase if sharded else None,
    )
    _finalize(result, cluster, capture)
    return result


def _finalize(result: ScenarioResult, cluster: Cluster, capture: bool) -> None:
    """Collect run-wide counters (and the transcript, if captured)."""
    stats = cluster.stats()
    result.final_clock = stats.clock
    result.kernel_events = stats.kernel_events
    result.messages_sent = stats.messages_sent
    result.messages_dropped = stats.messages_dropped
    result.stores_completed = stats.stores_completed
    result.crashes = stats.crashes
    result.recoveries = stats.recoveries
    snapshot = cluster.metrics()
    result.metrics = snapshot.as_dict()
    result.metrics_snapshot = snapshot
    result.flight_recorder = getattr(cluster, "flight_recorder", None)
    sim = getattr(cluster, "sim", None)
    if sim is not None:
        result.recovery_times = {
            node.pid: list(node.recovery_times)
            for node in sim.nodes
            if node.recovery_times
        }
    if capture:
        result.transcript = _normalize_transcript(cluster.transcript() or [])
