"""The declarative scenario model: phases, verification policy, spec.

A :class:`Scenario` is data, not code: which store front-end to drive
(the single register or the sharded KV store), how many processes, a
sequence of :class:`WorkloadPhase` entries -- each a closed-loop
workload mix plus the faults armed when the phase opens -- and a
verification policy.  :func:`repro.scenarios.runner.run_scenario`
executes a spec against any protocol with any seed and operation
budget; the named library lives in :mod:`repro.scenarios.library`.

Phases carry **weights**, not absolute operation counts: the runner
splits the run's total operation budget (``--ops``) across phases
proportionally, so the same scenario scales from a CI smoke run to a
100k-operation soak without edits.  Fault times inside a phase are
virtual seconds relative to the phase opening, which keeps adversarial
timing meaningful at any budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.scenarios.faults import FaultAction

#: Verification policies.
VERIFY_PER_PHASE = "per-phase"  # incremental white-box check after each phase
VERIFY_FINAL = "final"  # one check once the run is over
VERIFY_POLICIES = (VERIFY_PER_PHASE, VERIFY_FINAL)

#: Store front-ends a scenario can drive.
STORE_REGISTER = "register"
STORE_KV = "kv"
STORES = (STORE_REGISTER, STORE_KV)


@dataclass(frozen=True)
class WorkloadPhase:
    """One closed-loop workload segment of a scenario.

    ``weight`` is this phase's share of the scenario's total operation
    budget.  ``clients`` defaults to one per process for the register
    store and 16 for the KV store.  ``faults`` are armed the moment the
    phase opens, with times relative to that instant.  The key-universe
    knobs (``num_keys``, ``zipf_s``) only apply to KV scenarios.
    """

    name: str
    weight: float = 1.0
    read_fraction: float = 0.5
    clients: Optional[int] = None
    num_keys: int = 64
    zipf_s: float = 0.99
    faults: Tuple[FaultAction, ...] = ()

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError("phase weight must be > 0")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read_fraction must be in [0, 1]")
        if self.clients is not None and self.clients < 1:
            raise ConfigurationError("clients must be >= 1")
        if self.num_keys < 1:
            raise ConfigurationError("num_keys must be >= 1")


@dataclass(frozen=True)
class Scenario:
    """A named, seed-reproducible fault/workload/verification program."""

    name: str
    description: str
    phases: Tuple[WorkloadPhase, ...]
    store: str = STORE_REGISTER
    num_processes: int = 5
    default_protocol: str = "persistent"
    default_ops: int = 1_000
    default_seed: int = 0
    verify: str = VERIFY_PER_PHASE
    capture_trace: bool = False
    #: KV-only configuration.
    num_shards: int = 8
    batch_window: float = 0.0
    #: Checkpointing: virtual seconds between periodic checkpoints
    #: (``None`` disables them) and whether recovery bills a scan of
    #: the un-compacted log (see ``docs/recovery.md``).
    checkpoint_interval: Optional[float] = None
    recovery_scan: bool = False

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError("a scenario needs at least one phase")
        if self.store not in STORES:
            raise ConfigurationError(f"unknown store {self.store!r}")
        if self.verify not in VERIFY_POLICIES:
            raise ConfigurationError(f"unknown verify policy {self.verify!r}")
        if self.num_processes < 1:
            raise ConfigurationError("num_processes must be >= 1")
        if self.default_ops < 1:
            raise ConfigurationError("default_ops must be >= 1")

    @property
    def backend(self) -> str:
        """The :func:`repro.api.open_cluster` backend this store maps to."""
        return "kv" if self.store == STORE_KV else "sim"

    def backend_options(self) -> dict:
        """Extra ``open_cluster`` options the store needs.

        The checkpoint knobs are emitted only when set, so scenarios
        that predate them build byte-identical clusters (and keep
        their golden fingerprints).
        """
        options: dict = {}
        if self.store == STORE_KV:
            options["num_shards"] = self.num_shards
            options["batch_window"] = self.batch_window
        if self.checkpoint_interval is not None:
            options["checkpoint_interval"] = self.checkpoint_interval
        if self.recovery_scan:
            options["recovery_scan"] = True
        return options

    @property
    def check_method(self) -> str:
        """The façade checker method the runner verifies with.

        Per-key on the KV store; the white-box tag checker on the
        single register (scenario budgets exceed the exhaustive cap,
        and incremental per-phase re-checks need the near-linear one).
        """
        return "per-key" if self.store == STORE_KV else "whitebox"

    def split_ops(self, total_ops: int) -> Tuple[int, ...]:
        """Split ``total_ops`` across phases proportionally to weight.

        Every phase gets at least one operation; the largest phase
        absorbs the rounding remainder so the sum is exact.
        """
        if total_ops < len(self.phases):
            raise ConfigurationError(
                f"scenario {self.name!r} needs >= {len(self.phases)} operations"
            )
        total_weight = sum(phase.weight for phase in self.phases)
        shares = [
            max(1, int(total_ops * phase.weight / total_weight))
            for phase in self.phases
        ]
        largest = max(range(len(shares)), key=lambda i: shares[i])
        shares[largest] += total_ops - sum(shares)
        if shares[largest] < 1:  # pathological weights; keep the sum exact
            raise ConfigurationError("operation budget too small for the weights")
        return tuple(shares)
