"""Declarative fault/workload scenarios: the simulator as an adversary.

This package turns ad-hoc failure testing into named, seed-reproducible
programs.  A :class:`~repro.scenarios.spec.Scenario` composes three
ingredients declaratively:

* **fault schedules** (:mod:`repro.scenarios.faults`) -- timed crashes
  and recoveries, rolling restart waves, partitions that heal,
  message-loss bursts, slow-link windows, trace-triggered crashes
  with the instant precision of the paper's lower-bound adversaries,
  and storage faults (torn checkpoints, corrupted records, lying
  fsync, slow disks -- see ``docs/recovery.md``);
* **workload phases** (:class:`~repro.scenarios.spec.WorkloadPhase`) --
  closed-loop read/write mixes on the single register or zipfian key
  traffic on the sharded KV store, with per-phase operation budgets
  split from one scalable total;
* **verification policy** -- per-phase incremental white-box checks
  (cheap, thanks to the append-only :class:`~repro.history.history
  .History` contract) or one final check.

Key entry points: :func:`~repro.scenarios.runner.run_scenario` executes
any spec and returns a :class:`~repro.scenarios.runner.ScenarioResult`
whose ``fingerprint()`` is identical across same-seed runs;
:data:`~repro.scenarios.library.SCENARIOS` is the named library
(steady-state through the 100k-operation soak) behind the
``repro soak`` CLI; :mod:`repro.scenarios.soak` writes the
``BENCH_soak.json`` trajectory point; and
:func:`~repro.scenarios.fleet.run_fleet` (``repro fleet``) shards a
seeds x scenarios x protocols sweep across a spawn-safe process pool
(:mod:`repro.scenarios.pool`), merging the runs into one
:class:`~repro.scenarios.fleet.FleetReport` whose per-run fingerprints
are asserted byte-identical to the serial path.

Quickstart::

    from repro.scenarios import get_scenario, run_scenario

    result = run_scenario(get_scenario("rolling-crash"), seed=7)
    assert result.verdict          # every incremental check passed
    print(result.summary())
"""

from repro.scenarios.faults import (
    CrashAt,
    CrashOnTrace,
    CorruptRecord,
    Downtime,
    FaultAction,
    LossBurst,
    LostStore,
    PartitionWindow,
    RollingRestarts,
    SlowDisk,
    SlowLinks,
    TornStore,
)
from repro.scenarios.fleet import (
    FleetParityError,
    FleetReport,
    FleetTimeoutError,
    build_fleet_specs,
    run_fleet,
    run_scaling,
)
from repro.scenarios.library import SCENARIOS, get_scenario, list_scenarios
from repro.scenarios.pool import RunSpec, execute_spec, resolve_spec
from repro.scenarios.runner import (
    CheckOutcome,
    PhaseOutcome,
    ScenarioResult,
    run_scenario,
)
from repro.scenarios.spec import Scenario, WorkloadPhase

__all__ = [
    "SCENARIOS",
    "CheckOutcome",
    "CorruptRecord",
    "CrashAt",
    "CrashOnTrace",
    "Downtime",
    "FaultAction",
    "FleetParityError",
    "FleetReport",
    "FleetTimeoutError",
    "LossBurst",
    "LostStore",
    "PartitionWindow",
    "PhaseOutcome",
    "RollingRestarts",
    "RunSpec",
    "Scenario",
    "ScenarioResult",
    "SlowDisk",
    "SlowLinks",
    "TornStore",
    "WorkloadPhase",
    "build_fleet_specs",
    "execute_spec",
    "get_scenario",
    "list_scenarios",
    "resolve_spec",
    "run_fleet",
    "run_scaling",
    "run_scenario",
]
