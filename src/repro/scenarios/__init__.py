"""Declarative fault/workload scenarios: the simulator as an adversary.

This package turns ad-hoc failure testing into named, seed-reproducible
programs.  A :class:`~repro.scenarios.spec.Scenario` composes three
ingredients declaratively:

* **fault schedules** (:mod:`repro.scenarios.faults`) -- timed crashes
  and recoveries, rolling restart waves, partitions that heal,
  message-loss bursts, slow-link windows, and trace-triggered crashes
  with the instant precision of the paper's lower-bound adversaries;
* **workload phases** (:class:`~repro.scenarios.spec.WorkloadPhase`) --
  closed-loop read/write mixes on the single register or zipfian key
  traffic on the sharded KV store, with per-phase operation budgets
  split from one scalable total;
* **verification policy** -- per-phase incremental white-box checks
  (cheap, thanks to the append-only :class:`~repro.history.history
  .History` contract) or one final check.

Key entry points: :func:`~repro.scenarios.runner.run_scenario` executes
any spec and returns a :class:`~repro.scenarios.runner.ScenarioResult`
whose ``fingerprint()`` is identical across same-seed runs;
:data:`~repro.scenarios.library.SCENARIOS` is the named library
(steady-state through the 100k-operation soak) behind the
``repro soak`` CLI; :mod:`repro.scenarios.soak` writes the
``BENCH_soak.json`` trajectory point.

Quickstart::

    from repro.scenarios import get_scenario, run_scenario

    result = run_scenario(get_scenario("rolling-crash"), seed=7)
    assert result.verdict          # every incremental check passed
    print(result.summary())
"""

from repro.scenarios.faults import (
    CrashAt,
    CrashOnTrace,
    Downtime,
    FaultAction,
    LossBurst,
    PartitionWindow,
    RollingRestarts,
    SlowLinks,
)
from repro.scenarios.library import SCENARIOS, get_scenario, list_scenarios
from repro.scenarios.runner import (
    CheckOutcome,
    PhaseOutcome,
    ScenarioResult,
    run_scenario,
)
from repro.scenarios.spec import Scenario, WorkloadPhase

__all__ = [
    "SCENARIOS",
    "CheckOutcome",
    "CrashAt",
    "CrashOnTrace",
    "Downtime",
    "FaultAction",
    "LossBurst",
    "PartitionWindow",
    "PhaseOutcome",
    "RollingRestarts",
    "Scenario",
    "ScenarioResult",
    "SlowLinks",
    "WorkloadPhase",
    "get_scenario",
    "list_scenarios",
    "run_scenario",
]
