"""The ``repro soak`` harness: run scenarios, record the trajectory.

Wraps :func:`repro.scenarios.runner.run_scenario` for the CLI: run one
named scenario (or, with ``--quick``, a budget-trimmed sweep of the
whole library) and write a ``BENCH_soak.json`` trajectory point next to
the engine/checker/KV ones -- per scenario: the verdict, operation
counts, simulated duration and throughput, wall-clock cost split into
run and verification, and the per-phase outcomes.  CI runs the quick
sweep on every push and uploads the JSON, so scenario health and
soak-scale cost are tracked over time like every other perf surface.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.bench import SCHEMA
from repro.scenarios.library import get_scenario, list_scenarios
from repro.scenarios.runner import ScenarioResult, run_scenario
from repro.scenarios.spec import STORE_KV, Scenario

#: Operation budget per scenario under ``--quick`` (CI smoke sizing).
QUICK_OPS = 150

SOAK_FILE = "BENCH_soak.json"


def quick_ops_for(scenario: Scenario) -> int:
    """The trimmed budget ``--quick`` runs ``scenario`` with."""
    return min(scenario.default_ops, max(QUICK_OPS, len(scenario.phases)))


def run_soak(
    name: str,
    protocol: Optional[str] = None,
    seed: Optional[int] = None,
    ops: Optional[int] = None,
    quick: bool = False,
) -> ScenarioResult:
    """Run one named scenario (``quick`` trims its budget)."""
    scenario = get_scenario(name)
    if quick and ops is None:
        ops = quick_ops_for(scenario)
    return run_scenario(scenario, protocol=protocol, seed=seed, ops=ops)


def run_soak_suite(
    protocol: Optional[str] = None,
    seed: Optional[int] = None,
    quick: bool = True,
    ops: Optional[int] = None,
    workers: Optional[int] = None,
) -> List[ScenarioResult]:
    """Run every library scenario.

    An explicit ``ops`` budget applies to every scenario and overrides
    ``quick``; otherwise ``quick`` trims each scenario to its CI smoke
    size and ``quick=False`` runs the full default budgets.

    ``workers`` > 1 shards the sweep across a process pool (results
    stay in library order and fingerprints stay byte-identical to this
    serial path -- the fleet driver asserts it); the default runs
    in-process exactly as before.
    """
    if workers is not None and workers > 1:
        from repro.scenarios.fleet import build_fleet_specs, run_fleet

        specs = build_fleet_specs(
            seeds=[seed],
            protocols=[protocol] if protocol is not None else None,
            ops=ops,
            quick=quick and ops is None,
        )
        return run_fleet(specs, workers=workers).results
    return [
        run_scenario(
            scenario,
            protocol=protocol,
            seed=seed,
            ops=(
                ops
                if ops is not None
                else quick_ops_for(scenario) if quick else None
            ),
        )
        for scenario in list_scenarios()
    ]


def soak_row(result: ScenarioResult) -> Dict[str, Any]:
    """One scenario's trajectory-point entry."""
    return {
        "scenario": result.scenario,
        "store": result.store,
        "protocol": result.protocol,
        "seed": result.seed,
        "ops": result.ops,
        "completed": result.completed,
        "aborted": result.aborted,
        "unissued": result.unissued,
        "verdict": result.verdict,
        "checks": [check.fingerprint() for check in result.checks],
        "sim_duration_s": result.final_clock,
        "sim_ops_per_sec": (
            result.completed / result.final_clock if result.final_clock else 0.0
        ),
        "kernel_events": result.kernel_events,
        "messages_sent": result.messages_sent,
        "crashes": result.crashes,
        "recoveries": result.recoveries,
        "wall_s": result.wall_s,
        "check_wall_s": result.check_wall_s,
        # Explicit wall-clock throughput, so readers of the JSON never
        # re-derive it (kept alongside the older ``wall_ops_per_sec``
        # spelling readers of repro-bench/2 files already parse).
        "ops_per_s": (
            result.completed / result.wall_s if result.wall_s else 0.0
        ),
        "wall_ops_per_sec": (
            result.completed / result.wall_s if result.wall_s else 0.0
        ),
        "phases": [phase.fingerprint() for phase in result.phases],
        "transcript_events": (
            len(result.transcript.splitlines())
            if result.transcript is not None
            else None
        ),
    }


def write_soak_file(
    results: Sequence[ScenarioResult],
    output_dir: str = ".",
    quick: bool = False,
    fleet: Optional[Dict[str, Any]] = None,
    scaling: Optional[Sequence[Dict[str, Any]]] = None,
) -> str:
    """Write the ``BENCH_soak.json`` trajectory point; return its path.

    ``fleet`` (a :meth:`~repro.scenarios.fleet.FleetReport.as_dict`
    payload) and ``scaling`` (the :func:`~repro.scenarios.fleet
    .run_scaling` rows) are recorded under the v3 schema's ``fleet``
    key; serial invocations omit the key entirely, so v2 readers keep
    working on everything they ever read.
    """
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    rows = [soak_row(result) for result in results]
    payload = {
        "schema": SCHEMA,
        "suite": "soak",
        "quick": quick,
        "python": platform.python_version(),
        "soak": rows,
        "totals": {
            "runs": len(rows),
            "ops": sum(row["ops"] for row in rows),
            "completed": sum(row["completed"] for row in rows),
            "wall_s": sum(row["wall_s"] for row in rows),
            "ops_per_s": (
                sum(row["completed"] for row in rows)
                / sum(row["wall_s"] for row in rows)
                if any(row["wall_s"] for row in rows)
                else 0.0
            ),
        },
    }
    if fleet is not None:
        payload["fleet"] = dict(fleet)
        if scaling is not None:
            payload["fleet"]["scaling"] = list(scaling)
    path = directory / SOAK_FILE
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return str(path)


def format_soak_results(results: Sequence[ScenarioResult]) -> str:
    """Render scenario outcomes as the table the CLI prints."""
    header = (
        f"{'scenario':<20} {'store':<8} {'protocol':<11} {'ops':>7}  "
        f"{'completed':>9}  {'aborted':>7}  {'wall':>7}  {'verify':>7}  verdict"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        lines.append(
            f"{result.scenario:<20} {result.store:<8} {result.protocol:<11} "
            f"{result.ops:>7}  {result.completed:>9}  {result.aborted:>7}  "
            f"{result.wall_s:>6.2f}s  {result.check_wall_s:>6.2f}s  "
            f"{'PASS' if result.verdict else 'FAIL'}"
        )
    return "\n".join(lines)


def scenario_notes(scenario: Scenario) -> str:
    """Capability notes for the ``--list`` table.

    Fleet sweeps cross scenarios with protocols; these notes say up
    front what each combination will actually exercise -- crash faults
    are dropped against protocols without recovery support (the
    crash-stop baseline), the KV store runs sharded, trace capture is
    heavyweight -- so a sweep can be planned from the listing alone.
    """
    notes = []
    crashy = any(
        fault.victims()
        for phase in scenario.phases
        for fault in phase.faults
    )
    if crashy:
        notes.append("crash faults dropped on crash-stop")
    if scenario.store == STORE_KV:
        notes.append(f"kv store ({scenario.num_shards} shards)")
    if scenario.capture_trace:
        notes.append("captures full trace")
    return "; ".join(notes) if notes else "runs on every protocol"


def format_scenario_list() -> str:
    """The ``repro soak --list`` table."""
    header = (
        f"{'scenario':<20} {'store':<8} {'phases':>6} {'default ops':>11} "
        f"{'quick ops':>9}  {'notes':<38}  description"
    )
    lines = [header, "-" * 132]
    for scenario in list_scenarios():
        description = " ".join(scenario.description.split())
        lines.append(
            f"{scenario.name:<20} {scenario.store:<8} "
            f"{len(scenario.phases):>6} {scenario.default_ops:>11} "
            f"{quick_ops_for(scenario):>9}  "
            f"{scenario_notes(scenario):<38}  {description}"
        )
    lines.append("")
    lines.append(
        "run one with: python -m repro soak <scenario> "
        "[--seed N] [--ops N] [--protocol P]"
    )
    lines.append(
        "sweep many with: python -m repro fleet --scenarios A,B "
        "--seeds 0..9 --workers N"
    )
    return "\n".join(lines)
