"""The multi-core scenario fleet: seeds x scenarios x protocols.

One seeded scenario run is a sealed universe, so a soak sweep is
embarrassingly parallel; this module turns that observation into the
``repro fleet`` driver.  :func:`build_fleet_specs` expands a sweep
(scenario names x seed list x optional protocol list) into concrete
:class:`~repro.scenarios.pool.RunSpec` values, :func:`run_fleet`
shards them across a ``spawn``-safe process pool, streams per-run
completions as they land, and folds everything into one
:class:`FleetReport`:

* per-run :class:`~repro.scenarios.runner.ScenarioResult` rows in
  stable spec order (completion order varies; the report must not);
* one merged :class:`~repro.obs.metrics.MetricsSnapshot` via the
  order-insensitive :func:`~repro.obs.metrics.merge_snapshots` fold,
  so fleet-wide latency percentiles come from real merged bucket
  counts, not an average of averages;
* aggregate wall-clock throughput (completed operations per second of
  *fleet* wall time -- the number a multi-core box is buying);
* the fleet verdict: every run's checks passed and no work was left
  unissued.

**Determinism is asserted, not assumed.**  Every ``run_fleet``
invocation re-executes at least one spec serially in the parent (a
budget-trimmed canary by default, every spec under ``parity="full"``)
and requires the pool worker's fingerprint to be byte-identical to the
serial one; any drift raises :class:`FleetParityError` instead of
silently reporting numbers from a universe nobody can reproduce.

:func:`run_scaling` repeats the same fleet at several worker counts
(``repro fleet --scaling 1,2,4,8``) and reports speedup and per-core
efficiency -- the scaling evidence ``BENCH_soak.json`` commits under
its ``fleet`` key.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.metrics import MetricsSnapshot, merge_snapshots
from repro.scenarios.library import list_scenarios
from repro.scenarios.pool import (
    RunSpec,
    execute_spec,
    fleet_pool,
    resolve_spec,
)
from repro.scenarios.runner import ScenarioResult

__all__ = [
    "FleetParityError",
    "FleetReport",
    "FleetTimeoutError",
    "PARITY_CANARY",
    "PARITY_FULL",
    "PARITY_MODES",
    "PARITY_OFF",
    "build_fleet_specs",
    "fingerprint_bytes",
    "parse_int_list",
    "run_fleet",
    "run_scaling",
]

#: Parity modes: how much of the fleet is re-executed serially to
#: prove pool results byte-identical to the serial path.
PARITY_CANARY = "canary"  # one budget-trimmed run (default; cheap)
PARITY_FULL = "full"  # every spec (tests; paranoid sweeps)
PARITY_OFF = "off"  # skip (scaling inner loops re-verify elsewhere)
PARITY_MODES = (PARITY_CANARY, PARITY_FULL, PARITY_OFF)

#: Progress callback: (finished_count, total, spec, result).
ProgressFn = Callable[[int, int, RunSpec, ScenarioResult], None]


class FleetParityError(AssertionError):
    """A pool worker's fingerprint diverged from the serial path."""


class FleetTimeoutError(RuntimeError):
    """The fleet missed its deadline (e.g. a deadlocked pool)."""


def fingerprint_bytes(result: ScenarioResult) -> bytes:
    """The canonical byte form of a fingerprint (what parity compares)."""
    return json.dumps(result.fingerprint(), sort_keys=True).encode()


def parse_int_list(text: str, what: str = "value") -> List[int]:
    """Parse ``"0..9"`` / ``"0,3,7"`` / ``"0..2,8"`` into a list.

    Ranges are inclusive on both ends.  Duplicates are kept (sweeping
    a seed twice is a legitimate, if unusual, request) so the spec
    count always matches what the user spelled out.
    """
    values: List[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if ".." in part:
            lo_text, _, hi_text = part.partition("..")
            try:
                lo, hi = int(lo_text), int(hi_text)
            except ValueError:
                raise ConfigurationError(
                    f"bad {what} range {part!r} (expected e.g. 0..9)"
                ) from None
            if hi < lo:
                raise ConfigurationError(
                    f"bad {what} range {part!r}: {hi} < {lo}"
                )
            values.extend(range(lo, hi + 1))
        else:
            try:
                values.append(int(part))
            except ValueError:
                raise ConfigurationError(
                    f"bad {what} {part!r} (expected an integer)"
                ) from None
    if not values:
        raise ConfigurationError(f"no {what}s in {text!r}")
    return values


def build_fleet_specs(
    scenarios: Optional[Sequence[str]] = None,
    seeds: Sequence[Optional[int]] = (None,),
    protocols: Optional[Sequence[str]] = None,
    ops: Optional[int] = None,
    quick: bool = False,
) -> List[RunSpec]:
    """Expand a sweep into concrete, resolved run specs.

    ``scenarios=None`` sweeps the whole library.  ``protocols=None``
    keeps each scenario's default protocol; an explicit list crosses
    every scenario with every protocol.  A ``None`` seed means the
    scenario's default seed.  Resolution happens here, in the parent,
    so bad names fail before any worker spawns.
    """
    names = (
        [scenario.name for scenario in list_scenarios()]
        if scenarios is None
        else list(scenarios)
    )
    protocol_choices: Sequence[Optional[str]] = (
        [None] if protocols is None else list(protocols)
    )
    specs = [
        resolve_spec(
            RunSpec(
                scenario=name,
                protocol=protocol,
                seed=seed,
                ops=ops,
                quick=quick,
            )
        )
        for name in names
        for protocol in protocol_choices
        for seed in seeds
    ]
    if not specs:
        raise ConfigurationError("the fleet sweep expanded to zero runs")
    return specs


@dataclass
class FleetReport:
    """Everything one fleet invocation produced, merged."""

    workers: int
    parity: str
    specs: List[RunSpec] = field(default_factory=list)
    results: List[ScenarioResult] = field(default_factory=list)
    #: Fleet wall seconds (dispatch to last completion, parity
    #: included) and the sum of per-run wall seconds -- what the same
    #: work costs the serial path.  Their ratio is the speedup the
    #: pool actually bought.
    wall_s: float = 0.0
    serial_wall_s: float = 0.0
    parity_checked: int = 0
    cpu_count: int = field(default_factory=lambda: os.cpu_count() or 1)
    #: The order-insensitive merge of every run's final snapshot.
    merged_metrics: Optional[MetricsSnapshot] = None

    @property
    def ops(self) -> int:
        return sum(spec.ops or 0 for spec in self.specs)

    @property
    def completed(self) -> int:
        return sum(result.completed for result in self.results)

    @property
    def aborted(self) -> int:
        return sum(result.aborted for result in self.results)

    @property
    def unissued(self) -> int:
        return sum(result.unissued for result in self.results)

    @property
    def verdict(self) -> bool:
        return bool(self.results) and all(r.verdict for r in self.results)

    @property
    def ops_per_s(self) -> float:
        """Aggregate completed operations per second of fleet wall time."""
        return self.completed / self.wall_s if self.wall_s else 0.0

    @property
    def speedup(self) -> float:
        return self.serial_wall_s / self.wall_s if self.wall_s else 0.0

    def worst_p99(self) -> Dict[str, float]:
        """Fleet-wide p99 per latency histogram, from merged buckets."""
        if self.merged_metrics is None:
            return {}
        out: Dict[str, float] = {}
        for name, hist in sorted(self.merged_metrics.histograms.items()):
            p99 = hist.quantile(99.0)
            if p99 is not None:
                out[name] = p99
        return out

    def as_dict(self) -> Dict[str, Any]:
        """The ``fleet`` payload committed to ``BENCH_soak.json``."""
        from repro.scenarios.soak import soak_row

        return {
            "workers": self.workers,
            "cpu_count": self.cpu_count,
            "parity": {"mode": self.parity, "checked": self.parity_checked},
            "runs": [soak_row(result) for result in self.results],
            "totals": {
                "runs": len(self.results),
                "ops": self.ops,
                "completed": self.completed,
                "aborted": self.aborted,
                "unissued": self.unissued,
                "wall_s": self.wall_s,
                "serial_wall_s": self.serial_wall_s,
                "ops_per_s": self.ops_per_s,
                "speedup": self.speedup,
            },
            "verdict": self.verdict,
            "worst_p99": self.worst_p99(),
            "merged_metrics": (
                self.merged_metrics.as_dict()
                if self.merged_metrics is not None
                else None
            ),
        }

    def summary(self) -> str:
        """The fleet footer the CLI prints under the per-run table."""
        lines = [
            f"fleet: {len(self.results)} runs on {self.workers} workers "
            f"({self.cpu_count} cores): "
            f"{'PASS' if self.verdict else 'FAIL'}",
            f"  operations: {self.completed:,} completed, "
            f"{self.aborted:,} aborted, {self.unissued:,} unissued "
            f"of {self.ops:,}",
            f"  wall {self.wall_s:.2f}s fleet vs {self.serial_wall_s:.2f}s "
            f"serial-sum -> speedup {self.speedup:.2f}x, "
            f"aggregate {self.ops_per_s:,.0f} ops/s",
            f"  parity: {self.parity} "
            f"({self.parity_checked} serial re-run"
            f"{'s' if self.parity_checked != 1 else ''} byte-identical)",
        ]
        worst = self.worst_p99()
        if worst:
            rendered = ", ".join(
                f"{name}={value * 1e6:,.0f}us"
                for name, value in worst.items()
                if name.endswith("latency")
            ) or ", ".join(
                f"{name}={value * 1e6:,.0f}us" for name, value in worst.items()
            )
            lines.append(f"  merged p99: {rendered}")
        return "\n".join(lines)


def _canary_spec(specs: Sequence[RunSpec]) -> RunSpec:
    """A budget-trimmed twin of the sweep's smallest run.

    Trimming keeps the default parity assertion cheap even when the
    fleet is 10 x 100k operations: the canary proves the worker
    environment (import path, RNG isolation, renumbering) reproduces
    the serial path without re-paying a full soak.
    """
    from repro.scenarios.library import get_scenario
    from repro.scenarios.soak import quick_ops_for

    smallest = min(specs, key=lambda spec: spec.ops or 0)
    scenario = get_scenario(smallest.scenario)
    return replace(
        smallest, ops=min(smallest.ops or 0, quick_ops_for(scenario))
    )


def _assert_parity(spec: RunSpec, pooled: ScenarioResult) -> None:
    """Serially re-run ``spec`` in this process; require equal bytes."""
    serial = fingerprint_bytes(execute_spec(spec))
    parallel = fingerprint_bytes(pooled)
    if serial != parallel:
        raise FleetParityError(
            f"pool run of {spec.label()!r} diverged from the serial path: "
            f"serial fingerprint {serial[:120]!r}... != "
            f"parallel {parallel[:120]!r}..."
        )


def run_fleet(
    specs: Sequence[RunSpec],
    workers: Optional[int] = None,
    parity: str = PARITY_CANARY,
    timeout: Optional[float] = None,
    on_result: Optional[ProgressFn] = None,
) -> FleetReport:
    """Execute ``specs`` across a process pool; merge into one report.

    ``workers`` defaults to the machine's core count.  ``timeout`` is
    a hard wall-clock deadline for the whole fleet: a deadlocked pool
    raises :class:`FleetTimeoutError` (after cancelling what it can)
    instead of hanging the caller -- CI depends on that.  ``on_result``
    streams ``(finished, total, spec, result)`` as completions land,
    in completion order; the report's rows stay in spec order.
    """
    if parity not in PARITY_MODES:
        raise ConfigurationError(
            f"unknown parity mode {parity!r} (expected one of {PARITY_MODES})"
        )
    specs = [resolve_spec(spec) for spec in specs]
    if not specs:
        raise ConfigurationError("run_fleet needs at least one spec")
    workers = workers if workers is not None else (os.cpu_count() or 1)
    report = FleetReport(workers=workers, parity=parity)
    report.specs = list(specs)
    canary = _canary_spec(specs) if parity == PARITY_CANARY else None

    # repro: allow[DET002] FleetReport.wall_s is observational wall
    # timing, outside every fingerprint the parity check compares
    started = time.perf_counter()
    # repro: allow[DET002] the pool deadline guards CI wall time; it
    # cancels runs, never alters a completed run's fingerprint
    deadline = None if timeout is None else time.monotonic() + timeout
    results: List[Optional[ScenarioResult]] = [None] * len(specs)
    with fleet_pool(workers) as pool:
        futures = {
            pool.submit(execute_spec, spec): index
            for index, spec in enumerate(specs)
        }
        canary_future = (
            pool.submit(execute_spec, canary) if canary is not None else None
        )
        if canary_future is not None:
            futures[canary_future] = -1
        pending = set(futures)
        finished = 0
        try:
            while pending:
                remaining = (
                    # repro: allow[DET002] CI deadline accounting
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise FleetTimeoutError(
                        f"fleet deadline ({timeout:.0f}s) exceeded with "
                        f"{len(pending)} of {len(futures)} runs outstanding"
                    )
                done, pending = wait(
                    pending, timeout=remaining, return_when=FIRST_COMPLETED
                )
                if not done:
                    raise FleetTimeoutError(
                        f"fleet deadline ({timeout:.0f}s) exceeded with "
                        f"{len(pending)} of {len(futures)} runs outstanding"
                    )
                for future in done:
                    index = futures[future]
                    try:
                        result = future.result()
                    except BrokenProcessPool as exc:
                        # The classic spawn trap: a caller script without
                        # a __main__ guard is re-executed inside every
                        # worker, which re-enters run_fleet and kills the
                        # pool.  Name the fix instead of surfacing the
                        # raw bootstrap traceback.
                        raise ConfigurationError(
                            "fleet worker pool broke during startup; if "
                            "run_fleet was called from a script's top "
                            "level, guard the call with "
                            "`if __name__ == '__main__':` (spawn workers "
                            "re-import the main module)"
                        ) from exc
                    if index < 0:
                        _assert_parity(canary, result)
                        report.parity_checked += 1
                        continue
                    results[index] = result
                    finished += 1
                    if on_result is not None:
                        on_result(finished, len(specs), specs[index], result)
        except BaseException:
            # repro: allow[DET003] cancellation is an order-free side
            # effect on an abandoned run; no fingerprint survives it
            for future in pending:
                future.cancel()
            raise
    if parity == PARITY_FULL:
        for spec, result in zip(specs, results):
            _assert_parity(spec, result)
            report.parity_checked += 1
    report.results = [result for result in results if result is not None]
    # repro: allow[DET002] FleetReport.wall_s is observational timing
    report.wall_s = time.perf_counter() - started
    report.serial_wall_s = sum(r.wall_s for r in report.results)
    snapshots = [
        r.metrics_snapshot
        for r in report.results
        if r.metrics_snapshot is not None
    ]
    if snapshots:
        report.merged_metrics = merge_snapshots(snapshots)
    return report


def run_scaling(
    specs: Sequence[RunSpec],
    worker_counts: Sequence[int],
    parity: str = PARITY_CANARY,
    timeout: Optional[float] = None,
    on_result: Optional[ProgressFn] = None,
) -> Tuple[List[FleetReport], List[Dict[str, Any]]]:
    """The same fleet at several worker counts; measure the scaling.

    Returns every per-count :class:`FleetReport` plus the compact
    scaling rows ``BENCH_soak.json`` commits: wall seconds, aggregate
    ops/s, speedup and per-core efficiency relative to the sweep's
    first (baseline) worker count.  Fingerprints must be identical
    across worker counts -- a scheduling-dependent result would make
    every scaling number meaningless -- so the sweep asserts that too.
    """
    if not worker_counts:
        raise ConfigurationError("run_scaling needs at least one worker count")
    reports: List[FleetReport] = []
    rows: List[Dict[str, Any]] = []
    baseline_prints: Optional[List[bytes]] = None
    for count in worker_counts:
        report = run_fleet(
            specs,
            workers=count,
            parity=parity,
            timeout=timeout,
            on_result=on_result,
        )
        prints = [fingerprint_bytes(result) for result in report.results]
        if baseline_prints is None:
            baseline_prints = prints
        elif prints != baseline_prints:
            raise FleetParityError(
                f"fingerprints at workers={count} differ from the "
                f"baseline sweep at workers={worker_counts[0]}"
            )
        reports.append(report)
    baseline = reports[0]
    for count, report in zip(worker_counts, reports):
        speedup_vs_baseline = (
            baseline.wall_s / report.wall_s if report.wall_s else 0.0
        )
        rows.append(
            {
                "workers": count,
                "wall_s": report.wall_s,
                "ops_per_s": report.ops_per_s,
                "speedup_vs_baseline": speedup_vs_baseline,
                "efficiency": speedup_vs_baseline / max(count, 1),
                "verdict": report.verdict,
            }
        )
    return reports, rows
