"""Spawn-safe process-pool plumbing for the scenario fleet.

Seeded scenario runs are fully deterministic, which makes a soak sweep
embarrassingly parallel: no two runs share state, so the only real
work is getting a run *into* a fresh interpreter safely and its result
back out.  This module owns exactly that boundary:

* :class:`RunSpec` -- a frozen, picklable description of one run
  (scenario **name**, protocol, seed, operation budget).  Workers
  re-hydrate through :func:`repro.scenarios.library.get_scenario` and
  :func:`repro.api.open_cluster`; cluster objects, kernels and sockets
  never cross the process boundary.
* :func:`execute_spec` -- the module-level worker entrypoint.  Being a
  plain top-level function makes it picklable under the ``spawn``
  start method (no closures, no lambdas), and it re-seeds the worker's
  process-global :mod:`random` state from the spec so every worker is
  deterministically isolated no matter which pool slot it lands in.
* :func:`fleet_pool` -- a ``ProcessPoolExecutor`` configured the one
  correct way: ``spawn`` start method (fork would duplicate the
  parent's kernel state and is unsafe under threads) and an
  initializer that re-installs this checkout's ``src`` directory on
  ``sys.path``, so workers import :mod:`repro` even when the parent
  was launched via ``PYTHONPATH`` tricks the child does not inherit.

The determinism contract carries over verbatim: a spec executed in a
pool worker yields a :meth:`~repro.scenarios.runner.ScenarioResult
.fingerprint` byte-identical to the same spec executed serially in the
parent -- the fleet driver (:mod:`repro.scenarios.fleet`) asserts that
on every invocation, not just in tests.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import random
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.scenarios.library import get_scenario
from repro.scenarios.runner import ScenarioResult, run_scenario

__all__ = [
    "RunSpec",
    "execute_spec",
    "fleet_pool",
    "resolve_spec",
]

#: Where this checkout's importable tree lives (``.../src``); shipped
#: to workers so they can import ``repro`` without inheriting
#: ``PYTHONPATH`` from the parent environment.
SRC_ROOT = str(Path(__file__).resolve().parents[2])


@dataclass(frozen=True)
class RunSpec:
    """One fleet run, as pure picklable data.

    ``None`` fields mean "the scenario's default"; :func:`resolve_spec`
    pins them so a spec that crosses the process boundary is always
    fully concrete (workers must never consult ambient state to fill
    gaps).  ``quick`` trims the budget to the CI smoke size exactly
    like ``repro soak --quick``.
    """

    scenario: str
    protocol: Optional[str] = None
    seed: Optional[int] = None
    ops: Optional[int] = None
    quick: bool = False
    capture_trace: Optional[bool] = None

    def label(self) -> str:
        """A short human-readable run id for progress lines."""
        parts = [self.scenario]
        if self.protocol is not None:
            parts.append(self.protocol)
        parts.append(f"seed={self.seed}" if self.seed is not None else "seed=default")
        if self.ops is not None:
            parts.append(f"ops={self.ops}")
        return " ".join(parts)

    def rng_seed(self) -> int:
        """A deterministic, spec-derived seed for the worker's RNG.

        Stable across interpreters and hash randomization (it hashes
        the canonical spec string with blake2b, not Python ``hash``),
        and distinct for distinct specs, so two workers never share a
        process-global random stream.
        """
        key = (
            f"{self.scenario}|{self.protocol}|{self.seed}|"
            f"{self.ops}|{self.capture_trace}"
        )
        digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
        return int.from_bytes(digest, "big")


def resolve_spec(spec: RunSpec) -> RunSpec:
    """Pin every defaulted field to its concrete library value.

    Raises :class:`~repro.common.errors.ConfigurationError` for
    unknown scenario names *in the parent*, before any process is
    spawned on a doomed spec.
    """
    scenario = get_scenario(spec.scenario)
    ops = spec.ops
    if ops is None:
        if spec.quick:
            from repro.scenarios.soak import quick_ops_for

            ops = quick_ops_for(scenario)
        else:
            ops = scenario.default_ops
    if ops < len(scenario.phases):
        raise ConfigurationError(
            f"spec {spec.label()!r} needs >= {len(scenario.phases)} operations"
        )
    return replace(
        spec,
        protocol=spec.protocol or scenario.default_protocol,
        seed=scenario.default_seed if spec.seed is None else spec.seed,
        ops=ops,
        quick=False,
    )


def execute_spec(spec: RunSpec) -> ScenarioResult:
    """Run one spec to completion; the pool's (and canary's) entrypoint.

    Deterministic in, deterministic out: the process-global
    :mod:`random` state is re-seeded from the spec (isolation against
    any library code that touches the shared RNG -- the scenario
    runner itself only uses per-phase private ``random.Random``
    instances), and the result is stripped of its flight-recorder ring
    before it is returned, because rings hold backend internals that
    have no business being pickled across the boundary.
    """
    spec = resolve_spec(spec)
    random.seed(spec.rng_seed())
    result = run_scenario(
        get_scenario(spec.scenario),
        protocol=spec.protocol,
        seed=spec.seed,
        ops=spec.ops,
        capture_trace=spec.capture_trace,
    )
    result.flight_recorder = None
    return result


def _worker_init(src_root: str) -> None:
    """Pool initializer: make this checkout importable in the worker.

    ``spawn`` ships the parent's ``sys.path`` for the import of the
    entrypoint itself, but re-installing ``src`` first keeps workers
    pinned to *this* checkout even if a different ``repro`` is
    installed site-wide or the parent's path entries were relative to
    a working directory the child does not share.
    """
    if src_root not in sys.path:
        sys.path.insert(0, src_root)


def fleet_pool(workers: int) -> ProcessPoolExecutor:
    """A ``spawn``-start process pool wired for scenario execution."""
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=multiprocessing.get_context("spawn"),
        initializer=_worker_init,
        initargs=(SRC_ROOT,),
    )
