"""The named scenario library and its registry.

Each entry composes the fault primitives of
:mod:`repro.scenarios.faults` with workload phases into one named,
seed-reproducible adversary.  The library covers the regimes the
crash-recovery model cares about -- steady state, rolling restarts, a
crash landed mid-write by a trace trigger, partitions that heal,
correlated crash/recovery storms, lossy and slow networks, zipfian
contention on the KV store, full-trace capture, and the 100k-operation
soak -- and is the registration point for every future scenario:
define it here and ``repro soak`` picks it up.

Budgets scale: ``run_scenario(..., ops=N)`` stretches or shrinks any
scenario, so the same specs serve CI smoke runs and overnight soaks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ConfigurationError
from repro.scenarios.faults import (
    CorruptRecord,
    CrashOnTrace,
    Downtime,
    LossBurst,
    LostStore,
    PartitionWindow,
    RollingRestarts,
    SlowDisk,
    SlowLinks,
    TornStore,
)
from repro.scenarios.spec import STORE_KV, Scenario, WorkloadPhase

__all__ = ["SCENARIOS", "get_scenario", "list_scenarios"]


def _build_library() -> Dict[str, Scenario]:
    scenarios = [
        Scenario(
            name="steady-state",
            description=(
                "No faults: a balanced phase, a read-heavy phase (90% "
                "reads) and a write-heavy phase (90% writes), each "
                "re-checked incrementally"
            ),
            default_ops=900,
            phases=(
                WorkloadPhase(name="balanced", read_fraction=0.5),
                WorkloadPhase(name="read-heavy", read_fraction=0.9),
                WorkloadPhase(name="write-heavy", read_fraction=0.1),
            ),
        ),
        Scenario(
            name="rolling-crash",
            description=(
                "A rolling restart wave: every process crashes and "
                "recovers in turn while the workload keeps running"
            ),
            default_ops=900,
            phases=(
                WorkloadPhase(name="warm", weight=1.0),
                WorkloadPhase(
                    name="wave",
                    weight=2.0,
                    faults=(
                        RollingRestarts(
                            start=2e-3, interval=4e-3, downtime=2e-3
                        ),
                    ),
                ),
                WorkloadPhase(name="drain", weight=1.0),
            ),
        ),
        Scenario(
            name="crash-during-write",
            description=(
                "A trace trigger crashes process 0 the instant its "
                "first stable-storage log begins -- mid-write, before "
                "the log completes -- then recovers it"
            ),
            default_ops=600,
            phases=(
                WorkloadPhase(
                    name="interrupted",
                    weight=1.0,
                    read_fraction=0.2,
                    faults=(
                        CrashOnTrace(
                            kind="store_begin",
                            pid=0,
                            source_pid=0,
                            recover_after=2e-3,
                        ),
                    ),
                ),
                WorkloadPhase(name="drain", weight=1.0),
            ),
        ),
        Scenario(
            name="partition-heal",
            description=(
                "Processes 3 and 4 are partitioned from the majority; "
                "their operations stall on the quorum until the "
                "partition heals, then complete"
            ),
            default_ops=600,
            phases=(
                WorkloadPhase(
                    name="partitioned",
                    weight=2.0,
                    faults=(
                        PartitionWindow(
                            group_a=(3, 4),
                            group_b=(0, 1, 2),
                            start=1e-3,
                            end=8e-3,
                        ),
                    ),
                ),
                WorkloadPhase(name="healed", weight=1.0),
            ),
        ),
        Scenario(
            name="recovery-storm",
            description=(
                "A correlated minority crash plus a message-loss burst "
                "over the recovery window -- recoveries fight loss for "
                "their majority"
            ),
            default_ops=900,
            phases=(
                WorkloadPhase(name="warm", weight=1.0),
                WorkloadPhase(
                    name="storm",
                    weight=2.0,
                    faults=(
                        Downtime(pid=3, start=1e-3, end=5e-3),
                        Downtime(pid=4, start=1.2e-3, end=5.5e-3),
                        LossBurst(start=4e-3, end=9e-3, probability=0.15, seed=11),
                    ),
                ),
                WorkloadPhase(name="drain", weight=1.0),
            ),
        ),
        Scenario(
            name="crash-mid-checkpoint",
            description=(
                "Periodic checkpoints under the torn-checkpoint "
                "adversary: process 1 crashes exactly between the "
                "tentative and permanent phases of a checkpoint, "
                "process 2 has its writing record corrupted and then "
                "restarts -- recovery must ignore the stray tentative "
                "snapshot and quarantine the corrupt record"
            ),
            default_ops=600,
            checkpoint_interval=1.5e-3,
            phases=(
                WorkloadPhase(
                    name="torn",
                    weight=2.0,
                    read_fraction=0.2,
                    faults=(
                        TornStore(pid=1, recover_after=2e-3),
                        CorruptRecord(pid=2, key="writing", time=2e-3),
                        Downtime(pid=2, start=3e-3, end=6e-3),
                    ),
                ),
                WorkloadPhase(name="drain", weight=1.0),
            ),
        ),
        Scenario(
            name="checkpointed-recovery-storm",
            description=(
                "The recovery-storm adversary with periodic "
                "checkpoints, recovery-scan billing, a slow disk and a "
                "lying fsync: recoveries replay the compacted "
                "snapshot-plus-suffix instead of the raw log, so "
                "recovery time stays bounded by the checkpoint "
                "interval, not the run length"
            ),
            default_ops=900,
            checkpoint_interval=1.5e-3,
            recovery_scan=True,
            phases=(
                WorkloadPhase(name="warm", weight=1.0),
                WorkloadPhase(
                    name="storm",
                    weight=2.0,
                    faults=(
                        Downtime(pid=3, start=1e-3, end=5e-3),
                        Downtime(pid=4, start=1.2e-3, end=5.5e-3),
                        LossBurst(start=4e-3, end=9e-3, probability=0.15, seed=11),
                        SlowDisk(pid=2, start=1e-3, end=4e-3, extra_latency=2e-4),
                        LostStore(pid=1, time=2e-3, count=2),
                    ),
                ),
                WorkloadPhase(name="drain", weight=1.0),
            ),
        ),
        Scenario(
            name="loss-burst",
            description=(
                "A 20% message-loss burst mid-run; retransmission "
                "carries every operation through (fair-lossy channels)"
            ),
            default_ops=600,
            phases=(
                WorkloadPhase(
                    name="lossy",
                    faults=(
                        LossBurst(start=1e-3, end=10e-3, probability=0.2, seed=5),
                    ),
                ),
                WorkloadPhase(name="clear", weight=0.5),
            ),
        ),
        Scenario(
            name="slow-links",
            description=(
                "Every link gains +500us of delay for a window: "
                "round-trips stretch, nothing is lost, latency spikes"
            ),
            default_ops=600,
            phases=(
                WorkloadPhase(
                    name="degraded",
                    faults=(
                        SlowLinks(start=1e-3, end=10e-3, extra_delay=5e-4),
                    ),
                ),
                WorkloadPhase(name="recovered", weight=0.5),
            ),
        ),
        Scenario(
            name="zipfian-contention",
            description=(
                "16 closed-loop clients hammer 8 keys with a steep "
                "zipfian (s=1.2) on the sharded KV store; every key's "
                "projection is checked"
            ),
            store=STORE_KV,
            default_ops=640,
            num_shards=4,
            batch_window=2e-5,
            phases=(
                WorkloadPhase(
                    name="contention",
                    clients=16,
                    num_keys=8,
                    zipf_s=1.2,
                ),
            ),
        ),
        Scenario(
            name="trace-capture",
            description=(
                "Steady run with full trace capture: the result carries "
                "the normalized event transcript (soak-scale capture is "
                "the point -- budget-bound, seed-reproducible)"
            ),
            default_ops=400,
            capture_trace=True,
            phases=(
                WorkloadPhase(name="captured-a"),
                WorkloadPhase(name="captured-b"),
            ),
        ),
        Scenario(
            name="soak-100k",
            description=(
                "The 100k-operation soak: five 20k phases, each "
                "followed by an incremental white-box check of the "
                "whole history so far"
            ),
            default_ops=100_000,
            default_seed=7,
            phases=tuple(
                WorkloadPhase(name=f"soak-{i + 1}") for i in range(5)
            ),
        ),
        Scenario(
            name="kv-soak-100k",
            description=(
                "The KV-store soak: 100k operations from 16 zipfian "
                "closed-loop clients over 8 shard pipelines with "
                "batching, five phases, every key's projection "
                "re-checked after each"
            ),
            store=STORE_KV,
            default_ops=100_000,
            default_seed=7,
            num_shards=8,
            batch_window=2e-5,
            phases=tuple(
                WorkloadPhase(
                    name=f"kv-soak-{i + 1}",
                    clients=16,
                    num_keys=128,
                    read_fraction=0.85,
                )
                for i in range(5)
            ),
        ),
    ]
    return {scenario.name: scenario for scenario in scenarios}


#: The named scenario registry, keyed by scenario name.
SCENARIOS: Dict[str, Scenario] = _build_library()


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name; raises on unknown names."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ConfigurationError(
            f"unknown scenario {name!r} (known: {known})"
        ) from None


def list_scenarios() -> List[Scenario]:
    """Every registered scenario, sorted by name."""
    return [SCENARIOS[name] for name in sorted(SCENARIOS)]
