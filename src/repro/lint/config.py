"""Per-rule scopes, allowlists and pinned manifests for the linter.

Everything here is *policy*: which modules legitimately own a private
RNG, which are allowed to read the wall clock, which are in the
fingerprint's blast radius, and the pinned trace-kind manifest that
makes ring encodings append-only.  The rule implementations in
:mod:`repro.lint.rules` stay policy-free and read their scope from a
:class:`LintConfig`, so tests (and fixtures) can lint snippets under
any policy they like.

All paths are repo-relative POSIX strings (``src/repro/...``); fixture
files impersonate a policy path with a ``# repro-lint: pretend`` line
(see :mod:`repro.lint.suppressions`).

**PINNED_TRACE_KINDS is the append-only manifest** behind rule TRC001:
the flight-recorder ring encodes kinds positionally, so
``repro.sim.tracing.ALL_KINDS`` must keep this exact prefix forever.
Adding a trace kind means appending it to ``ALL_KINDS`` *and* here --
the second append is the explicit acknowledgment that old exported
rings stay decodable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import FrozenSet, Mapping, Tuple

#: The repository root (``config.py`` lives at src/repro/lint/).
REPO_ROOT = Path(__file__).resolve().parents[3]

#: The append-only prefix of ``repro.sim.tracing.ALL_KINDS`` (TRC001).
#: PR 8 appended the three ckpt kinds by hand-discipline; from here on
#: the linter enforces it.
PINNED_TRACE_KINDS: Tuple[str, ...] = (
    "send",
    "deliver",
    "drop",
    "duplicate",
    "store_begin",
    "store_end",
    "invoke",
    "reply",
    "crash",
    "recover",
    "recovery_done",
    "timer",
    "ckpt_begin",
    "ckpt_tentative",
    "ckpt_commit",
)

#: Façade fault verb -> capability flag that must gate it (API001).
#: ``crash``/``recover`` need crash injection; ``partition``/``heal``
#: ride on the simulated network (docs/api.md: "exactly where
#: virtual_time does"); the storage verbs need ``storage_faults``.
FAULT_VERB_CAPABILITIES: Mapping[str, str] = {
    "crash": "crash_injection",
    "recover": "crash_injection",
    "partition": "virtual_time",
    "heal": "virtual_time",
    "corrupt_record": "storage_faults",
    "lose_stores": "storage_faults",
    "slow_storage": "storage_faults",
}

#: Capability constant names (repro.api.types) -> their string values,
#: so API001 can resolve ``frozenset({VIRTUAL_TIME, ...})`` statically.
CAPABILITY_NAMES: Mapping[str, str] = {
    "VIRTUAL_TIME": "virtual_time",
    "SHARDING": "sharding",
    "CRASH_INJECTION": "crash_injection",
    "TRACE": "trace",
    "STORAGE_FAULTS": "storage_faults",
}


def _paths(*relpaths: str) -> FrozenSet[str]:
    return frozenset(relpaths)


@dataclass(frozen=True)
class LintConfig:
    """One linting policy: scopes and allowlists, as pure data."""

    #: Directory trees ``lint_tree`` walks, repo-relative.
    roots: Tuple[str, ...] = ("src/repro",)

    #: DET001 -- modules that own private RNGs / seed derivation and
    #: may therefore touch module-level :mod:`random` state (the
    #: fleet's worker reseed; fault primitives' seeded generators).
    #: ``os.urandom`` / ``uuid.uuid4`` / ``SystemRandom`` are never
    #: seedable and stay flagged even here.
    rng_owner_modules: FrozenSet[str] = _paths(
        "src/repro/scenarios/faults.py",
        "src/repro/scenarios/pool.py",
    )

    #: DET002 -- module prefixes allowed to read the wall clock: the
    #: live runtime (real sockets, real time), its façade adapter, and
    #: the bench harnesses whose whole job is wall-clock measurement.
    wall_clock_allowed_prefixes: Tuple[str, ...] = (
        "src/repro/runtime/",
        "src/repro/api/live.py",
        "src/repro/experiments/",
    )

    #: DET003 -- modules reachable from ``fingerprint()`` / transcript
    #: emission, where iteration order leaks into the determinism
    #: contract's byte-identical payloads.
    fingerprint_scope: FrozenSet[str] = _paths(
        "src/repro/scenarios/runner.py",
        "src/repro/scenarios/spec.py",
        "src/repro/scenarios/library.py",
        "src/repro/scenarios/soak.py",
        "src/repro/scenarios/fleet.py",
        "src/repro/sim/tracing.py",
        "src/repro/obs/ring.py",
        "src/repro/history/history.py",
        "src/repro/history/partition.py",
    )

    #: TRC001 -- the module that owns ``ALL_KINDS``.
    trace_kinds_module: str = "src/repro/sim/tracing.py"

    #: TRC001 -- the append-only manifest (see module docstring).
    pinned_trace_kinds: Tuple[str, ...] = PINNED_TRACE_KINDS

    #: API001 -- where façade backends live.
    api_prefix: str = "src/repro/api/"

    #: API001 -- fault verb -> required capability string.
    fault_verb_capabilities: Mapping[str, str] = field(
        default_factory=lambda: dict(FAULT_VERB_CAPABILITIES)
    )

    #: API001 -- capability constant name -> string value.
    capability_names: Mapping[str, str] = field(
        default_factory=lambda: dict(CAPABILITY_NAMES)
    )

    #: POOL001 -- modules whose dataclasses cross the spawn-pool
    #: boundary (must stay frozen and picklable).
    pool_modules: FrozenSet[str] = _paths(
        "src/repro/scenarios/pool.py",
        "src/repro/scenarios/faults.py",
    )

    def is_rng_owner(self, path: str) -> bool:
        return path in self.rng_owner_modules

    def allows_wall_clock(self, path: str) -> bool:
        return any(
            path.startswith(prefix) or path == prefix.rstrip("/")
            for prefix in self.wall_clock_allowed_prefixes
        )

    def in_fingerprint_scope(self, path: str) -> bool:
        return path in self.fingerprint_scope

    def is_api_module(self, path: str) -> bool:
        return path.startswith(self.api_prefix)

    def is_pool_module(self, path: str) -> bool:
        return path in self.pool_modules


#: The repository's own policy, used by ``repro lint`` and the tests.
DEFAULT_CONFIG = LintConfig()
