"""The linter's output vocabulary: :class:`Finding`.

A finding is one rule violation at one source location.  Findings are
plain frozen data so the engine can sort, deduplicate and serialize
them without caring which rule produced them; ``as_dict`` is the JSON
shape ``repro lint --format json`` emits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is repo-relative (``src/repro/...``) so reports are
    stable across checkouts; ``line`` is 1-based like every compiler's.
    """

    rule: str
    path: str
    line: int
    message: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)
