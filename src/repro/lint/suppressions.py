"""Inline suppression comments: ``# repro: allow[RULE] reason``.

A finding is suppressed by an allow comment naming the rule id and a
non-empty reason, on the flagged line itself or anywhere in the
contiguous comment block directly above it::

    # repro: allow[DET002] wall_s is observational timing, reported
    # outside the fingerprint
    started = time.perf_counter()

Several rules may share one comment (``allow[DET002,DET003]``).  The
discipline is enforced by the engine, not convention:

* an allow **without a reason** is itself a finding (``LINT001``) --
  suppressions must say *why* the contract does not apply;
* an allow whose rule **no longer fires** on that line is stale and is
  reported by ``repro lint --check-stale`` (``LINT002``), so dead
  annotations cannot accumulate and quietly blanket future
  regressions.

This module only parses; the pairing of allows against raw findings
lives in :mod:`repro.lint.engine`.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

#: The allow directive: one or more comma-separated rule ids in the
#: brackets, the reason as trailing free text.
_ALLOW = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)\]"
    r"(?P<reason>[^#]*)"
)

#: Module-level marker declaring a file hot-path (see rule HOT001).
HOT_PATH_MARKER = re.compile(r"^#\s*repro:\s*hot-path\s*$")

#: Fixture-only directive: lint this file as if it lived at the given
#: repo-relative path (so tests/data/lint_fixtures/ snippets can
#: exercise module-scoped rules without touching the real modules).
PRETEND = re.compile(r"#\s*repro-lint:\s*pretend\s+(?P<path>\S+)")


def iter_comments(lines: Sequence[str]) -> Iterator[Tuple[int, str]]:
    """``(1-based line, comment text)`` for every *real* comment.

    Tokenizes instead of regexing raw lines, so directive-shaped text
    inside docstrings or string literals (this module's own examples,
    say) is never mistaken for a live directive.  Tokenization errors
    (possible on fixture snippets) end the scan at the error point.
    """
    reader = io.StringIO("\n".join(lines) + "\n").readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


@dataclass(frozen=True)
class Allow:
    """One parsed allow comment, for one rule id."""

    rule: str
    line: int
    reason: str

    @property
    def has_reason(self) -> bool:
        return bool(self.reason)


def parse_allows(lines: Sequence[str]) -> List[Allow]:
    """Every allow in ``lines`` (1-based line numbers), one per rule id."""
    allows: List[Allow] = []
    for lineno, text in iter_comments(lines):
        match = _ALLOW.search(text)
        if match is None:
            continue
        reason = match.group("reason").strip()
        for rule in re.split(r"\s*,\s*", match.group("rules")):
            allows.append(Allow(rule=rule, line=lineno, reason=reason))
    return allows


def allows_by_line(allows: Sequence[Allow]) -> Dict[Tuple[int, str], Allow]:
    """Index allows as ``(line, rule) -> Allow`` for O(1) pairing."""
    return {(allow.line, allow.rule): allow for allow in allows}


def is_hot_path(lines: Sequence[str]) -> bool:
    """Whether the module carries the ``# repro: hot-path`` marker."""
    return any(
        HOT_PATH_MARKER.match(text) for _, text in iter_comments(lines)
    )


def pretend_path(lines: Sequence[str]) -> str:
    """The fixture's declared pretend path, or ``""`` when absent."""
    for _, text in iter_comments(lines):
        match = PRETEND.search(text)
        if match is not None:
            return match.group("path")
    return ""
