"""The lint engine: parse once, dispatch rules, apply suppressions.

One :func:`lint_paths` call is one lint run: every file is parsed into
a single AST shared by all applicable rules, raw findings are paired
against inline ``# repro: allow[RULE] reason`` comments (same line, or
anywhere in the contiguous comment block directly above the flagged
line, so long reasons can wrap across comment lines), and the
suppression hygiene rules are produced here:

* ``LINT001`` -- an allow without a reason, or naming an unknown rule
  (reasonless allows do **not** suppress; the original finding stays);
* ``LINT002`` -- an allow whose rule did not fire on that line (stale),
  reported only under ``check_stale=True`` so the default run stays
  quiet while a fix is in flight.

:func:`lint_tree` walks the configured roots (``src/repro``) -- that
is what ``repro lint`` and the tier-1 cleanliness test run.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint.config import DEFAULT_CONFIG, REPO_ROOT, LintConfig
from repro.lint.findings import Finding
from repro.lint.rules import RULES, all_rule_ids
from repro.lint.rules.base import ModuleUnderLint
from repro.lint.suppressions import allows_by_line, parse_allows, pretend_path


class LintError(Exception):
    """A file could not be linted at all (unreadable / unparsable)."""


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressions_used: int = 0
    rules_run: List[str] = field(default_factory=list)
    check_stale: bool = False

    @property
    def clean(self) -> bool:
        return not self.findings

    def format_text(self) -> str:
        lines = [str(finding) for finding in self.findings]
        verdict = "clean" if self.clean else f"{len(self.findings)} finding(s)"
        lines.append(
            f"repro lint: {verdict} -- {self.files_checked} files, "
            f"{len(self.rules_run)} rules, "
            f"{self.suppressions_used} suppression(s) honored"
            + (" [stale check on]" if self.check_stale else "")
        )
        return "\n".join(lines)

    def format_json(self) -> str:
        return json.dumps(
            {
                "clean": self.clean,
                "files_checked": self.files_checked,
                "rules_run": self.rules_run,
                "suppressions_used": self.suppressions_used,
                "check_stale": self.check_stale,
                "findings": [finding.as_dict() for finding in self.findings],
            },
            indent=2,
        )


def _select_rules(rule_ids: Optional[Sequence[str]]) -> List[str]:
    if rule_ids is None:
        return all_rule_ids()
    selected = []
    for rule_id in rule_ids:
        if rule_id not in RULES:
            raise LintError(
                f"unknown lint rule {rule_id!r} (known: "
                f"{', '.join(all_rule_ids())})"
            )
        selected.append(rule_id)
    return selected


def _relpath(path: Path) -> str:
    try:
        return path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(
    path: Path,
    config: LintConfig = DEFAULT_CONFIG,
    rule_ids: Optional[Sequence[str]] = None,
    check_stale: bool = False,
) -> List[Finding]:
    """Lint one file; returns its findings (already suppression-paired)."""
    findings, _ = _lint_file(path, config, _select_rules(rule_ids), check_stale)
    return findings


def _lint_file(
    path: Path,
    config: LintConfig,
    selected: Sequence[str],
    check_stale: bool,
):
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    return _lint_source(text, _relpath(Path(path)), config, selected, check_stale)


def _find_allow(by_line, lines, line, rule):
    """The allow covering ``(line, rule)``, or ``None``.

    Checks the flagged line itself, then walks upward through the
    contiguous block of comment-only lines directly above it, so an
    allow whose reason wraps across several comment lines still pairs.
    """
    allow = by_line.get((line, rule))
    if allow is not None:
        return allow
    probe = line - 1
    while probe >= 1 and lines[probe - 1].lstrip().startswith("#"):
        allow = by_line.get((probe, rule))
        if allow is not None:
            return allow
        probe -= 1
    return None


def _lint_source(
    text: str,
    real_path: str,
    config: LintConfig,
    selected: Sequence[str],
    check_stale: bool,
) -> List[Finding]:
    lines = text.splitlines()
    effective = pretend_path(lines) or real_path
    try:
        tree = ast.parse(text, filename=real_path)
    except SyntaxError as exc:
        raise LintError(f"{real_path}:{exc.lineno}: syntax error: {exc.msg}")
    module = ModuleUnderLint(path=effective, tree=tree, lines=lines)

    raw: List[Finding] = []
    for rule_id in selected:
        rule = RULES[rule_id]
        if not rule.applies(effective, config):
            continue
        for finding in rule.check(module, config):
            # Report findings at the file's *real* path so they are
            # clickable, even when a fixture pretends elsewhere.
            raw.append(
                Finding(finding.rule, real_path, finding.line, finding.message)
            )

    allows = parse_allows(lines)
    by_line = allows_by_line(allows)
    used = set()
    findings: List[Finding] = []
    for finding in raw:
        allow = _find_allow(by_line, lines, finding.line, finding.rule)
        if allow is not None and allow.has_reason:
            used.add((allow.line, allow.rule))
            continue
        findings.append(finding)

    lint001 = "LINT001" in selected
    lint002 = "LINT002" in selected and check_stale
    for allow in allows:
        if allow.rule not in RULES:
            if lint001:
                findings.append(
                    Finding(
                        "LINT001",
                        real_path,
                        allow.line,
                        f"allow[{allow.rule}] names an unknown rule "
                        f"(known: {', '.join(all_rule_ids())})",
                    )
                )
            continue
        if not allow.has_reason:
            if lint001:
                findings.append(
                    Finding(
                        "LINT001",
                        real_path,
                        allow.line,
                        f"allow[{allow.rule}] has no reason; a "
                        "suppression must say why the contract does "
                        "not apply here",
                    )
                )
            continue
        if (
            lint002
            and allow.rule in selected
            and (allow.line, allow.rule) not in used
        ):
            findings.append(
                Finding(
                    "LINT002",
                    real_path,
                    allow.line,
                    f"stale suppression: allow[{allow.rule}] but the "
                    "rule no longer fires on this line; delete the "
                    "annotation",
                )
            )
    findings.sort(key=Finding.sort_key)
    return findings, len(used)


def lint_paths(
    paths: Iterable[Path],
    config: LintConfig = DEFAULT_CONFIG,
    rule_ids: Optional[Sequence[str]] = None,
    check_stale: bool = False,
) -> LintReport:
    """Lint an explicit set of files into one report."""
    selected = _select_rules(rule_ids)
    report = LintReport(rules_run=list(selected), check_stale=check_stale)
    for path in sorted(Path(p) for p in paths):
        findings, used = _lint_file(path, config, selected, check_stale)
        report.findings.extend(findings)
        report.files_checked += 1
        report.suppressions_used += used
    report.findings.sort(key=Finding.sort_key)
    return report


def lint_tree(
    config: LintConfig = DEFAULT_CONFIG,
    rule_ids: Optional[Sequence[str]] = None,
    check_stale: bool = False,
) -> LintReport:
    """Lint every ``*.py`` under the configured roots."""
    paths: List[Path] = []
    for root in config.roots:
        paths.extend(sorted((REPO_ROOT / root).rglob("*.py")))
    return lint_paths(
        paths, config=config, rule_ids=rule_ids, check_stale=check_stale
    )
