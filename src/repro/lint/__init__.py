"""Static determinism & contract linter for the repro tree.

The golden transcripts and parity canaries *sample* the repo's core
contract -- same seed => byte-identical transcript -- on the seeds a
run happens to execute.  This package *proves the absence* of whole
bug classes across all seeds with an AST pass over the source:

* :mod:`repro.lint.rules` -- one visitor class per rule (unseeded
  randomness, wall-clock reads, unordered-set iteration, trace-kind
  encoding stability, hot-path guard discipline, capability/verb
  parity, pool picklability);
* :mod:`repro.lint.engine` -- parses each file once, dispatches the
  rules, applies inline ``# repro: allow[RULE] reason`` suppressions,
  and reports missing-reason and stale suppressions as findings of
  their own;
* :mod:`repro.lint.config` -- the per-rule scopes and allowlists that
  encode which modules legitimately own a private RNG or measure wall
  time.

Surface: ``repro lint [--format text|json] [--rule ID] [--check-stale]``
(see :mod:`repro.cli`), the tier-1 suite (``tests/unit/test_lint.py``
asserts the tree is clean *and* every rule fires on its fixtures), and
the CI ``lint`` job.  The contract itself is documented in
``docs/determinism.md``.
"""

from __future__ import annotations

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import LintError, LintReport, lint_file, lint_paths, lint_tree
from repro.lint.findings import Finding
from repro.lint.rules import RULES, all_rule_ids, get_rule

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintError",
    "LintReport",
    "lint_file",
    "RULES",
    "all_rule_ids",
    "get_rule",
    "lint_paths",
    "lint_tree",
]
