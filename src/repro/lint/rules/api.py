"""API001: fault verbs must be declared in the backend's capabilities.

The façade's promise (docs/api.md) is that backends differ by
*declaration*, not special-casing: a verb outside a backend's
``capabilities`` frozenset raises ``CapabilityError``.  The inverse
must hold too -- a backend that *implements* a fault verb without
declaring the gating capability silently widens its contract, and
callers who branch on ``cluster.capabilities`` (the documented
discipline) would never find the verb.

The rule scans ``src/repro/api/`` for classes that look like backend
adapters (a ``backend = "..."`` class attribute), resolves their
``capabilities = frozenset({...})`` literal statically (capability
constant names or string literals), and requires the mapped capability
(:data:`repro.lint.config.FAULT_VERB_CAPABILITIES`) for every fault
verb the class overrides.  Methods whose body immediately ``raise``
(the abstract base's stubs, ``_unsupported`` re-raises) are not
implementations and are skipped.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.rules.base import ModuleUnderLint, Rule, first_real_statement


class API001(Rule):
    """Implemented fault verbs must be capability-declared."""

    id = "API001"
    title = "fault verb outside the declared capabilities"

    def applies(self, path: str, config: LintConfig) -> bool:
        return config.is_api_module(path)

    def check(
        self, module: ModuleUnderLint, config: LintConfig
    ) -> Iterator[Finding]:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(node, module.path, config)

    def _check_class(
        self, cls: ast.ClassDef, path: str, config: LintConfig
    ) -> Iterator[Finding]:
        backend = _class_attr_str(cls, "backend")
        if backend is None:
            return
        declared = _declared_capabilities(cls, config)
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            required = config.fault_verb_capabilities.get(stmt.name)
            if required is None:
                continue
            if _is_stub(stmt):
                continue
            if required not in declared:
                yield self.finding(
                    path,
                    stmt,
                    f"backend {backend!r} implements fault verb "
                    f"{stmt.name}() but does not declare the "
                    f"{required!r} capability; add it to the class's "
                    "capabilities frozenset (callers branch on "
                    "capabilities, never on backend type)",
                )


def _class_attr_str(cls: ast.ClassDef, name: str) -> Optional[str]:
    """The class-level ``name = "literal"`` value, if present."""
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            targets = [
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            ]
            if name in targets and isinstance(stmt.value, ast.Constant):
                value = stmt.value.value
                return value if isinstance(value, str) else None
    return None


def _declared_capabilities(cls: ast.ClassDef, config: LintConfig) -> Set[str]:
    """The class's ``capabilities`` frozenset, resolved to strings."""
    for stmt in cls.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "capabilities"
            for t in stmt.targets
        ):
            continue
        resolved: Set[str] = set()
        for node in ast.walk(stmt.value):
            if isinstance(node, ast.Name):
                value = config.capability_names.get(node.id)
                if value is not None:
                    resolved.add(value)
            elif isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                resolved.add(node.value)
        return resolved
    return set()


def _is_stub(fn) -> bool:
    """Whether the method body is just a raise (an ungated stub)."""
    stmt = first_real_statement(fn.body)
    if stmt is None:
        return True
    if isinstance(stmt, ast.Raise):
        return True
    return False
