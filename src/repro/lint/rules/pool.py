"""POOL001: fleet dataclasses stay frozen and picklable.

The PR 7 process pool re-hydrates :class:`~repro.scenarios.pool.RunSpec`
and the fault primitives in ``spawn`` workers: everything that crosses
that boundary must pickle, and the parity contract (a spec executed in
a worker fingerprints byte-identically to the parent) depends on specs
being immutable value objects.  The rule enforces, for every
``@dataclass`` in the pool-boundary modules:

* the decorator says ``frozen=True`` (a bare ``@dataclass`` or
  ``frozen=False`` makes specs silently mutable -- hydration drift);
* every field annotation resolves to a known-picklable shape --
  scalars, strings, bytes, ``Optional``/``Tuple``/``FrozenSet``/
  ``Sequence``/``Dict``/``List``/``Set`` over the same.  ``Callable``,
  ``Any``, lambdas, locks and module/class handles are exactly the
  types that either fail to pickle or pickle by identity surprise.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.rules.base import ModuleUnderLint, Rule, call_name

#: Annotation heads considered picklable across a spawn boundary.
_PICKLABLE_NAMES = {
    "int",
    "float",
    "str",
    "bool",
    "bytes",
    "complex",
    "None",
    "NoneType",
    "Optional",
    "Union",
    "Tuple",
    "tuple",
    "List",
    "list",
    "Dict",
    "dict",
    "Set",
    "set",
    "FrozenSet",
    "frozenset",
    "Sequence",
    "Mapping",
    "Iterable",
}


class POOL001(Rule):
    """Pool-boundary dataclasses must be frozen with picklable fields."""

    id = "POOL001"
    title = "unfrozen or unpicklable pool dataclass"

    def applies(self, path: str, config: LintConfig) -> bool:
        return config.is_pool_module(path)

    def check(
        self, module: ModuleUnderLint, config: LintConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                continue
            if not _is_frozen(decorator):
                yield self.finding(
                    module.path,
                    node,
                    f"dataclass {node.name} must declare frozen=True: "
                    "it crosses the spawn-pool boundary and mutable "
                    "specs break hydration parity",
                )
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                offender = _unpicklable_head(stmt.annotation)
                if offender is not None:
                    field = (
                        stmt.target.id
                        if isinstance(stmt.target, ast.Name)
                        else "?"
                    )
                    yield self.finding(
                        module.path,
                        stmt,
                        f"field {node.name}.{field} is annotated with "
                        f"{offender!r}, which does not pickle reliably "
                        "across the spawn-pool boundary; use plain "
                        "data (scalars, str, Optional/Tuple/FrozenSet "
                        "of the same)",
                    )


def _dataclass_decorator(cls: ast.ClassDef) -> Optional[ast.AST]:
    """The ``@dataclass`` / ``@dataclass(...)`` decorator, if any."""
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if call_name(target).split(".")[-1] == "dataclass":
            return decorator
    return None


def _is_frozen(decorator: ast.AST) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    return False


#: Annotation heads that are known pickle hazards: by-identity
#: surprises (``Any`` hides anything), unpicklable runtime objects, or
#: code objects.
_KNOWN_BAD_NAMES = {
    "Any",
    "Callable",
    "Condition",
    "Event",
    "Generator",
    "Iterator",
    "Lock",
    "Queue",
    "RLock",
    "Thread",
    "lambda",
}


def _judge_name(name: str) -> Optional[str]:
    if name in _PICKLABLE_NAMES:
        return None
    if name in _KNOWN_BAD_NAMES:
        return name
    if name[:1].isupper():
        # A project type (e.g. another primitive in the same module):
        # structurally picklable as long as its own dataclass passes
        # this rule.
        return None
    return name


def _unpicklable_head(annotation: ast.AST) -> Optional[str]:
    """The first unpicklable name in the annotation, or ``None``.

    Recurses structurally so nested parameters are covered
    (``Optional[Tuple[int, Callable]]`` is flagged on ``Callable``);
    string annotations are parsed and recursed into.
    """
    if isinstance(annotation, ast.Constant):
        if isinstance(annotation.value, str):
            try:
                parsed = ast.parse(annotation.value, mode="eval")
            except SyntaxError:
                return annotation.value
            return _unpicklable_head(parsed.body)
        # None in Optional spellings, Ellipsis in Tuple[int, ...].
        return None
    if isinstance(annotation, ast.Name):
        return _judge_name(annotation.id)
    if isinstance(annotation, ast.Attribute):
        # ``typing.Optional[...]`` -- judge the attribute, not the
        # module prefix.
        return _judge_name(annotation.attr)
    if isinstance(annotation, ast.Subscript):
        head = _unpicklable_head(annotation.value)
        if head is not None:
            return head
        return _unpicklable_head(annotation.slice)
    if isinstance(annotation, ast.Tuple):
        for element in annotation.elts:
            head = _unpicklable_head(element)
            if head is not None:
                return head
        return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _unpicklable_head(annotation.left) or _unpicklable_head(
            annotation.right
        )
    if isinstance(annotation, ast.Lambda):
        return "lambda"
    return None
