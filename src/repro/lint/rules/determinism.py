"""Determinism rules: DET001 (randomness), DET002 (wall clock), DET003
(unordered iteration).

These three rules statically close the nondeterminism holes the golden
transcripts can only sample:

* **DET001** -- the kernel owns the seeded random stream; everything
  else must construct a private ``random.Random(seed)``.  Process-global
  :mod:`random` functions, unseeded ``Random()``, ``os.urandom``,
  ``uuid.uuid4`` and friends make a run depend on interpreter state or
  the OS entropy pool, which no seed can pin.
* **DET002** -- simulated code runs on virtual time; a wall-clock read
  (``time.time``/``monotonic``/``perf_counter``, ``datetime.now``)
  inside sim/protocol/scenario/history code leaks real time into a
  seeded run.  The live runtime and the bench harnesses are scoped out
  by config -- measuring wall time is their job.
* **DET003** -- iterating a ``set``/``frozenset`` (or a dict built
  from one) has no deterministic order under hash randomization; in
  code reachable from ``fingerprint()``/transcript emission the order
  leaks straight into the bytes the determinism contract compares.
  Wrap the iterable in ``sorted(...)``, or feed an order-insensitive
  consumer (``set``/``sum``/``len``/``min``/``max``/``any``/``all``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.rules.base import (
    ModuleUnderLint,
    Rule,
    call_name,
    module_imports,
    resolved_call,
)

#: Entropy sources no seed can pin; flagged everywhere, even in
#: modules that own private RNGs.
_NEVER_SEEDED = {
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "random.SystemRandom",
}

#: Wall-clock reads (DET002).
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Builtins that consume an iterable order-insensitively (DET003).
_ORDER_FREE_CONSUMERS = {
    "sorted",
    "set",
    "frozenset",
    "len",
    "sum",
    "min",
    "max",
    "any",
    "all",
}

#: Call targets that serialize their argument's order (DET003).
_ORDER_SENSITIVE_CONSUMERS = {"list", "tuple"}


class DET001(Rule):
    """No unseeded randomness outside the declared RNG owners."""

    id = "DET001"
    title = "unseeded randomness"

    def check(
        self, module: ModuleUnderLint, config: LintConfig
    ) -> Iterator[Finding]:
        origins = module_imports(module.tree)
        rng_owner = config.is_rng_owner(module.path)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolved_call(node, origins)
            if not target:
                continue
            if target in _NEVER_SEEDED or target.startswith("secrets."):
                yield self.finding(
                    module.path,
                    node,
                    f"{target} draws OS entropy no seed can pin; derive "
                    "from the run's seeded stream instead",
                )
            elif target == "random.Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        module.path,
                        node,
                        "random.Random() without a seed argument is "
                        "seeded from OS entropy; pass an explicit seed",
                    )
            elif target.startswith("random.") and not rng_owner:
                yield self.finding(
                    module.path,
                    node,
                    f"{target} mutates/reads the process-global RNG; "
                    "construct a private random.Random(seed) (only the "
                    "declared RNG-owner modules may touch the global "
                    "stream)",
                )


class DET002(Rule):
    """No wall-clock reads in virtual-time code."""

    id = "DET002"
    title = "wall-clock read in virtual-time code"

    def applies(self, path: str, config: LintConfig) -> bool:
        return not config.allows_wall_clock(path)

    def check(
        self, module: ModuleUnderLint, config: LintConfig
    ) -> Iterator[Finding]:
        origins = module_imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolved_call(node, origins)
            if target in _WALL_CLOCK:
                yield self.finding(
                    module.path,
                    node,
                    f"{target}() reads the wall clock; simulated code "
                    "runs on virtual time (kernel.now) -- only the live "
                    "runtime and bench harnesses may measure real time",
                )


class DET003(Rule):
    """No unordered-set iteration in fingerprint scope."""

    id = "DET003"
    title = "unordered iteration in fingerprint scope"

    def applies(self, path: str, config: LintConfig) -> bool:
        return config.in_fingerprint_scope(path)

    def check(
        self, module: ModuleUnderLint, config: LintConfig
    ) -> Iterator[Finding]:
        for scope in _scopes(module.tree):
            yield from _check_scope(self, module.path, scope)


# -- DET003 machinery ------------------------------------------------------


def _scopes(tree: ast.Module):
    """The module and every (async) function, shallowest first."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _walk_scope(scope: ast.AST):
    """Every node belonging to ``scope``, pre-order, in document order.

    Does not descend into nested (async) functions -- those are their
    own scopes and are checked separately by :func:`_scopes`.
    """
    for child in ast.iter_child_nodes(scope):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield child
        yield from _walk_scope(child)


def _unordered_vars(scope: ast.AST) -> Set[str]:
    """Names that are only ever assigned known-unordered values."""
    flags: Dict[str, bool] = {}
    for node in _walk_scope(scope):
        if isinstance(node, ast.Assign):
            value = node.value
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif (
            isinstance(node, ast.AnnAssign)
            and node.value is not None
            and isinstance(node.target, ast.Name)
        ):
            value = node.value
            names = [node.target.id]
        else:
            continue
        current = {name for name, flag in flags.items() if flag}
        unordered = _is_unordered(value, current)
        for name in names:
            prev = flags.get(name)
            flags[name] = unordered if prev is None else (prev and unordered)
    return {name for name, flag in flags.items() if flag}


def _is_unordered(node: ast.AST, unordered_vars: Set[str]) -> bool:
    """Whether ``node`` statically evaluates to an unordered collection."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in unordered_vars
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_unordered(node.left, unordered_vars) or _is_unordered(
            node.right, unordered_vars
        )
    if isinstance(node, ast.Call):
        name = call_name(node.func)
        if name in ("set", "frozenset"):
            return True
        if name == "dict.fromkeys" and node.args:
            # A dict built from a set inherits the set's arbitrary order.
            return _is_unordered(node.args[0], unordered_vars)
        if isinstance(node.func, ast.Attribute):
            base = node.func.value
            if node.func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
                "copy",
            ) and _is_unordered(base, unordered_vars):
                return True
            if node.func.attr in ("keys", "values", "items") and _is_unordered(
                base, unordered_vars
            ):
                return True
    return False


def _blessed_nodes(scope: ast.AST) -> Set[int]:
    """ids of expressions consumed order-insensitively (or sorted)."""
    blessed: Set[int] = set()
    for node in _walk_scope(scope):
        if isinstance(node, ast.Call):
            if call_name(node.func) in _ORDER_FREE_CONSUMERS:
                for arg in node.args:
                    blessed.add(id(arg))
    return blessed


def _check_scope(rule: Rule, path: str, scope: ast.AST) -> Iterator[Finding]:
    unordered = _unordered_vars(scope)
    blessed = _blessed_nodes(scope)

    def offending(expr: ast.AST) -> bool:
        if id(expr) in blessed:
            return False
        if isinstance(expr, ast.Call) and call_name(expr.func) in (
            "enumerate",
            "reversed",
            "iter",
        ):
            return bool(expr.args) and offending(expr.args[0])
        return _is_unordered(expr, unordered)

    for node in _walk_scope(scope):
        if isinstance(node, (ast.For, ast.AsyncFor)) and offending(node.iter):
            yield rule.finding(
                path,
                node,
                "for-loop over a set has no deterministic order in "
                "fingerprint scope; iterate sorted(...) instead",
            )
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            if id(node) in blessed:
                continue
            first = node.generators[0].iter if node.generators else None
            if first is not None and offending(first):
                yield rule.finding(
                    path,
                    node,
                    "comprehension over a set produces nondeterministic "
                    "order in fingerprint scope; wrap the iterable in "
                    "sorted(...) or feed an order-free consumer",
                )
        elif isinstance(node, ast.Call):
            name = call_name(node.func)
            if (
                name in _ORDER_SENSITIVE_CONSUMERS
                and node.args
                and offending(node.args[0])
            ):
                yield rule.finding(
                    path,
                    node,
                    f"{name}(...) over a set freezes an arbitrary order "
                    "into fingerprint scope; use sorted(...)",
                )
            elif (
                name.endswith("join")
                and isinstance(node.func, ast.Attribute)
                and node.args
                and offending(node.args[0])
            ):
                yield rule.finding(
                    path,
                    node,
                    "str.join over a set serializes a nondeterministic "
                    "order into fingerprint scope; use sorted(...)",
                )
