"""Rule plumbing: the visitor contract and shared AST helpers.

A rule is one stateless object with an ``id``, a human ``title``, an
``applies(path, config)`` scope test and a ``check(module) ->
findings`` pass over a parsed file.  The engine parses each file once
into a :class:`ModuleUnderLint` and hands the same object to every
applicable rule, so adding a rule never adds a parse.

``EngineRule`` marks rules the engine itself produces (suppression
hygiene) -- they carry documentation and registry presence but no AST
pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.suppressions import is_hot_path


@dataclass(frozen=True)
class ModuleUnderLint:
    """One parsed source file, shared by every rule that checks it.

    ``path`` is the *effective* repo-relative path: the real location,
    or the fixture's ``# repro-lint: pretend`` target, so scoped rules
    treat a fixture exactly like the module it impersonates.
    """

    path: str
    tree: ast.Module
    lines: Sequence[str]

    @property
    def hot_path(self) -> bool:
        return is_hot_path(self.lines)


class Rule:
    """One lint rule: a scope test plus an AST pass."""

    id: str = "?"
    title: str = "?"

    def applies(self, path: str, config: LintConfig) -> bool:
        """Whether this rule runs on the module at ``path`` at all."""
        return True

    def check(
        self, module: ModuleUnderLint, config: LintConfig
    ) -> Iterator[Finding]:
        """Yield every violation in ``module``."""
        raise NotImplementedError

    def finding(self, path: str, node_or_line, message: str) -> Finding:
        """Build a finding for an AST node (or explicit line number)."""
        line = getattr(node_or_line, "lineno", node_or_line)
        return Finding(rule=self.id, path=path, line=line, message=message)


class EngineRule(Rule):
    """A rule produced by the engine, not by an AST pass."""

    def applies(self, path: str, config: LintConfig) -> bool:
        return False

    def check(
        self, module: ModuleUnderLint, config: LintConfig
    ) -> Iterator[Finding]:
        return iter(())


# -- shared AST helpers ----------------------------------------------------


def call_name(node: ast.AST) -> str:
    """Dotted name of a call/attribute target, best effort.

    ``random.Random`` -> ``"random.Random"``; ``uuid.uuid4()``'s func
    -> ``"uuid.uuid4"``; unresolvable shapes -> ``""``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def module_imports(tree: ast.Module) -> dict:
    """Local name -> imported dotted origin, for the whole module.

    ``import random`` -> ``{"random": "random"}``; ``import numpy.random
    as npr`` -> ``{"npr": "numpy.random"}``; ``from random import
    shuffle as mix`` -> ``{"mix": "random.shuffle"}``.
    """
    origins = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                origins[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                origins[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return origins


def resolved_call(node: ast.Call, origins: dict) -> str:
    """The call target as an import-resolved dotted name.

    A call to ``mix(...)`` where ``mix`` was imported from ``random``
    resolves to ``"random.shuffle"``; ``npr.choice(...)`` under
    ``import numpy.random as npr`` resolves to
    ``"numpy.random.choice"``.
    """
    dotted = call_name(node.func)
    if not dotted:
        return ""
    head, _, rest = dotted.partition(".")
    origin = origins.get(head)
    if origin is None:
        return dotted
    return f"{origin}.{rest}" if rest else origin


def iter_statements(body: Iterable[ast.stmt]) -> Iterator[ast.stmt]:
    """All statements in ``body``, recursively (bodies, handlers, orelse)."""
    for stmt in body:
        yield stmt
        for attr in ("body", "orelse", "finalbody"):
            yield from iter_statements(getattr(stmt, attr, ()))
        for handler in getattr(stmt, "handlers", ()):
            yield from iter_statements(handler.body)


def first_real_statement(body: Sequence[ast.stmt]) -> Optional[ast.stmt]:
    """The first statement of ``body`` that is not a docstring."""
    for stmt in body:
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            continue
        return stmt
    return None
