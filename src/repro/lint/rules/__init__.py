"""The rule registry: every lint rule id, mapped to its implementation.

``RULES`` is the single source of truth for which rules exist; the
CLI's ``--rule`` filter, the docs cross-check in
``tools/check_docs.py`` and the fixture coverage test in
``tests/unit/test_lint.py`` all read it.  Rules DET/TRC/HOT/API/POOL
are AST visitors (:class:`~repro.lint.rules.base.Rule` subclasses);
LINT001/LINT002 are *engine-level* -- they are produced by the
suppression machinery in :mod:`repro.lint.engine` rather than by an
AST pass, but they are registered here so they are documented,
filterable and fixture-covered like any other rule.
"""

from __future__ import annotations

from typing import Dict, List

from repro.lint.rules.api import API001
from repro.lint.rules.base import EngineRule, Rule
from repro.lint.rules.determinism import DET001, DET002, DET003
from repro.lint.rules.hotpath import HOT001
from repro.lint.rules.pool import POOL001
from repro.lint.rules.trace import TRC001

__all__ = ["LINT001", "LINT002", "RULES", "all_rule_ids", "get_rule"]


class LINT001(EngineRule):
    """An inline ``# repro: allow[RULE]`` suppression has no reason."""

    id = "LINT001"
    title = "suppression without a reason"


class LINT002(EngineRule):
    """An allow's rule no longer fires on that line (stale suppression).

    Reported by ``repro lint --check-stale`` only, so a transiently
    clean line does not fail the default run while it is being fixed.
    """

    id = "LINT002"
    title = "stale suppression"


#: rule id -> rule instance, the registry.
RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        DET001(),
        DET002(),
        DET003(),
        TRC001(),
        HOT001(),
        API001(),
        POOL001(),
        LINT001(),
        LINT002(),
    )
}


def all_rule_ids() -> List[str]:
    """Every registered rule id, sorted."""
    return sorted(RULES)


def get_rule(rule_id: str) -> Rule:
    """The registered rule, or raise ``KeyError`` with the known ids."""
    try:
        return RULES[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown lint rule {rule_id!r} (known: {', '.join(all_rule_ids())})"
        ) from None
