"""HOT001: hot-path emitters must guard event construction.

The PR 2 fast path (and the PR 6 ring numbers) depend on one emitter
discipline: on the per-event path, a :class:`TraceEvent` (a dataclass
plus a detail dict) is only built when somebody will actually see it::

    if trace.wants(tracing.SEND):
        trace.emit(TraceEvent(...))      # slow path, someone listens
    else:
        trace.tick(tracing.SEND, ...)    # allocation-free

A module opts into enforcement with a ``# repro: hot-path`` marker
line (``src/repro/sim/{network,node,storage}.py`` carry it).  In a
marked module, every ``.emit(...)`` call and every ``TraceEvent(...)``
construction must sit inside the *body* of an ``if`` whose test calls
``.wants(...)`` (or reads ``.capturing``) -- an emit in the ``else``
branch, or with no guard at all, silently reintroduces the per-event
allocations the benchmarks retired.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.rules.base import ModuleUnderLint, Rule, call_name


def _test_is_guard(test: ast.AST) -> bool:
    """Whether an ``if`` test consults ``.wants(...)``/``.capturing``."""
    for node in ast.walk(test):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "wants":
                return True
        if isinstance(node, ast.Attribute) and node.attr == "capturing":
            return True
    return False


class HOT001(Rule):
    """No unguarded ``TraceEvent``/``emit`` in hot-path modules."""

    id = "HOT001"
    title = "unguarded event construction on a hot path"

    def applies(self, path: str, config: LintConfig) -> bool:
        # Applicability is by marker, not path: the engine hands every
        # module over and the rule checks the marker itself, so a
        # module becomes hot-path by declaring it.
        return True

    def check(
        self, module: ModuleUnderLint, config: LintConfig
    ) -> Iterator[Finding]:
        if not module.hot_path:
            return
        yield from self._walk(module.path, module.tree.body, guarded=False)

    def _walk(self, path: str, body, guarded: bool) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, ast.If):
                inner = guarded or _test_is_guard(stmt.test)
                yield from self._walk(path, stmt.body, inner)
                # The else branch is the tick path: still unguarded
                # unless an enclosing if already proved wants().
                yield from self._walk(path, stmt.orelse, guarded)
                continue
            if not guarded:
                yield from self._check_own_expressions(path, stmt)
            # A nested def's body runs later, outside this guard; it
            # must re-establish its own wants() discipline.
            child_guard = (
                False
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                else guarded
            )
            for attr in ("body", "orelse", "finalbody"):
                child = getattr(stmt, attr, None)
                if child:
                    yield from self._walk(path, child, child_guard)
            for handler in getattr(stmt, "handlers", ()):
                yield from self._walk(path, handler.body, child_guard)

    def _check_own_expressions(
        self, path: str, stmt: ast.stmt
    ) -> Iterator[Finding]:
        """Check the statement's own expressions, not child statements."""
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.stmt, ast.excepthandler)):
                continue
            for node in ast.walk(child):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node.func)
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit"
                ):
                    yield self.finding(
                        path,
                        node,
                        f"{name or 'trace.emit'}(...) outside a "
                        "trace.wants() guard builds an event even when "
                        "nobody listens; guard it and tick() on the "
                        "fast path",
                    )
                elif name.endswith("TraceEvent"):
                    yield self.finding(
                        path,
                        node,
                        "TraceEvent construction outside a "
                        "trace.wants() guard allocates on the hot "
                        "path; guard it and tick() on the fast path",
                    )
