"""TRC001: trace kinds are append-only (ring encodings stay stable).

The flight recorder (:mod:`repro.obs.ring`) stores each event's kind
as its **position** in ``repro.sim.tracing.ALL_KINDS``; an exported
ring (JSONL, Chrome trace) is only decodable as long as that mapping
never changes for existing kinds.  PR 8 appended the three checkpoint
kinds at the end by hand-discipline; this rule makes the discipline a
build failure:

* ``ALL_KINDS`` must start with the exact pinned prefix in
  :data:`repro.lint.config.PINNED_TRACE_KINDS` -- no removal, no
  reorder, no insertion before the end;
* a *new* kind appended after the prefix is flagged too, until it is
  also appended to the pinned manifest -- the manifest append is the
  explicit acknowledgment that the encoding grew;
* duplicate kinds are flagged (two positions, one name: undecodable).

The rule resolves name constants (``SEND = "send"``; ``ALL_KINDS =
(SEND, ...)``) statically, so the check needs no import of the module
under lint.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.rules.base import ModuleUnderLint, Rule


class TRC001(Rule):
    """``ALL_KINDS`` may only grow by appending, acknowledged in the
    pinned manifest."""

    id = "TRC001"
    title = "trace kinds must be append-only"

    def applies(self, path: str, config: LintConfig) -> bool:
        return path == config.trace_kinds_module

    def check(
        self, module: ModuleUnderLint, config: LintConfig
    ) -> Iterator[Finding]:
        assignment = _find_all_kinds(module.tree)
        if assignment is None:
            yield self.finding(
                module.path,
                1,
                "module defines no module-level ALL_KINDS tuple; the "
                "ring encoding manifest must stay discoverable",
            )
            return
        node, kinds = assignment
        pinned = config.pinned_trace_kinds
        seen: Dict[str, int] = {}
        for position, kind in enumerate(kinds):
            if kind in seen:
                yield self.finding(
                    module.path,
                    node,
                    f"trace kind {kind!r} appears twice in ALL_KINDS "
                    f"(positions {seen[kind]} and {position}); ring "
                    "codes must be unique",
                )
            seen.setdefault(kind, position)
        for position, expected in enumerate(pinned):
            actual = kinds[position] if position < len(kinds) else None
            if actual != expected:
                yield self.finding(
                    module.path,
                    node,
                    f"ALL_KINDS[{position}] is "
                    f"{actual!r} but the pinned manifest requires "
                    f"{expected!r}; kinds may only be APPENDED at the "
                    "end (ring exports encode kinds by position)",
                )
                return
        for position in range(len(pinned), len(kinds)):
            yield self.finding(
                module.path,
                node,
                f"new trace kind {kinds[position]!r} is not in the "
                "pinned manifest; append it to PINNED_TRACE_KINDS in "
                "repro/lint/config.py to acknowledge the encoding "
                "change",
            )


def _find_all_kinds(
    tree: ast.Module,
) -> Optional[Tuple[ast.Assign, List[Optional[str]]]]:
    """The module-level ``ALL_KINDS`` assignment, with resolved values.

    Elements that cannot be resolved to a string constant come back as
    ``None`` (they then mismatch whatever the manifest pins, which is
    the safe direction).
    """
    constants: Dict[str, str] = {}
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if (
            len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            constants[stmt.targets[0].id] = stmt.value.value
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "ALL_KINDS"
            for t in stmt.targets
        ):
            continue
        if not isinstance(stmt.value, (ast.Tuple, ast.List)):
            return stmt, []
        kinds: List[Optional[str]] = []
        for element in stmt.value.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                kinds.append(element.value)
            elif isinstance(element, ast.Name):
                kinds.append(constants.get(element.id))
            else:
                kinds.append(None)
        return stmt, kinds
    return None
