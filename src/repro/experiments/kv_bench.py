"""KV store benchmark: throughput vs. shard count and batch window.

Not a figure from the paper -- this is the scaling story of the
:mod:`repro.kv` layer built on top of it: a 16-client zipfian workload
against the sharded store, sweeping

* the **shard count** at a zero batch window (pure pipeline
  parallelism: each shard executes serially, shards run concurrently);
* the **batch window** at a fixed shard count (same-shard operations
  issued within the window share one quorum round-trip).

Every run's per-key histories are checked for atomicity, so the
numbers are only reported for runs the checkers accept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.kv.store import KVCluster
from repro.workloads.kv import KVWorkloadRunner, ZipfianKeys

#: Simulated-time throughput sweep defaults.
SHARD_SWEEP = (1, 2, 4, 8)
WINDOW_SWEEP = (0.0, 2e-5, 1e-4)
WINDOW_SWEEP_SHARDS = 2


@dataclass
class KVBenchRow:
    """One configuration's measured results."""

    shards: int
    batch_window: float
    clients: int
    completed: int
    aborted: int
    throughput: float
    mean_latency: float
    messages_sent: int
    atomic: bool

    @property
    def window_us(self) -> float:
        return self.batch_window * 1e6

    @property
    def latency_us(self) -> float:
        return self.mean_latency * 1e6


def run_kv_config(
    shards: int,
    batch_window: float = 0.0,
    protocol: str = "persistent",
    num_processes: int = 5,
    num_clients: int = 16,
    operations_per_client: int = 30,
    read_fraction: float = 0.85,
    num_keys: int = 64,
    zipf_s: float = 0.99,
    seed: Optional[int] = None,
    check: bool = True,
) -> KVBenchRow:
    """Run one (shards, window) configuration and measure it.

    ``seed`` defaults to the sweep's curated 7.
    """
    seed = 7 if seed is None else seed
    kv = KVCluster(
        protocol=protocol,
        num_processes=num_processes,
        num_shards=shards,
        batch_window=batch_window,
        seed=seed,
    )
    kv.start()
    keys = ZipfianKeys(num_keys=num_keys, s=zipf_s, seed=seed + 4)
    runner = KVWorkloadRunner(
        kv,
        num_clients=num_clients,
        operations_per_client=operations_per_client,
        read_fraction=read_fraction,
        keys=keys,
        seed=seed + 4,
    )
    report = runner.run(timeout=300.0)
    atomic = kv.check_atomicity().ok if check else True
    return KVBenchRow(
        shards=shards,
        batch_window=batch_window,
        clients=num_clients,
        completed=report.completed,
        aborted=report.aborted,
        throughput=report.throughput,
        mean_latency=report.mean_latency,
        messages_sent=kv.network.messages_sent,
        atomic=atomic,
    )


def run_kv_bench(
    quick: bool = False,
    protocol: str = "persistent",
    shard_sweep: Optional[Sequence[int]] = None,
    window_sweep: Optional[Sequence[float]] = None,
    num_clients: int = 16,
    operations_per_client: int = 30,
    seed: Optional[int] = None,
) -> List[KVBenchRow]:
    """The full sweep; ``quick`` trims it to a CI-sized smoke run.

    ``seed`` overrides the sweep's curated default seed.
    """
    if shard_sweep is None:
        shard_sweep = (1, 8) if quick else SHARD_SWEEP
    if window_sweep is None:
        window_sweep = (0.0, 2e-5) if quick else WINDOW_SWEEP
    if quick:
        operations_per_client = min(operations_per_client, 10)
    rows = [
        run_kv_config(
            shards,
            batch_window=0.0,
            protocol=protocol,
            num_clients=num_clients,
            operations_per_client=operations_per_client,
            seed=seed,
        )
        for shards in shard_sweep
    ]
    rows.extend(
        run_kv_config(
            WINDOW_SWEEP_SHARDS,
            batch_window=window,
            protocol=protocol,
            num_clients=num_clients,
            operations_per_client=operations_per_client,
            seed=seed,
        )
        for window in window_sweep
        if window > 0.0
    )
    return rows


def format_kv_bench(rows: Sequence[KVBenchRow]) -> str:
    """Render the sweep as the table the CLI prints."""
    header = (
        f"{'shards':>6}  {'window':>9}  {'clients':>7}  {'ops':>6}  "
        f"{'throughput':>12}  {'mean lat':>10}  {'messages':>9}  {'atomic':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.shards:>6}  {row.window_us:>7.0f}us  {row.clients:>7}  "
            f"{row.completed:>6}  {row.throughput:>8,.0f} o/s  "
            f"{row.latency_us:>8,.0f}us  {row.messages_sent:>9}  "
            f"{'yes' if row.atomic else 'NO':>6}"
        )
    baseline = next((r for r in rows if r.shards == 1 and r.batch_window == 0.0), None)
    best = max(rows, key=lambda r: r.throughput)
    if baseline is not None and baseline.throughput > 0:
        lines.append(
            f"\nbest configuration: {best.shards} shards, "
            f"{best.window_us:.0f}us window -> "
            f"{best.throughput / baseline.throughput:.2f}x the 1-shard serial baseline"
        )
    return "\n".join(lines)
