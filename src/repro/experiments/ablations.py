"""Ablations: remove one design ingredient, observe the paper's anomaly.

Section I-C of the paper names the failure mode each log prevents; the
model section adds the majority-quorum requirement.  Each ablation here
runs a deliberately weakened protocol (from
:mod:`repro.protocol.broken`) under a deterministic adversarial
schedule, checks that the promised anomaly appears (the atomicity
checkers reject the history), and runs the *correct* counterpart under
the same schedule to show the anomaly is the ablation's fault:

=====================  ====================  ==========================
ablation               anomaly               paper's name
=====================  ====================  ==========================
writer pre-log         duplicate tag, reads  confused-values /
removed                flip between values   orphan-value  (Theorem 1)
read write-back        value forgotten       new/old inversion
removed                across reader crash   (Theorem 2)
recovery counter       duplicate tag after   confused-values
removed (transient)    writer recovery       (Section IV-C)
majority quorum        completed write       forgotten-value
shrunk to one ack      lost after crash      (Sections I-C, II)
=====================  ====================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster import SimCluster
from repro.common.errors import ReproError
from repro.experiments.lower_bounds import LowerBoundRun, run_rho1, run_rho4
from repro.history.checker import (
    AtomicityVerdict,
    check_persistent_atomicity,
    check_transient_atomicity,
)
from repro.protocol.messages import WriteRequest


@dataclass
class AblationResult:
    """One ablation/control pair."""

    name: str
    anomaly: str
    broken_algorithm: str
    control_algorithm: str
    #: Verdict of the *promised* criterion on the broken run.
    broken_verdict: AtomicityVerdict
    #: Same criterion on the control run (same schedule, correct code).
    control_verdict: AtomicityVerdict

    @property
    def demonstrated(self) -> bool:
        """Anomaly present with the ablation, absent without it."""
        return (not self.broken_verdict.ok) and self.control_verdict.ok


def ablate_writer_prelog(seed: Optional[int] = None) -> AblationResult:
    """Remove Figure 4's ``writing`` pre-log: run rho_1 becomes fatal."""
    broken = run_rho1("broken-no-prelog", seed=seed)
    control = run_rho1("persistent", seed=seed)
    return AblationResult(
        name="writer-prelog",
        anomaly="confused/orphan values",
        broken_algorithm="broken-no-prelog",
        control_algorithm="persistent",
        broken_verdict=broken.persistent_verdict,
        control_verdict=control.persistent_verdict,
    )


def ablate_read_writeback(seed: Optional[int] = None) -> AblationResult:
    """Remove the read's write-back round: run rho_4 becomes fatal."""
    broken = run_rho4("broken-no-writeback", seed=seed)
    control = run_rho4("persistent", seed=seed)
    return AblationResult(
        name="read-writeback",
        anomaly="new/old inversion across reader crash",
        broken_algorithm="broken-no-writeback",
        control_algorithm="persistent",
        broken_verdict=broken.transient_verdict,
        control_verdict=control.transient_verdict,
    )


def _rec_counter_scenario(
    algorithm: str, seed: Optional[int] = None
) -> LowerBoundRun:
    """Duplicate-tag schedule for the transient recovery counter.

    Writer is ``p2`` so the single adopter of the interrupted write
    (``p0``) wins quorum tie-breaks under duplicate tags.  Without the
    recovery counter, ``W(v3)``'s query quorum ``{p1, p2}`` never saw
    ``v2``'s sequence number and re-issues the same tag for ``v3``.
    """
    cluster = SimCluster(
        protocol=algorithm, num_processes=3,
        seed=11 if seed is None else seed, include_broken=True
    )
    cluster.start()
    writer = 2

    cluster.write_sync(writer, "v1")

    w2 = cluster.write(writer, "v2")
    remove_w2 = cluster.network.add_filter(
        lambda src, dst, msg: (
            isinstance(msg, WriteRequest) and msg.op == w2.op and dst != 0
        )
    )
    ok = cluster.run_until(
        lambda: cluster.node(0).protocol.durable_tag.sn >= 2, timeout=1.0
    )
    if not ok:
        raise ReproError("p0 never adopted the interrupted W(v2)")
    cluster.crash(writer)
    remove_w2()
    cluster.recover(writer, wait=True)

    # W(v3): query quorum {p1, p2} (p0's answers withheld).
    cluster.network.block(0, writer)
    w3 = cluster.write(writer, "v3")
    ok = cluster.run_until(lambda: w3.settled, timeout=1.0)
    if not ok:
        raise ReproError("W(v3) did not complete")
    cluster.network.heal_all()

    # R1 at p0: quorum {p0, p1} -- under duplicate tags, p0's copy of
    # v2 wins the tie-break and surfaces.
    cluster.network.block(2, 0)
    r1 = cluster.wait(cluster.read(0))
    cluster.network.heal_all()

    # R2 at p1: quorum {p1, p2} -- sees only v3.
    cluster.network.block(0, 1)
    r2 = cluster.wait(cluster.read(1))
    cluster.network.heal_all()

    history = cluster.history
    return LowerBoundRun(
        scenario="rec-counter",
        algorithm=algorithm,
        read_results=[r1.result, r2.result],
        read_causal_logs=[r1.causal_logs, r2.causal_logs],
        history=history,
        persistent_verdict=check_persistent_atomicity(history),
        transient_verdict=check_transient_atomicity(history),
    )


def ablate_recovery_counter(seed: Optional[int] = None) -> AblationResult:
    """Remove Figure 5's ``rec`` counter: recovered writer reuses a tag."""
    broken = _rec_counter_scenario("broken-no-rec", seed=seed)
    control = _rec_counter_scenario("transient", seed=seed)
    return AblationResult(
        name="recovery-counter",
        anomaly="duplicate timestamp after writer recovery",
        broken_algorithm="broken-no-rec",
        control_algorithm="transient",
        broken_verdict=broken.transient_verdict,
        control_verdict=control.transient_verdict,
    )


def _submajority_scenario(algorithm: str, seed: Optional[int] = None):
    """Forgotten-value schedule: complete a write, crash the writer."""
    cluster = SimCluster(
        protocol=algorithm, num_processes=3,
        seed=13 if seed is None else seed, include_broken=True
    )
    cluster.start()
    # The sub-majority writer returns after its own loopback ack, i.e.
    # before any other process durably holds v1.  To keep the schedule
    # identical for the control, filter the write's second round away
    # from everyone but the writer itself.
    w1 = cluster.write(0, "v1")
    remove_w1 = cluster.network.add_filter(
        lambda src, dst, msg: (
            isinstance(msg, WriteRequest) and msg.op == w1.op and dst != 0
        )
    )
    cluster.run_until(lambda: w1.settled, timeout=1.0)
    remove_w1()
    completed = w1.done
    if completed:
        # The broken variant declared the write done; now the only copy
        # disappears forever.
        cluster.crash(0)
        read = cluster.wait(cluster.read(1))
        history = cluster.history
        return completed, read.result, check_persistent_atomicity(history)
    # The correct algorithm keeps retransmitting; the write finishes
    # once the filter is gone and a majority logs it.  Then even losing
    # the writer forever loses nothing.
    cluster.wait(w1)
    cluster.crash(0)
    read = cluster.wait(cluster.read(1))
    history = cluster.history
    return completed, read.result, check_persistent_atomicity(history)


def ablate_majority_quorum(seed: Optional[int] = None) -> AblationResult:
    """Shrink the write quorum to one ack: completed writes can vanish."""
    _, _, broken_verdict = _submajority_scenario("broken-submajority", seed=seed)
    _, _, control_verdict = _submajority_scenario("persistent", seed=seed)
    return AblationResult(
        name="majority-quorum",
        anomaly="forgotten value after minority crash",
        broken_algorithm="broken-submajority",
        control_algorithm="persistent",
        broken_verdict=broken_verdict,
        control_verdict=control_verdict,
    )


ALL_ABLATIONS = (
    ablate_writer_prelog,
    ablate_read_writeback,
    ablate_recovery_counter,
    ablate_majority_quorum,
)


def run_all_ablations(seed: Optional[int] = None) -> List[AblationResult]:
    """Run every ablation/control pair (``seed`` overrides each curated seed)."""
    return [ablation(seed=seed) for ablation in ALL_ABLATIONS]


def format_ablations(results: List[AblationResult]) -> str:
    """Render the ablation outcomes as a table."""
    header = (
        f"{'ablation':<18s} {'anomaly':<42s} "
        f"{'broken ok?':>10s} {'control ok?':>11s} {'shown':>6s}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        lines.append(
            f"{result.name:<18s} {result.anomaly:<42s} "
            f"{str(result.broken_verdict.ok):>10s} "
            f"{str(result.control_verdict.ok):>11s} "
            f"{'yes' if result.demonstrated else 'NO':>6s}"
        )
    return "\n".join(lines)
