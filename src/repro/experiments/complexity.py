"""Message and time complexity table (Sections I-D and IV-B claims).

The paper: "our algorithms use the same number of communication steps
as [2], namely 4 for any operation.  In other words, this means that
minimizing the number of logs does not increase the number of
messages, or communication steps, with respect to the most efficient
robust emulation algorithms we know of in a crash-stop model."

This harness measures, per algorithm and operation kind, the
communication steps (2 per round), total messages (requests plus
acknowledgments across all processes) and total stable-storage logs,
from crash-free sequential runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis import (
    ComplexitySummary,
    format_summary,
    profile_operations,
    summarize_profiles,
)
from repro.cluster import SimCluster

COMPLEXITY_ALGORITHMS = (
    "abd",
    "crash-stop",
    "transient",
    "persistent",
    "naive",
    "regular",
)

#: Expected communication steps per (algorithm, kind); the paper's "4
#: for any operation" for the three multi-writer atomic algorithms.
EXPECTED_STEPS: Dict[str, Dict[str, int]] = {
    "abd": {"write": 2, "read": 4},
    "crash-stop": {"write": 4, "read": 4},
    "transient": {"write": 4, "read": 4},
    "persistent": {"write": 4, "read": 4},
    "naive": {"write": 4, "read": 4},
    "regular": {"write": 4, "read": 2},
}


@dataclass
class AlgorithmComplexity:
    """Measured complexity rows for one algorithm."""

    algorithm: str
    rows: List[ComplexitySummary]

    def steps_of(self, kind: str) -> int:
        for row in self.rows:
            if row.kind == kind:
                assert row.steps_min == row.steps_max
                return row.steps_min
        raise KeyError(kind)

    def messages_of(self, kind: str) -> float:
        for row in self.rows:
            if row.kind == kind:
                return row.messages_mean
        raise KeyError(kind)


def measure_complexity(
    algorithms: Sequence[str] = COMPLEXITY_ALGORITHMS,
    num_processes: int = 5,
    operations: int = 5,
    seed: int = 0,
) -> List[AlgorithmComplexity]:
    """Crash-free sequential runs; complexity profiles from the trace."""
    results: List[AlgorithmComplexity] = []
    for algorithm in algorithms:
        cluster = SimCluster(
            protocol=algorithm, num_processes=num_processes, seed=seed
        )
        cluster.start()
        for i in range(operations):
            cluster.write_sync(0, f"v{i}")
        for _ in range(operations):
            cluster.wait(cluster.read(1))
        profiles = profile_operations(cluster)
        results.append(
            AlgorithmComplexity(
                algorithm=algorithm, rows=summarize_profiles(profiles)
            )
        )
    return results


def format_complexity(results: List[AlgorithmComplexity]) -> str:
    blocks = [format_summary(result.algorithm, result.rows) for result in results]
    # Merge into one table: keep the first header only.
    lines: List[str] = []
    for index, block in enumerate(blocks):
        rows = block.splitlines()
        lines.extend(rows if index == 0 else rows[2:])
    return "\n".join(lines)
