"""Experiment harnesses regenerating the paper's figures and claims.

One module per table/figure (``docs/protocols.md`` maps each algorithm
to its paper section; ``docs/benchmarks.md`` covers the non-paper
``bench`` harness):

* :mod:`repro.experiments.figure1` -- the persistent vs. transient runs
  of Figure 1 (overlapping-write semantics);
* :mod:`repro.experiments.figure6` -- both graphs of Figure 6 (write
  latency vs. cluster size; write latency vs. payload size);
* :mod:`repro.experiments.lower_bounds` -- the adversarial runs behind
  Theorems 1 and 2 (Figures 2 and 3);
* :mod:`repro.experiments.log_complexity` -- measured causal logs per
  operation vs. the paper's bounds;
* :mod:`repro.experiments.ablations` -- one anomaly per removed design
  ingredient (forgotten/confused/orphan values, new/old inversion).

Each harness returns plain data and offers a ``format_*`` helper that
prints the same rows/series the paper reports.
"""

from repro.experiments.figure6 import (
    Figure6Point,
    figure6_bottom,
    figure6_top,
    format_figure6_bottom,
    format_figure6_top,
)
from repro.experiments.log_complexity import (
    LogComplexityRow,
    format_log_complexity,
    measure_log_complexity,
)

__all__ = [
    "Figure6Point",
    "LogComplexityRow",
    "figure6_bottom",
    "figure6_top",
    "format_figure6_bottom",
    "format_figure6_top",
    "format_log_complexity",
    "measure_log_complexity",
]
