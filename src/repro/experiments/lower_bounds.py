"""The adversarial runs behind the lower bounds (Theorems 1 and 2).

The paper proves two lower bounds by constructing runs no algorithm
with fewer causal logs can survive:

* **Theorem 1** (run rho_1, Figure 2): a persistent atomic write needs
  two causal logs.  With only one -- i.e. without the writer's pre-log
  -- the writer can crash after a single process adopted ``W(v2)``,
  recover with no memory of the attempt, and reuse the same timestamp
  for ``v3``: two values under one tag (*confused values*), which no
  completion can linearize.
* **Theorem 2** (runs rho_2..rho_4, Figure 3): even a transient atomic
  read needs one causal log.  A reader that returns ``v2`` without any
  log can crash, forget, and return ``v1`` afterwards -- a new/old
  inversion across its own crash.

This module replays those runs deterministically.  Each scenario is
parameterized by algorithm so the same adversarial schedule can be
thrown at the paper's algorithms (which survive -- the bounds are
tight) and at the deliberately weakened variants of
:mod:`repro.protocol.broken` (which violate the criteria, demonstrating
the bounds are real).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.cluster import SimCluster
from repro.common.errors import ReproError
from repro.history.checker import (
    AtomicityVerdict,
    check_persistent_atomicity,
    check_transient_atomicity,
)
from repro.history.history import History
from repro.protocol.messages import WriteRequest


@dataclass
class LowerBoundRun:
    """Outcome of one adversarial run."""

    scenario: str
    algorithm: str
    read_results: List[Any]
    read_causal_logs: List[Optional[int]]
    history: History
    persistent_verdict: AtomicityVerdict
    transient_verdict: AtomicityVerdict

    @property
    def atomic(self) -> bool:
        """Shorthand: does the run satisfy even transient atomicity?"""
        return bool(self.transient_verdict)


def run_rho1(
    algorithm: str = "persistent", seed: Optional[int] = None
) -> LowerBoundRun:
    """Run rho_1 of the Theorem 1 proof (Figure 2), on 5 processes.

    The writer is ``p4`` (the adopters of the interrupted write must
    have the *smallest* ids so that, under the duplicate tags a
    one-log algorithm produces, quorum tie-breaks surface the orphaned
    value -- the run the theorem shows is fatal).

    Schedule: ``W(v1)`` completes everywhere; ``W(v2)`` reaches only
    ``{p0, p1}`` and the writer crashes; the writer recovers and issues
    ``W(v3)`` whose query quorum is steered to ``{p2, p3, p4}``; then
    ``R1`` (quorum ``{p0, p1, p2}``) and ``R2`` (quorum ``{p2, p3,
    p4}``) run after ``W(v3)`` completed.
    """
    cluster = SimCluster(
        protocol=algorithm, num_processes=5,
        seed=3 if seed is None else seed, include_broken=True
    )
    cluster.start()
    writer = 4

    cluster.write_sync(writer, "v1")

    # -- W(v2): second round reaches only p0 and p1; writer crashes. ------
    w2 = cluster.write(writer, "v2")
    remove_w2 = cluster.network.add_filter(
        lambda src, dst, msg: (
            isinstance(msg, WriteRequest) and msg.op == w2.op and dst not in (0, 1)
        )
    )
    ok = cluster.run_until(
        lambda: cluster.node(0).protocol.durable_tag.sn >= 2
        and cluster.node(1).protocol.durable_tag.sn >= 2,
        timeout=1.0,
    )
    if not ok:
        raise ReproError("p0/p1 never adopted the interrupted W(v2)")
    cluster.crash(writer)
    assert w2.aborted
    remove_w2()
    cluster.recover(writer, wait=True)

    # -- W(v3): the query quorum must avoid the adopters of v2. -----------
    cluster.network.block(0, writer)
    cluster.network.block(1, writer)
    w3 = cluster.write(writer, "v3")
    ok = cluster.run_until(lambda: w3.settled, timeout=1.0)
    if not ok:
        raise ReproError("W(v3) did not complete")
    cluster.network.heal_all()

    # -- R1 at p0: quorum {p0, p1, p2}. ------------------------------------
    cluster.network.block(3, 0)
    cluster.network.block(4, 0)
    r1 = cluster.wait(cluster.read(0))
    cluster.network.heal_all()

    # -- R2 at p2: quorum {p2, p3, p4}. ------------------------------------
    cluster.network.block(0, 2)
    cluster.network.block(1, 2)
    r2 = cluster.wait(cluster.read(2))
    cluster.network.heal_all()

    history = cluster.history
    return LowerBoundRun(
        scenario="rho1",
        algorithm=algorithm,
        read_results=[r1.result, r2.result],
        read_causal_logs=[r1.causal_logs, r2.causal_logs],
        history=history,
        persistent_verdict=check_persistent_atomicity(history),
        transient_verdict=check_transient_atomicity(history),
    )


def run_rho4(
    algorithm: str = "persistent", seed: Optional[int] = None
) -> LowerBoundRun:
    """Run rho_4 of the Theorem 2 proof (Figure 3), on 3 processes.

    ``p0`` writes ``v1`` (complete) and then ``v2``, whose second round
    reaches only ``p2`` and stays open.  The reader ``p1`` reads with
    quorum ``{p1, p2}`` (sees ``v2``), crashes, recovers, and reads
    again with quorum ``{p0, p1}``.  A reader that logged -- the
    algorithms' read write-back logs ``v2`` at a majority including the
    reader itself -- returns ``v2`` again; a log-free reader forgets
    and returns ``v1``, an inversion that violates transient atomicity.
    """
    cluster = SimCluster(
        protocol=algorithm, num_processes=3,
        seed=5 if seed is None else seed, include_broken=True
    )
    cluster.start()

    cluster.write_sync(0, "v1")

    # -- W(v2): reaches only p2, and stays open (no crash of the writer:
    # in run rho_4 the second write is merely in progress).
    w2 = cluster.write(0, "v2")
    remove_w2 = cluster.network.add_filter(
        lambda src, dst, msg: (
            isinstance(msg, WriteRequest) and msg.op == w2.op and dst != 2
        )
    )
    ok = cluster.run_until(
        lambda: cluster.node(2).protocol.durable_tag.sn >= 2, timeout=1.0
    )
    if not ok:
        raise ReproError("p2 never adopted W(v2)")

    # -- R1 at p1: quorum {p1, p2} sees v2. --------------------------------
    cluster.network.block(0, 1)
    r1 = cluster.wait(cluster.read(1))
    cluster.network.unblock(0, 1)

    # -- reader crashes and recovers. --------------------------------------
    cluster.crash(1)
    cluster.recover(1, wait=True)

    # -- R2 at p1: quorum {p0, p1}. -----------------------------------------
    cluster.network.block(2, 1)
    r2 = cluster.wait(cluster.read(1))
    cluster.network.heal_all()

    # -- let the open W(v2) finish so the history is mostly complete. ------
    remove_w2()
    cluster.wait(w2)

    history = cluster.history
    return LowerBoundRun(
        scenario="rho4",
        algorithm=algorithm,
        read_results=[r1.result, r2.result],
        read_causal_logs=[r1.causal_logs, r2.causal_logs],
        history=history,
        persistent_verdict=check_persistent_atomicity(history),
        transient_verdict=check_transient_atomicity(history),
    )


def run_rho2(
    algorithm: str = "persistent", seed: Optional[int] = None
) -> LowerBoundRun:
    """Run rho_2 (Figure 3): crash-recovered reader sees v1 -- legal.

    ``W(v2)`` is in progress and invisible to the reader's quorum; the
    reader (after a crash/recovery) reads ``v1``.  The run satisfies
    atomicity; it exists to pin down that the *combination* in rho_4 is
    what becomes contradictory.
    """
    cluster = SimCluster(
        protocol=algorithm, num_processes=3,
        seed=7 if seed is None else seed, include_broken=True
    )
    cluster.start()
    cluster.write_sync(0, "v1")
    w2 = cluster.write(0, "v2")
    remove_w2 = cluster.network.add_filter(
        lambda src, dst, msg: (
            isinstance(msg, WriteRequest) and msg.op == w2.op and dst != 2
        )
    )
    cluster.crash(1)
    cluster.recover(1, wait=True)
    cluster.network.block(2, 1)
    r1 = cluster.wait(cluster.read(1))
    cluster.network.heal_all()
    remove_w2()
    cluster.wait(w2)
    history = cluster.history
    return LowerBoundRun(
        scenario="rho2",
        algorithm=algorithm,
        read_results=[r1.result],
        read_causal_logs=[r1.causal_logs],
        history=history,
        persistent_verdict=check_persistent_atomicity(history),
        transient_verdict=check_transient_atomicity(history),
    )


def run_rho3(
    algorithm: str = "persistent", seed: Optional[int] = None
) -> LowerBoundRun:
    """Run rho_3 (Figure 3): reader sees v2 before crashing -- legal."""
    cluster = SimCluster(
        protocol=algorithm, num_processes=3,
        seed=9 if seed is None else seed, include_broken=True
    )
    cluster.start()
    cluster.write_sync(0, "v1")
    w2 = cluster.write(0, "v2")
    remove_w2 = cluster.network.add_filter(
        lambda src, dst, msg: (
            isinstance(msg, WriteRequest) and msg.op == w2.op and dst != 2
        )
    )
    ok = cluster.run_until(
        lambda: cluster.node(2).protocol.durable_tag.sn >= 2, timeout=1.0
    )
    if not ok:
        raise ReproError("p2 never adopted W(v2)")
    cluster.network.block(0, 1)
    r1 = cluster.wait(cluster.read(1))
    cluster.network.heal_all()
    cluster.crash(1)
    cluster.recover(1, wait=True)
    remove_w2()
    cluster.wait(w2)
    history = cluster.history
    return LowerBoundRun(
        scenario="rho3",
        algorithm=algorithm,
        read_results=[r1.result],
        read_causal_logs=[r1.causal_logs],
        history=history,
        persistent_verdict=check_persistent_atomicity(history),
        transient_verdict=check_transient_atomicity(history),
    )


def format_lower_bounds(runs: List[LowerBoundRun]) -> str:
    """Render the adversarial-run outcomes as a table."""
    header = (
        f"{'run':<6s} {'algorithm':<20s} {'reads':<16s} "
        f"{'persistent':>10s} {'transient':>9s}"
    )
    lines = [header, "-" * len(header)]
    for run in runs:
        reads = ",".join(str(r) for r in run.read_results)
        lines.append(
            f"{run.scenario:<6s} {run.algorithm:<20s} {reads:<16s} "
            f"{str(bool(run.persistent_verdict)):>10s} "
            f"{str(bool(run.transient_verdict)):>9s}"
        )
    return "\n".join(lines)
