"""Recovery-time SLO harness: the ``repro recovery-bench`` command.

The robustness claim checkpoints exist to back: with periodic
checkpoints and log compaction on, a process's recovery cost is
bounded by what accumulated since the last checkpoint -- flat in the
run's length -- while without them it scans and replays a log that
grows linearly with every operation ever logged.

Each point of the sweep runs a closed-loop workload of ``ops``
operations on a 5-process persistent cluster with recovery-scan
billing on, lets the cluster idle for a few checkpoint intervals (the
checkpointer captures idle slots, so the final snapshot catches up),
then crashes and recovers process 0 and reads off:

* the un-compacted log left on process 0 (``log_records`` /
  ``log_bytes`` -- the ``storage.footprint_bytes`` gauge's input), and
* the virtual-seconds recovery time (scan + replay) the recovery paid.

The two arms -- ``checkpoint_interval`` set vs ``None`` -- differ only
in that knob.  Results merge into ``BENCH_engine.json`` as the
``recovery`` axis (additive: schema ``repro-bench/4``), and CI runs
the ``--quick`` sweep so every PR records the flat-vs-linear contrast
instead of asserting a brittle absolute threshold.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Operation budgets swept per arm.
RECOVERY_OPS_QUICK = (100, 200)
RECOVERY_OPS_FULL = (200, 400, 800)

#: Virtual seconds between checkpoints on the checkpointing arm.
CHECKPOINT_INTERVAL = 1e-3

#: Idle virtual time before the crash: a few intervals, so the
#: checkpointer (which only captures idle slots) has caught up and the
#: measured footprint is the steady-state one, not a mid-burst one.
IDLE_BEFORE_CRASH = 10 * CHECKPOINT_INTERVAL

NUM_PROCESSES = 5
VICTIM = 0


@dataclass
class RecoveryPoint:
    """One (ops, checkpointing arm) measurement."""

    ops: int
    checkpointing: bool
    log_records: int
    log_bytes: int
    recovery_time_s: float
    checkpoints_committed: int
    compactions: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ops": self.ops,
            "checkpointing": self.checkpointing,
            "log_records": self.log_records,
            "log_bytes": self.log_bytes,
            "recovery_time_s": self.recovery_time_s,
            "checkpoints_committed": self.checkpoints_committed,
            "compactions": self.compactions,
        }


@dataclass
class RecoveryReport:
    """Everything one ``repro recovery-bench`` invocation measured."""

    quick: bool
    seed: int
    rows: List[RecoveryPoint] = field(default_factory=list)

    def arm(self, checkpointing: bool) -> List[RecoveryPoint]:
        return [row for row in self.rows if row.checkpointing is checkpointing]

    def growth(self, checkpointing: bool) -> Optional[float]:
        """Recovery-time ratio between the largest and smallest budget.

        ~1.0 means flat in ops; ~(max_ops / min_ops) means linear.
        ``None`` when the arm has fewer than two points.
        """
        arm = self.arm(checkpointing)
        if len(arm) < 2:
            return None
        lo = min(arm, key=lambda row: row.ops)
        hi = max(arm, key=lambda row: row.ops)
        if lo.recovery_time_s <= 0:
            return None
        return hi.recovery_time_s / lo.recovery_time_s

    def payload(self) -> Dict[str, Any]:
        return {
            "quick": self.quick,
            "seed": self.seed,
            "num_processes": NUM_PROCESSES,
            "victim": VICTIM,
            "checkpoint_interval": CHECKPOINT_INTERVAL,
            "rows": [row.as_dict() for row in self.rows],
            "growth": {
                "checkpointing": self.growth(True),
                "no_checkpointing": self.growth(False),
            },
        }


def run_recovery_point(
    ops: int, checkpointing: bool, seed: int = 0
) -> RecoveryPoint:
    """Measure one sweep point (see the module docstring)."""
    from repro.api import open_cluster
    from repro.workloads.generators import run_closed_loop

    interval = CHECKPOINT_INTERVAL if checkpointing else None
    with open_cluster(
        backend="sim",
        protocol="persistent",
        num_processes=NUM_PROCESSES,
        seed=seed,
        checkpoint_interval=interval,
        recovery_scan=True,
    ) as cluster:
        sim = cluster.sim
        run_closed_loop(
            sim,
            operations_per_client=ops // NUM_PROCESSES,
            read_fraction=0.5,
            seed=seed,
            poll_every=32,
        )
        cluster.run(IDLE_BEFORE_CRASH)
        node = sim.nodes[VICTIM]
        log_records = node.storage.log_records
        log_bytes = node.storage.log_bytes
        cluster.crash(VICTIM)
        cluster.recover(VICTIM, wait=True)
        return RecoveryPoint(
            ops=ops,
            checkpointing=checkpointing,
            log_records=log_records,
            log_bytes=log_bytes,
            recovery_time_s=node.recovery_times[-1],
            checkpoints_committed=node.checkpoints_committed,
            compactions=node.storage.compactions,
        )


def run_recovery_bench(quick: bool = False, seed: Optional[int] = None) -> RecoveryReport:
    """Sweep ops x {checkpointing on, off}; virtual-time measurements.

    Every number is deterministic in (sweep, seed) -- virtual seconds
    and log counters, no wall clocks -- so repeats are pointless and
    the sweep runs each point once.
    """
    seed = 0 if seed is None else seed
    report = RecoveryReport(quick=quick, seed=seed)
    for ops in RECOVERY_OPS_QUICK if quick else RECOVERY_OPS_FULL:
        for checkpointing in (True, False):
            report.rows.append(run_recovery_point(ops, checkpointing, seed=seed))
    return report


def write_recovery_file(
    report: RecoveryReport, output_dir: str = "."
) -> str:
    """Merge the ``recovery`` axis into ``BENCH_engine.json``.

    The engine file is the natural home (recovery time is an engine
    property, not a new suite) and the axis is additive: an existing
    file keeps every other key and is re-stamped with the current
    schema; a missing one is created with just this axis.
    """
    from repro.experiments.bench import SCHEMA, load_bench_payload

    path = Path(output_dir) / "BENCH_engine.json"
    if path.exists():
        payload = load_bench_payload(path)
    else:
        payload = {"suite": "engine", "python": platform.python_version()}
    payload["schema"] = SCHEMA
    payload["recovery"] = report.payload()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return str(path)


def format_recovery_bench(report: RecoveryReport) -> str:
    """Render the sweep as the table the CLI prints."""
    lines = [
        f"{'ops':>6}  {'checkpointing':>13}  {'log records':>11}  "
        f"{'log bytes':>10}  {'recovery':>10}  {'ckpts':>5}"
    ]
    lines.append("-" * len(lines[0]))
    for row in report.rows:
        lines.append(
            f"{row.ops:>6}  {'on' if row.checkpointing else 'off':>13}  "
            f"{row.log_records:>11}  {row.log_bytes:>10}  "
            f"{row.recovery_time_s * 1e3:>8.2f}ms  "
            f"{row.checkpoints_committed:>5}"
        )
    lines.append("")
    on, off = report.growth(True), report.growth(False)
    if on is not None and off is not None:
        lines.append(
            f"recovery-time growth, smallest -> largest budget: "
            f"{on:.2f}x with checkpointing, {off:.2f}x without"
        )
        lines.append(
            "(flat vs linear: checkpointing bounds recovery by the "
            "checkpoint interval, not the run length)"
        )
    return "\n".join(lines)
