"""Figure 6: write latency vs. cluster size and vs. payload size.

The paper's first experiment (Figure 6, top) writes a 4-byte integer 50
times on N = 3..9 workstations and plots the average write time for
three algorithms: atomic crash-stop, transient atomic crash-recovery
and persistent atomic crash-recovery.  At N = 5 it reports roughly
500 / 700 / 900 microseconds: the transient algorithm pays one log
latency (lambda ~ 0.2 ms) over the crash-stop baseline and the
persistent algorithm two, while latency is essentially flat in N
(majority round trips run in parallel).

The second experiment (Figure 6, bottom) fixes N = 5 and sweeps the
payload size up to the 64 KB UDP limit; write time grows linearly
because both network transmission and disk logging are linear in size.

These harnesses reproduce both sweeps on the simulator with the
calibrated delta/lambda.  Only reads would be uninteresting: "in a run
without any crashes a read does not log, meaning that the execution
times would be the same for each algorithm" -- which
:func:`read_latency_check` verifies instead of plotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cluster import SimCluster
from repro.common.config import UDP_MAX_PAYLOAD
from repro.metrics import LatencyStats

#: The three algorithms of Figure 6, in the paper's legend order.
FIGURE6_ALGORITHMS = ("crash-stop", "transient", "persistent")

#: Cluster sizes of the top graph (odd sizes; a majority quorum only
#: changes at odd N).
FIGURE6_SIZES = (3, 5, 7, 9)

#: Payload sweep of the bottom graph, bytes.  The top end leaves room
#: for the 32-byte message header within the 64 KB UDP datagram limit.
FIGURE6_PAYLOADS = (4, 1024, 4096, 8192, 16384, 32768, 49152, 65000)

#: Writes per configuration, as in the paper's experiment.
FIGURE6_REPEATS = 50


@dataclass(frozen=True)
class Figure6Point:
    """One point of either graph."""

    algorithm: str
    num_processes: int
    payload: int
    write_latency: LatencyStats

    @property
    def mean_us(self) -> float:
        return self.write_latency.mean_us


def _measure_writes(
    algorithm: str,
    num_processes: int,
    payload: int,
    repeats: int,
    seed: int,
) -> Figure6Point:
    """Run ``repeats`` sequential writes and collect latency stats."""
    cluster = SimCluster(
        protocol=algorithm, num_processes=num_processes, seed=seed, capture_trace=False
    )
    cluster.start()
    samples: List[float] = []
    for i in range(repeats):
        handle = cluster.write_sync(0, b"x" * payload)
        assert handle.latency is not None
        samples.append(handle.latency)
    return Figure6Point(
        algorithm=algorithm,
        num_processes=num_processes,
        payload=payload,
        write_latency=LatencyStats.from_samples(samples),
    )


def figure6_top(
    sizes: Sequence[int] = FIGURE6_SIZES,
    algorithms: Sequence[str] = FIGURE6_ALGORITHMS,
    repeats: int = FIGURE6_REPEATS,
    payload: int = 4,
    seed: int = 0,
) -> Dict[str, List[Figure6Point]]:
    """Average write time vs. number of workstations (Figure 6, top)."""
    series: Dict[str, List[Figure6Point]] = {}
    for algorithm in algorithms:
        series[algorithm] = [
            _measure_writes(algorithm, n, payload, repeats, seed) for n in sizes
        ]
    return series


def figure6_bottom(
    payloads: Sequence[int] = FIGURE6_PAYLOADS,
    algorithms: Sequence[str] = FIGURE6_ALGORITHMS,
    num_processes: int = 5,
    repeats: int = FIGURE6_REPEATS,
    seed: int = 0,
) -> Dict[str, List[Figure6Point]]:
    """Average write time vs. payload size at N = 5 (Figure 6, bottom)."""
    for payload in payloads:
        if payload > UDP_MAX_PAYLOAD:
            raise ValueError(
                f"payload {payload} exceeds the 64 KB UDP limit the paper "
                f"identifies as the maximum write size"
            )
    series: Dict[str, List[Figure6Point]] = {}
    for algorithm in algorithms:
        series[algorithm] = [
            _measure_writes(algorithm, num_processes, payload, repeats, seed)
            for payload in payloads
        ]
    return series


def read_latency_check(
    algorithms: Sequence[str] = FIGURE6_ALGORITHMS,
    num_processes: int = 5,
    repeats: int = 20,
    seed: int = 0,
) -> Dict[str, LatencyStats]:
    """Average crash-free read latency per algorithm.

    Supports the paper's remark that read times are identical across
    the three algorithms because crash-free reads never log.
    """
    results: Dict[str, LatencyStats] = {}
    for algorithm in algorithms:
        cluster = SimCluster(
            protocol=algorithm,
            num_processes=num_processes,
            seed=seed,
            capture_trace=False,
        )
        cluster.start()
        cluster.write_sync(0, b"seed")
        samples: List[float] = []
        for _ in range(repeats):
            handle = cluster.wait(cluster.read(1))
            assert handle.latency is not None
            samples.append(handle.latency)
        results[algorithm] = LatencyStats.from_samples(samples)
    return results


# -- formatting ---------------------------------------------------------------


def format_figure6_top(series: Dict[str, List[Figure6Point]]) -> str:
    """Render the top graph as the table of its data points."""
    algorithms = list(series)
    sizes = [point.num_processes for point in series[algorithms[0]]]
    header = "N (workstations) | " + " | ".join(
        f"{name:>12s} (us)" for name in algorithms
    )
    rows = [header, "-" * len(header)]
    for index, n in enumerate(sizes):
        cells = " | ".join(
            f"{series[name][index].mean_us:17.1f}" for name in algorithms
        )
        rows.append(f"{n:16d} | {cells}")
    return "\n".join(rows)


def format_figure6_bottom(series: Dict[str, List[Figure6Point]]) -> str:
    """Render the bottom graph as the table of its data points."""
    algorithms = list(series)
    payloads = [point.payload for point in series[algorithms[0]]]
    header = "payload (bytes) | " + " | ".join(
        f"{name:>12s} (us)" for name in algorithms
    )
    rows = [header, "-" * len(header)]
    for index, payload in enumerate(payloads):
        cells = " | ".join(
            f"{series[name][index].mean_us:17.1f}" for name in algorithms
        )
        rows.append(f"{payload:15d} | {cells}")
    return "\n".join(rows)


def linearity_of(points: List[Figure6Point]) -> Tuple[float, float, float]:
    """Least-squares fit ``latency_us = a * payload + b`` plus R^2.

    Used to verify the bottom graph's claim that latency grows linearly
    with payload size.
    """
    xs = [float(point.payload) for point in points]
    ys = [point.mean_us for point in points]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx if sxx else 0.0
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 - ss_res / ss_tot if ss_tot else 1.0
    return slope, intercept, r_squared
