"""Section VI: does emulating weaker-than-atomic memory pay off?

The paper's concluding remarks argue that in a system where logging
dominates, safe/regular emulations buy nothing over transient atomic
memory: every meaningful crash-recovery write still needs one causal
log, and crash-free atomic reads do not log anyway -- the regular
read's only saving is one message round trip.

This experiment measures exactly that trade-off, plus the price paid
for it (loss of atomicity), on three axes:

1. **costs**: per-operation latency and causal logs for the regular
   emulation vs. the transient and persistent ones;
2. **the saving**: regular reads take 2 communication steps (2 delta),
   atomic reads 4;
3. **the loss**: a steered schedule produces a new/old inversion on
   the regular emulation -- accepted by the regularity checker,
   rejected by the atomicity checker -- while the same schedule on the
   transient emulation stays atomic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.cluster import SimCluster
from repro.common.errors import ReproError
from repro.history.checker import check_transient_atomicity
from repro.history.regular_checker import check_regularity, check_safety
from repro.metrics import LatencyStats
from repro.protocol.messages import WriteRequest

COMPARED = ("regular", "transient", "persistent")


@dataclass(frozen=True)
class CostRow:
    """Measured costs of one algorithm."""

    algorithm: str
    write_latency: LatencyStats
    read_latency: LatencyStats
    write_causal_logs: int
    read_causal_logs: int


def measure_costs(
    algorithms=COMPARED, num_processes: int = 5, repeats: int = 30, seed: int = 0
) -> List[CostRow]:
    """Crash-free sequential costs per algorithm (writer = process 0)."""
    rows: List[CostRow] = []
    for algorithm in algorithms:
        cluster = SimCluster(
            protocol=algorithm, num_processes=num_processes, seed=seed,
            capture_trace=False,
        )
        cluster.start()
        write_samples: List[float] = []
        write_logs = 0
        for i in range(repeats):
            handle = cluster.write_sync(0, f"v{i}")
            write_samples.append(handle.latency)
            write_logs = max(write_logs, handle.causal_logs)
        read_samples: List[float] = []
        read_logs = 0
        for _ in range(repeats):
            handle = cluster.wait(cluster.read(1))
            read_samples.append(handle.latency)
            read_logs = max(read_logs, handle.causal_logs)
        rows.append(
            CostRow(
                algorithm=algorithm,
                write_latency=LatencyStats.from_samples(write_samples),
                read_latency=LatencyStats.from_samples(read_samples),
                write_causal_logs=write_logs,
                read_causal_logs=read_logs,
            )
        )
    return rows


@dataclass
class InversionRun:
    """Outcome of the new/old inversion schedule on one algorithm."""

    algorithm: str
    read_results: List[Any]
    atomic: bool
    regular: bool
    safe: bool


def new_old_inversion_run(
    algorithm: str, seed: Optional[int] = None
) -> InversionRun:
    """Two reads racing one write, quorums steered apart.

    ``W(new)``'s second round reaches only ``p2``.  ``R1`` (at ``p1``,
    quorum ``{p1, p2}``) observes ``new``; ``R2`` (at ``p1``, quorum
    ``{p0, p1}``) runs next.  A regular register may answer ``old`` --
    the inversion -- because the write is still in progress; an atomic
    register's first read wrote ``new`` back to a majority, so the
    second read must return it.
    """
    cluster = SimCluster(
        protocol=algorithm, num_processes=3,
        seed=21 if seed is None else seed, include_broken=True
    )
    cluster.start()
    cluster.write_sync(0, "old")

    w = cluster.write(0, "new")
    remove = cluster.network.add_filter(
        lambda src, dst, msg: (
            isinstance(msg, WriteRequest) and msg.op == w.op and dst != 2
        )
    )
    ok = cluster.run_until(
        lambda: cluster.node(2).protocol.durable_tag.sn >= 2, timeout=1.0
    )
    if not ok:
        raise ReproError("p2 never adopted the in-progress write")

    cluster.network.block(0, 1)
    r1 = cluster.wait(cluster.read(1))
    cluster.network.unblock(0, 1)

    cluster.network.block(2, 1)
    r2 = cluster.wait(cluster.read(1))
    cluster.network.heal_all()

    remove()
    cluster.wait(w)

    history = cluster.history
    return InversionRun(
        algorithm=algorithm,
        read_results=[r1.result, r2.result],
        atomic=bool(check_transient_atomicity(history)),
        regular=bool(check_regularity(history)),
        safe=bool(check_safety(history)),
    )


def format_costs(rows: List[CostRow]) -> str:
    header = (
        f"{'algorithm':<12s} {'write us':>9s} {'read us':>9s} "
        f"{'W logs':>7s} {'R logs':>7s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.algorithm:<12s} {row.write_latency.mean_us:>9.1f} "
            f"{row.read_latency.mean_us:>9.1f} "
            f"{row.write_causal_logs:>7d} {row.read_causal_logs:>7d}"
        )
    return "\n".join(lines)


def format_inversions(runs: List[InversionRun]) -> str:
    header = (
        f"{'algorithm':<12s} {'reads':<12s} "
        f"{'atomic':>7s} {'regular':>8s} {'safe':>5s}"
    )
    lines = [header, "-" * len(header)]
    for run in runs:
        lines.append(
            f"{run.algorithm:<12s} {','.join(map(str, run.read_results)):<12s} "
            f"{str(run.atomic):>7s} {str(run.regular):>8s} {str(run.safe):>5s}"
        )
    return "\n".join(lines)
