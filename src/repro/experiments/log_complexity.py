"""Measured causal-log complexity vs. the paper's bounds (Section IV).

The paper's central claims, as a measurable table:

=============  ==============  =============
algorithm      causal logs per causal logs per
               write           read
=============  ==============  =============
crash-stop     0               0
transient      1               <= 1 (0 crash-free)
persistent     2               <= 1 (0 crash-free)
naive          4               3
=============  ==============  =============

The harness runs each algorithm under three workloads -- crash-free
sequential, concurrent mixed, and crashy -- and reports the measured
min/mean/max causal logs per operation kind, measured by the
engine-level accounting of :mod:`repro.history.causal_logs` (protocols
cannot self-report).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cluster import SimCluster
from repro.sim.failures import RandomCrashPlan
from repro.workloads.generators import run_closed_loop

#: Expected worst-case causal logs per (algorithm, kind).
EXPECTED_BOUNDS: Dict[str, Dict[str, int]] = {
    "crash-stop": {"write": 0, "read": 0},
    "abd": {"write": 0, "read": 0},
    "transient": {"write": 1, "read": 1},
    "persistent": {"write": 2, "read": 1},
    "naive": {"write": 4, "read": 3},
}

#: Expected exact counts for crash-free sequential writes.
EXPECTED_SEQUENTIAL_WRITE: Dict[str, int] = {
    "crash-stop": 0,
    "abd": 0,
    "transient": 1,
    "persistent": 2,
    "naive": 4,
}


@dataclass(frozen=True)
class LogComplexityRow:
    """Measured causal logs for one algorithm/workload/kind."""

    algorithm: str
    workload: str
    kind: str
    minimum: int
    mean: float
    maximum: int
    samples: int
    bound: Optional[int]

    @property
    def within_bound(self) -> bool:
        return self.bound is None or self.maximum <= self.bound


def _rows_from_cluster(
    cluster: SimCluster, algorithm: str, workload: str
) -> List[LogComplexityRow]:
    rows: List[LogComplexityRow] = []
    for kind, values in cluster.causal_log_counts().items():
        if not values:
            continue
        rows.append(
            LogComplexityRow(
                algorithm=algorithm,
                workload=workload,
                kind=kind,
                minimum=min(values),
                mean=sum(values) / len(values),
                maximum=max(values),
                samples=len(values),
                bound=EXPECTED_BOUNDS.get(algorithm, {}).get(kind),
            )
        )
    return rows


def measure_log_complexity(
    algorithms: Sequence[str] = ("crash-stop", "transient", "persistent", "naive"),
    num_processes: int = 5,
    operations: int = 30,
    seed: int = 0,
) -> List[LogComplexityRow]:
    """Measure causal logs per operation under three workloads."""
    rows: List[LogComplexityRow] = []
    for algorithm in algorithms:
        # Workload 1: crash-free sequential writes then reads.
        cluster = SimCluster(protocol=algorithm, num_processes=num_processes, seed=seed)
        cluster.start()
        for i in range(operations // 2):
            cluster.write_sync(0, f"seq-{i}")
        for _ in range(operations // 2):
            cluster.wait(cluster.read(1))
        rows.extend(_rows_from_cluster(cluster, algorithm, "sequential"))

        # Workload 2: concurrent mixed clients on every process.
        cluster = SimCluster(protocol=algorithm, num_processes=num_processes, seed=seed)
        cluster.start()
        run_closed_loop(
            cluster,
            operations_per_client=max(4, operations // num_processes),
            read_fraction=0.5,
            seed=seed,
        )
        rows.extend(_rows_from_cluster(cluster, algorithm, "concurrent"))

        # Workload 3: concurrent clients with random crash/recovery
        # (crash-recovery algorithms only).
        if algorithm not in ("crash-stop", "abd"):
            cluster = SimCluster(
                protocol=algorithm, num_processes=num_processes, seed=seed
            )
            cluster.start()
            plan = RandomCrashPlan(
                num_processes=num_processes,
                horizon=0.2,
                seed=seed + 1,
                crash_rate=0.6,
                mean_downtime=0.02,
            )
            cluster.install_schedule(plan.generate())
            run_closed_loop(
                cluster,
                operations_per_client=max(4, operations // num_processes),
                read_fraction=0.5,
                seed=seed,
            )
            rows.extend(_rows_from_cluster(cluster, algorithm, "crashy"))
    return rows


def format_log_complexity(rows: List[LogComplexityRow]) -> str:
    """Render the measurement table."""
    header = (
        f"{'algorithm':<12s} {'workload':<11s} {'op':<6s} "
        f"{'min':>4s} {'mean':>6s} {'max':>4s} {'bound':>6s} {'ok':>3s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        bound = "-" if row.bound is None else str(row.bound)
        ok = "yes" if row.within_bound else "NO"
        lines.append(
            f"{row.algorithm:<12s} {row.workload:<11s} {row.kind:<6s} "
            f"{row.minimum:>4d} {row.mean:>6.2f} {row.maximum:>4d} "
            f"{bound:>6s} {ok:>3s}"
        )
    return "\n".join(lines)
