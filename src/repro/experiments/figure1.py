"""Figure 1: runs of persistent and transient atomic memory emulations.

The paper's Figure 1 contrasts two runs of the same client behaviour:

* process ``p0`` writes ``v1``, crashes in the middle of writing
  ``v2``, recovers, and writes ``v3``;
* process ``p1`` performs two reads concurrent with the third write.

Under the **persistent** algorithm, recovery finishes the interrupted
write (the ``writing`` pre-log is replayed), so by the time the reads
run, ``v2`` is at a majority: both reads return ``v2`` (the schedule
holds ``W(v3)`` back until after them) and the history satisfies both
criteria -- the memory behaves as if no crash happened.

Under the **transient** algorithm nothing is replayed: the interrupted
write "overlaps" the next one.  The first read misses the single copy
of ``v2`` and returns ``v1``; the second read finds it and returns
``v2`` -- both *after* ``W(v3)`` was invoked.  That history weakly
completes to ``W(v1) R(v1) W(v2) R(v2) W(v3)`` (the paper's ``H'_1``):
transient atomic, but **not** persistent atomic, because a read after
``W(v3)``'s invocation returned ``v1`` and a later read returned ``v2``
(property P1 of the Theorem 1 proof).

The schedule is reproduced deterministically with message filters:
the interrupted ``W(v2)`` reaches only ``p2``, the recovered writer's
``W(v3)`` second round is held back during the reads, and the first
read's quorum is steered away from ``p2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.cluster import SimCluster
from repro.common.errors import ReproError
from repro.history.checker import (
    AtomicityVerdict,
    check_persistent_atomicity,
    check_transient_atomicity,
)
from repro.history.history import History
from repro.protocol.messages import WriteRequest
from repro.protocol.quorum import PhaseClock


@dataclass
class Figure1Run:
    """Outcome of one scripted run."""

    algorithm: str
    read_results: List[Any]
    history: History
    persistent_verdict: AtomicityVerdict
    transient_verdict: AtomicityVerdict


def _interrupted_write_scenario(
    algorithm: str, seed: Optional[int] = None
) -> Figure1Run:
    """Drive the Figure 1 schedule against ``algorithm``.

    Processes: p0 = writer, p1 = reader, p2 = the only process that
    receives the interrupted ``W(v2)``.
    """
    cluster = SimCluster(
        protocol=algorithm, num_processes=3, seed=1 if seed is None else seed
    )
    cluster.start()
    writer = cluster.node(0)

    # -- W(v1): completes normally at every process. ----------------------
    cluster.write_sync(0, "v1")

    # -- W(v2): second round reaches only p2; writer crashes mid-write. ---
    w2 = cluster.write(0, "v2")
    remove_w2_filter = cluster.network.add_filter(
        lambda src, dst, msg: (
            isinstance(msg, WriteRequest) and msg.op == w2.op and dst != 2
        )
    )
    # Let p2 durably log v2, then crash the writer before it can ever
    # assemble a majority of acknowledgments.
    ok = cluster.run_until(
        lambda: cluster.node(2).protocol.durable_tag.sn >= 2, timeout=1.0
    )
    if not ok:
        raise ReproError("p2 never adopted the interrupted W(v2)")
    cluster.crash(0)
    assert w2.aborted
    remove_w2_filter()

    # -- recovery: persistent replays v2, transient only bumps `rec`. -----
    cluster.recover(0, wait=True)

    # -- W(v3): keep p2 out of the query quorum (the transient writer
    # must not learn v2's sequence number through it), then hold the
    # second round back so the reads below run concurrently with the
    # write, as in Figure 1.
    cluster.network.block(2, 0)
    w3 = cluster.write(0, "v3")
    # The filter must be in place before the writer's second round
    # starts broadcasting, i.e. immediately at invocation time.
    remove_w3_filter = cluster.network.add_filter(
        lambda src, dst, msg: isinstance(msg, WriteRequest) and msg.op == w3.op
    )
    ok = cluster.run_until(
        lambda: writer.protocol.phase == PhaseClock.PROPAGATE, timeout=1.0
    )
    if not ok:
        raise ReproError("W(v3) never reached its propagate round")
    cluster.network.unblock(2, 0)

    # -- R1 by p1: quorum {p0, p1} -- p2's answer is withheld, so the
    # single copy of v2 stays invisible.
    cluster.network.block(2, 1)
    r1 = cluster.wait(cluster.read(1))

    # -- R2 by p1: p2 may answer now (p0's answers are withheld instead,
    # so the quorum is {p1, p2}); if p2 holds v2, v2 surfaces.
    cluster.network.unblock(2, 1)
    cluster.network.block(0, 1)
    r2 = cluster.wait(cluster.read(1))
    cluster.network.unblock(0, 1)

    # -- release W(v3) and let it finish. ----------------------------------
    remove_w3_filter()
    cluster.network.heal_all()
    cluster.wait(w3)

    history = cluster.history
    return Figure1Run(
        algorithm=algorithm,
        read_results=[r1.result, r2.result],
        history=history,
        persistent_verdict=check_persistent_atomicity(history),
        transient_verdict=check_transient_atomicity(history),
    )


def run_persistent(seed: Optional[int] = None) -> Figure1Run:
    """The left-hand run of Figure 1 (persistent atomicity)."""
    return _interrupted_write_scenario("persistent", seed=seed)


def run_transient(seed: Optional[int] = None) -> Figure1Run:
    """The right-hand run of Figure 1 (transient atomicity)."""
    return _interrupted_write_scenario("transient", seed=seed)


def format_figure1(persistent: Figure1Run, transient: Figure1Run) -> str:
    """Summarize both runs the way the paper's figure does."""
    lines = [
        "Figure 1: W(v1); crash during W(v2); recover; W(v3) with two",
        "concurrent reads by another process.",
        "",
        f"{'algorithm':<12s} {'R1':>5s} {'R2':>5s} "
        f"{'persistent-atomic':>18s} {'transient-atomic':>17s}",
    ]
    for run in (persistent, transient):
        lines.append(
            f"{run.algorithm:<12s} {str(run.read_results[0]):>5s} "
            f"{str(run.read_results[1]):>5s} "
            f"{str(bool(run.persistent_verdict)):>18s} "
            f"{str(bool(run.transient_verdict)):>17s}"
        )
    return "\n".join(lines)
