"""Engine performance trajectory: the ``repro bench`` harness.

Not a figure from the paper -- this keeps the reproduction honest as a
piece of software, over time.  Each invocation measures the wall-clock
cost of three suites and writes the results to ``BENCH_engine.json``
and ``BENCH_kv.json``:

* **engine** -- the closed-loop simulator benchmark (100 operations on
  5 processes, tracing off) per protocol: simulated operations and
  kernel events per wall-clock second, with p50/p99 over repeats;
* **checker** -- the black-box atomicity checker on a 30-operation
  history and the white-box tag checker on a 2000-operation history;
* **kv** -- the sharded key-value store sweep (wall time alongside the
  simulated-time throughput the CLI already reports).

CI runs ``repro bench --quick`` and uploads the JSON files as
artifacts, so every PR appends a point to the perf trajectory instead
of asserting a brittle absolute threshold.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.metrics import WallClockStats

#: Schema tag written into both files; bump on layout changes.
SCHEMA = "repro-bench/1"

ENGINE_PROTOCOLS = ("crash-stop", "transient", "persistent")
ENGINE_OPERATIONS = 100
ENGINE_PROCESSES = 5


@dataclass
class BenchReport:
    """Everything one ``repro bench`` invocation measured."""

    quick: bool
    repeats: int
    engine: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    checker: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    kv: List[Dict[str, Any]] = field(default_factory=list)

    def engine_payload(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "suite": "engine",
            "quick": self.quick,
            "repeats": self.repeats,
            "python": platform.python_version(),
            "engine": self.engine,
            "checker": self.checker,
        }

    def kv_payload(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "suite": "kv",
            "quick": self.quick,
            "python": platform.python_version(),
            "kv": self.kv,
        }


def _time_runs(fn: Callable[[], Any], repeats: int) -> Tuple[WallClockStats, Any]:
    """Run ``fn`` ``repeats`` times (plus one warmup); time each run."""
    result = fn()  # warmup: imports, allocator, branch caches
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return WallClockStats.from_samples(samples), result


def _bench_engine(repeats: int) -> Dict[str, Dict[str, Any]]:
    from repro.cluster import SimCluster
    from repro.workloads.generators import run_closed_loop

    results: Dict[str, Dict[str, Any]] = {}
    for protocol in ENGINE_PROTOCOLS:

        def run() -> int:
            cluster = SimCluster(
                protocol=protocol,
                num_processes=ENGINE_PROCESSES,
                capture_trace=False,
            )
            cluster.start()
            report = run_closed_loop(
                cluster, operations_per_client=20, read_fraction=0.5, seed=0
            )
            assert report.completed == ENGINE_OPERATIONS
            return cluster.kernel.events_processed

        stats, kernel_events = _time_runs(run, repeats)
        results[protocol] = {
            "operations": ENGINE_OPERATIONS,
            "kernel_events": kernel_events,
            "ops_per_sec": ENGINE_OPERATIONS / stats.p50,
            "kernel_events_per_sec": kernel_events / stats.p50,
            "wall": stats.as_dict(),
        }
    return results


def _bench_checker(repeats: int) -> Dict[str, Dict[str, Any]]:
    from repro.common.ids import OperationId
    from repro.common.timestamps import Tag
    from repro.history.checker import check_persistent_atomicity
    from repro.history.events import Invoke, Reply
    from repro.history.history import History
    from repro.history.recorder import HistoryRecorder
    from repro.history.register_checker import check_tagged_history

    # Black-box checker: sequential alternating write/read history.
    events: List[Any] = []
    value = None
    for i in range(30):
        op = OperationId(pid=i % 3, seq=i)
        if i % 2 == 0:
            value = f"v{i}"
            events.append(
                Invoke(time=2.0 * i, pid=op.pid, op=op, kind="write", value=value)
            )
            events.append(Reply(time=2.0 * i + 1, pid=op.pid, op=op, kind="write"))
        else:
            events.append(Invoke(time=2.0 * i, pid=op.pid, op=op, kind="read"))
            events.append(
                Reply(time=2.0 * i + 1, pid=op.pid, op=op, kind="read", result=value)
            )
    history = History(events)

    def run_blackbox() -> bool:
        verdict = check_persistent_atomicity(history)
        assert verdict.ok
        return verdict.ok

    # White-box checker: 2000 operations with recorded tags, stamped
    # by a deterministic increasing clock.
    clock = [0.0]

    def tick() -> float:
        clock[0] += 1.0
        return clock[0]

    recorder = HistoryRecorder(clock=tick)
    for i in range(1, 1001):
        op = OperationId(pid=0, seq=i)
        tag = Tag(i, 0)
        recorder.record_invoke(op, 0, "write", f"v{i}")
        recorder.record_reply(op, 0, "write")
        recorder.record_tag(op, tag)
        rop = OperationId(pid=1, seq=10_000 + i)
        recorder.record_invoke(rop, 1, "read")
        recorder.record_reply(rop, 1, "read", f"v{i}")
        recorder.record_tag(rop, tag)

    def run_whitebox() -> int:
        result = check_tagged_history(recorder.history, recorder, "persistent")
        assert result.ok
        return result.operations

    blackbox_stats, _ = _time_runs(run_blackbox, repeats)
    whitebox_stats, operations = _time_runs(run_whitebox, repeats)
    return {
        "blackbox_30_ops": {
            "operations": 30,
            "ops_per_sec": 30 / blackbox_stats.p50,
            "wall": blackbox_stats.as_dict(),
        },
        "whitebox_2000_ops": {
            "operations": operations,
            "ops_per_sec": operations / whitebox_stats.p50,
            "wall": whitebox_stats.as_dict(),
        },
    }


def _bench_kv(quick: bool, repeats: int) -> List[Dict[str, Any]]:
    from repro.experiments.kv_bench import run_kv_config

    shard_sweep = (1, 8) if quick else (1, 2, 4, 8)
    operations = 10 if quick else 30
    # A KV config run is the most expensive unit in the harness, so cap
    # its repeats -- but keep the warmup + repeated-sample discipline of
    # the other suites: a single cold measurement would fold import and
    # allocator warmup into whichever sweep row runs first.
    kv_repeats = max(1, min(repeats, 3))
    rows: List[Dict[str, Any]] = []
    for shards in shard_sweep:

        def run():
            return run_kv_config(
                shards, batch_window=0.0, operations_per_client=operations
            )

        stats, row = _time_runs(run, kv_repeats)
        rows.append(
            {
                "shards": row.shards,
                "batch_window": row.batch_window,
                "clients": row.clients,
                "completed": row.completed,
                "sim_throughput_ops_per_sec": row.throughput,
                "wall": stats.as_dict(),
                "wall_ops_per_sec": row.completed / stats.p50,
                "messages_sent": row.messages_sent,
                "atomic": row.atomic,
            }
        )
    return rows


def run_bench(quick: bool = False, repeats: Optional[int] = None) -> BenchReport:
    """Measure every suite; ``quick`` is the CI-sized variant."""
    if repeats is None:
        repeats = 3 if quick else 10
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    report = BenchReport(quick=quick, repeats=repeats)
    report.engine = _bench_engine(repeats)
    report.checker = _bench_checker(repeats)
    report.kv = _bench_kv(quick, repeats)
    return report


def write_bench_files(report: BenchReport, output_dir: str = ".") -> List[str]:
    """Write ``BENCH_engine.json`` and ``BENCH_kv.json``; return paths."""
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, payload in (
        ("BENCH_engine.json", report.engine_payload()),
        ("BENCH_kv.json", report.kv_payload()),
    ):
        path = directory / name
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        paths.append(str(path))
    return paths


def format_bench(report: BenchReport) -> str:
    """Render the measurements as the table the CLI prints."""
    lines = [
        f"{'suite':<10} {'case':<22} {'ops':>6}  {'ops/sec':>12}  "
        f"{'p50':>10}  {'p99':>10}"
    ]
    lines.append("-" * len(lines[0]))

    def row(suite: str, case: str, ops: Any, rate: float, wall: Dict[str, float]):
        lines.append(
            f"{suite:<10} {case:<22} {ops:>6}  {rate:>10,.0f}/s  "
            f"{wall['p50_s'] * 1e3:>8.1f}ms  {wall['p99_s'] * 1e3:>8.1f}ms"
        )

    for protocol, data in report.engine.items():
        row("engine", protocol, data["operations"], data["ops_per_sec"], data["wall"])
    for case, data in report.checker.items():
        row("checker", case, data["operations"], data["ops_per_sec"], data["wall"])
    for entry in report.kv:
        verdict = "atomic" if entry["atomic"] else "NOT ATOMIC"
        row(
            "kv",
            f"{entry['shards']} shards ({verdict})",
            entry["completed"],
            entry["sim_throughput_ops_per_sec"],
            entry["wall"],
        )
    lines.append("")
    lines.append("(kv ops/sec is simulated-time throughput; engine/checker")
    lines.append(" ops/sec are wall-clock; p50/p99 are wall time per run)")
    return "\n".join(lines)
