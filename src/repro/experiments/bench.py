"""Engine performance trajectory: the ``repro bench`` harness.

Not a figure from the paper -- this keeps the reproduction honest as a
piece of software, over time.  Each invocation measures the wall-clock
cost of three suites and writes the results to ``BENCH_engine.json``,
``BENCH_checker.json`` and ``BENCH_kv.json``:

* **engine** -- the closed-loop simulator benchmark (100 operations on
  5 processes, tracing off) per protocol: simulated operations and
  kernel events per wall-clock second, with p50/p99 over repeats;
* **checker** -- the black-box atomicity checker on a 30-operation
  history, and the white-box tag checker at 1k and 10k operations
  (soak scale) for both the persistent and transient criteria;
* **kv** -- the sharded key-value store sweep (wall time alongside the
  simulated-time throughput the CLI already reports).

CI runs ``repro bench --quick`` and uploads the JSON files as
artifacts, so every PR appends a point to the perf trajectory instead
of asserting a brittle absolute threshold.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.metrics import WallClockStats

#: Schema tag written into every file; bump on layout changes.
#: v2: the checker suite moved to its own ``BENCH_checker.json`` and
#: gained the 1k/10k-operation white-box soak points.
#: v3: ``BENCH_soak.json`` gained explicit per-row ``ops_per_s``, a
#: ``totals`` block, and the ``fleet`` key (process-pool sweeps with
#: merged metrics and scaling rows).  Purely additive -- v2 readers
#: keep working on every key they ever read -- so readers accept both.
#: v4: ``BENCH_engine.json`` gained the optional ``recovery`` axis
#: (the ``repro recovery-bench`` ops x checkpoint-interval sweep: log
#: footprint and recovery time per arm).  Additive again.
SCHEMA = "repro-bench/4"
SUPPORTED_SCHEMAS = ("repro-bench/2", "repro-bench/3", "repro-bench/4")


def load_bench_payload(path: Any) -> Dict[str, Any]:
    """Read one ``BENCH_*.json`` file, accepting any supported schema.

    The back-compat contract for trajectory files: the current writer
    stamps :data:`SCHEMA`, readers accept everything in
    :data:`SUPPORTED_SCHEMAS` and treat newer additive keys (v3's
    ``fleet``/``totals``) as optional.
    """
    payload = json.loads(Path(path).read_text())
    schema = payload.get("schema")
    if schema not in SUPPORTED_SCHEMAS:
        raise ValueError(
            f"unsupported bench schema {schema!r} in {path} "
            f"(supported: {SUPPORTED_SCHEMAS})"
        )
    return payload

ENGINE_PROTOCOLS = ("crash-stop", "transient", "persistent")
ENGINE_OPERATIONS = 100
ENGINE_PROCESSES = 5
#: Drain-predicate stride for the closed-loop engine benchmark runs
#: (the benchmark tolerates the few events of overshoot).
ENGINE_POLL_STRIDE = 32

#: White-box checker suite sizes (operations per history).
CHECKER_WHITEBOX_SIZES = (1_000, 10_000)


@dataclass
class BenchReport:
    """Everything one ``repro bench`` invocation measured."""

    quick: bool
    repeats: int
    engine: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    checker: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    kv: List[Dict[str, Any]] = field(default_factory=list)

    def engine_payload(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "suite": "engine",
            "quick": self.quick,
            "repeats": self.repeats,
            "python": platform.python_version(),
            "engine": self.engine,
        }

    def checker_payload(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "suite": "checker",
            "quick": self.quick,
            "repeats": self.repeats,
            "python": platform.python_version(),
            "checker": self.checker,
        }

    def kv_payload(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "suite": "kv",
            "quick": self.quick,
            "python": platform.python_version(),
            "kv": self.kv,
        }


def _time_runs(fn: Callable[[], Any], repeats: int) -> Tuple[WallClockStats, Any]:
    """Run ``fn`` ``repeats`` times (plus one warmup); time each run."""
    result = fn()  # warmup: imports, allocator, branch caches
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return WallClockStats.from_samples(samples), result


def _bench_engine(repeats: int, seed: Optional[int] = None) -> Dict[str, Dict[str, Any]]:
    from repro.cluster import SimCluster
    from repro.workloads.generators import run_closed_loop

    results: Dict[str, Dict[str, Any]] = {}
    for protocol in ENGINE_PROTOCOLS:

        def run() -> int:
            cluster = SimCluster(
                protocol=protocol,
                num_processes=ENGINE_PROCESSES,
                capture_trace=False,
                seed=seed,
            )
            cluster.start()
            report = run_closed_loop(
                cluster,
                operations_per_client=20,
                read_fraction=0.5,
                seed=0 if seed is None else seed,
                poll_every=ENGINE_POLL_STRIDE,
            )
            assert report.completed == ENGINE_OPERATIONS
            return cluster.kernel.events_processed

        stats, kernel_events = _time_runs(run, repeats)
        results[protocol] = {
            "operations": ENGINE_OPERATIONS,
            "kernel_events": kernel_events,
            "ops_per_sec": stats.ops_per_sec(ENGINE_OPERATIONS),
            "kernel_events_per_sec": stats.ops_per_sec(kernel_events),
            "wall": stats.as_dict(),
        }
    return results


def make_tagged_history(operations: int):
    """A ``(history, recorder)`` pair of ``operations`` tagged ops.

    Alternating write/read pairs with matching tags stamped by a
    deterministic increasing clock -- the standard white-box checker
    workload, shared by the bench harness and the throughput benchmark
    (``benchmarks/test_checker_throughput.py``).
    """
    from repro.common.ids import OperationId
    from repro.common.timestamps import Tag
    from repro.history.recorder import HistoryRecorder

    clock = [0.0]

    def tick() -> float:
        clock[0] += 1.0
        return clock[0]

    recorder = HistoryRecorder(clock=tick)
    for i in range(1, operations // 2 + 1):
        op = OperationId(pid=0, seq=i)
        tag = Tag(i, 0)
        recorder.record_invoke(op, 0, "write", f"v{i}")
        recorder.record_reply(op, 0, "write")
        recorder.record_tag(op, tag)
        rop = OperationId(pid=1, seq=10_000_000 + i)
        recorder.record_invoke(rop, 1, "read")
        recorder.record_reply(rop, 1, "read", f"v{i}")
        recorder.record_tag(rop, tag)
    return recorder.history, recorder


def _bench_checker(repeats: int) -> Dict[str, Dict[str, Any]]:
    from repro.common.ids import OperationId
    from repro.history.checker import check_persistent_atomicity
    from repro.history.events import Invoke, Reply
    from repro.history.history import History
    from repro.history.register_checker import check_tagged_history

    # Black-box checker: sequential alternating write/read history.
    events: List[Any] = []
    value = None
    for i in range(30):
        op = OperationId(pid=i % 3, seq=i)
        if i % 2 == 0:
            value = f"v{i}"
            events.append(
                Invoke(time=2.0 * i, pid=op.pid, op=op, kind="write", value=value)
            )
            events.append(Reply(time=2.0 * i + 1, pid=op.pid, op=op, kind="write"))
        else:
            events.append(Invoke(time=2.0 * i, pid=op.pid, op=op, kind="read"))
            events.append(
                Reply(time=2.0 * i + 1, pid=op.pid, op=op, kind="read", result=value)
            )
    history = History(events)

    def run_blackbox() -> bool:
        verdict = check_persistent_atomicity(history)
        assert verdict.ok
        return verdict.ok

    blackbox_stats, _ = _time_runs(run_blackbox, repeats)
    results: Dict[str, Dict[str, Any]] = {
        "blackbox_30_ops": {
            "operations": 30,
            "ops_per_sec": blackbox_stats.ops_per_sec(30),
            "wall": blackbox_stats.as_dict(),
        }
    }

    # White-box checker: the near-linear tag checker at soak sizes,
    # under both criteria (persistent adds the deadline condition).
    # Each timed run checks a *fresh* history (built outside the timed
    # region): the incremental History caches its derived views after
    # the first check, so re-checking the same object would measure the
    # warm-cache path and overstate one-shot throughput ~4x.  The
    # recorded point is the cold cost a soak run actually pays.
    for size in CHECKER_WHITEBOX_SIZES:
        for criterion in ("persistent", "transient"):
            samples: List[float] = []
            operations = 0
            for _ in range(repeats + 1):  # extra run is the warmup
                tagged_history, recorder = make_tagged_history(size)
                start = time.perf_counter()
                result = check_tagged_history(tagged_history, recorder, criterion)
                samples.append(time.perf_counter() - start)
                assert result.ok
                operations = result.operations
            stats = WallClockStats.from_samples(samples[1:])
            results[f"whitebox_{size}_ops_{criterion}"] = {
                "operations": operations,
                "ops_per_sec": stats.ops_per_sec(operations),
                "wall": stats.as_dict(),
            }
    return results


def _bench_kv(
    quick: bool, repeats: int, seed: Optional[int] = None
) -> List[Dict[str, Any]]:
    from repro.experiments.kv_bench import run_kv_config

    shard_sweep = (1, 8) if quick else (1, 2, 4, 8)
    operations = 10 if quick else 30
    # A KV config run is the most expensive unit in the harness, so cap
    # its repeats -- but keep the warmup + repeated-sample discipline of
    # the other suites: a single cold measurement would fold import and
    # allocator warmup into whichever sweep row runs first.
    kv_repeats = max(1, min(repeats, 3))
    rows: List[Dict[str, Any]] = []
    for shards in shard_sweep:

        def run():
            return run_kv_config(
                shards, batch_window=0.0, operations_per_client=operations,
                seed=seed,
            )

        stats, row = _time_runs(run, kv_repeats)
        rows.append(
            {
                "shards": row.shards,
                "batch_window": row.batch_window,
                "clients": row.clients,
                "completed": row.completed,
                "sim_throughput_ops_per_sec": row.throughput,
                "wall": stats.as_dict(),
                "wall_ops_per_sec": stats.ops_per_sec(row.completed),
                "messages_sent": row.messages_sent,
                "atomic": row.atomic,
            }
        )
    return rows


def run_bench(
    quick: bool = False,
    repeats: Optional[int] = None,
    seed: Optional[int] = None,
) -> BenchReport:
    """Measure every suite; ``quick`` is the CI-sized variant.

    ``seed`` overrides the curated workload seeds (the default keeps
    trajectory points comparable across pushes; the checker suite's
    synthetic history is seed-free either way).
    """
    if repeats is None:
        repeats = 3 if quick else 10
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    report = BenchReport(quick=quick, repeats=repeats)
    report.engine = _bench_engine(repeats, seed=seed)
    report.checker = _bench_checker(repeats)
    report.kv = _bench_kv(quick, repeats, seed=seed)
    return report


def write_bench_files(report: BenchReport, output_dir: str = ".") -> List[str]:
    """Write the ``BENCH_*.json`` trajectory files; return their paths."""
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, payload in (
        ("BENCH_engine.json", report.engine_payload()),
        ("BENCH_checker.json", report.checker_payload()),
        ("BENCH_kv.json", report.kv_payload()),
    ):
        path = directory / name
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        paths.append(str(path))
    return paths


def format_bench(report: BenchReport) -> str:
    """Render the measurements as the table the CLI prints."""
    lines = [
        f"{'suite':<10} {'case':<30} {'ops':>6}  {'ops/sec':>12}  "
        f"{'p50':>10}  {'p99':>10}"
    ]
    lines.append("-" * len(lines[0]))

    def row(suite: str, case: str, ops: Any, rate: float, wall: Dict[str, float]):
        lines.append(
            f"{suite:<10} {case:<30} {ops:>6}  {rate:>10,.0f}/s  "
            f"{wall['p50_s'] * 1e3:>8.1f}ms  {wall['p99_s'] * 1e3:>8.1f}ms"
        )

    for protocol, data in report.engine.items():
        row("engine", protocol, data["operations"], data["ops_per_sec"], data["wall"])
    for case, data in report.checker.items():
        row("checker", case, data["operations"], data["ops_per_sec"], data["wall"])
    for entry in report.kv:
        verdict = "atomic" if entry["atomic"] else "NOT ATOMIC"
        row(
            "kv",
            f"{entry['shards']} shards ({verdict})",
            entry["completed"],
            entry["sim_throughput_ops_per_sec"],
            entry["wall"],
        )
    lines.append("")
    lines.append("(kv ops/sec is simulated-time throughput; engine/checker")
    lines.append(" ops/sec are wall-clock; p50/p99 are wall time per run)")
    return "\n".join(lines)
