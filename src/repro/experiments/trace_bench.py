"""Trace-overhead A/B: the ``repro trace-bench`` harness.

The flight recorder (:mod:`repro.obs.ring`) is *always on* by default,
so its cost has to be provably negligible.  This harness runs the same
soak scenario at three instrumentation levels and writes the measured
wall-clock costs to ``BENCH_trace.json``:

* **trace-off** -- event counting only: no ring, no capture.  The
  floor the others are compared against.
* **ring-on** -- the default production configuration: the bounded
  binary ring records every trace point, nothing else.  The contract
  is that this stays within a few percent of trace-off.
* **full-trace** -- ``capture_trace=True``: every event materialised
  as a :class:`~repro.sim.tracing.TraceEvent` (the debugging
  configuration; expected to cost real time at soak scale).

Methodology -- the numbers are only as good as their isolation:

* **one subprocess per run.**  A fresh interpreter per sample means no
  cross-run heap or GC contamination: a prior full-trace run leaves
  millions of objects' worth of allocator state behind, which taxes
  whatever runs next in the same process and once mis-measured the
  ring at +27% when adjacent isolated runs showed parity.
* **paired rounds.**  Each round runs all three modes back to back and
  the overhead is the *median of per-round ratios* against that
  round's trace-off sample -- shared-machine drift (thermal, noisy
  neighbours; >20% between identical runs minutes apart has been
  observed) cancels within a round instead of biasing one mode.
* **run portion only.**  Ratios use wall minus verification: the
  checker's cost is identical across modes and would only dilute them.

The harness also re-derives the determinism contract: the three runs'
fingerprints -- transcript field aside, which only the full-trace run
has -- must be identical, i.e. observation does not perturb behaviour.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.experiments.bench import SCHEMA
from repro.obs.summary import WallClockStats, percentile
from repro.scenarios.library import get_scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.soak import quick_ops_for

TRACE_FILE = "BENCH_trace.json"

#: The scenario the A/B runs (the library's register soak).
BENCH_SCENARIO = "soak-100k"

#: Timed repetitions per mode (first-run warmup is *not* discarded --
#: the best-of-N comparison already sheds cold-start noise).
DEFAULT_REPEATS = 3
QUICK_REPEATS = 2

#: The instrumentation levels compared, as ``run_scenario`` overrides.
MODES = (
    ("trace-off", {"capture_trace": False, "flight_recorder": False}),
    ("ring-on", {"capture_trace": False, "flight_recorder": True}),
    ("full-trace", {"capture_trace": True, "flight_recorder": True}),
)

#: The acceptance bar for the always-on configuration, percent.
RING_BUDGET_PCT = 5.0


def _comparable_fingerprint(result) -> Dict[str, Any]:
    """The fingerprint minus the one field that tracks capture mode."""
    fingerprint = result.fingerprint()
    fingerprint.pop("transcript", None)
    return fingerprint


def _child_main(argv: List[str]) -> None:
    """One isolated sample: run the scenario, print a JSON summary.

    Executed as ``python -m repro.experiments.trace_bench '<params>'``
    by :func:`_sample` -- a fresh interpreter per run is the isolation
    the module docstring calls for.
    """
    params = json.loads(argv[0])
    result = run_scenario(
        get_scenario(params["scenario"]),
        seed=params["seed"],
        ops=params["ops"],
        **params["overrides"],
    )
    ring = result.flight_recorder
    print(json.dumps({
        "wall_s": result.wall_s,
        "run_s": result.wall_s - result.check_wall_s,
        "completed": result.completed,
        "ops": result.ops,
        "verdict": result.verdict,
        "flight_recorded": None if ring is None else ring.total,
        "transcript_events": (
            None
            if result.transcript is None
            else len(result.transcript.splitlines())
        ),
        "fingerprint": _comparable_fingerprint(result),
    }))


def _sample(
    scenario: str,
    ops: Optional[int],
    seed: Optional[int],
    overrides: Dict[str, Any],
) -> Dict[str, Any]:
    """Run one sample in a subprocess; return the child's summary."""
    params = json.dumps({
        "scenario": scenario, "ops": ops, "seed": seed,
        "overrides": overrides,
    })
    completed = subprocess.run(
        [sys.executable, "-m", "repro.experiments.trace_bench", params],
        capture_output=True,
        text=True,
        env=os.environ.copy(),
    )
    if completed.returncode != 0:
        raise RuntimeError(
            "trace-bench sample failed:\n" + completed.stderr[-2000:]
        )
    return json.loads(completed.stdout.splitlines()[-1])


def run_trace_bench(
    quick: bool = False,
    ops: Optional[int] = None,
    repeats: Optional[int] = None,
    seed: Optional[int] = None,
    scenario: str = BENCH_SCENARIO,
) -> Dict[str, Any]:
    """Measure the three instrumentation levels; return the payload."""
    spec = get_scenario(scenario)
    if ops is None and quick:
        ops = quick_ops_for(spec)
    if repeats is None:
        repeats = QUICK_REPEATS if quick else DEFAULT_REPEATS
    rounds: List[Dict[str, Dict[str, Any]]] = []
    for _ in range(repeats):
        rounds.append({
            name: _sample(spec.name, ops, seed, overrides)
            for name, overrides in MODES
        })
    modes: Dict[str, Dict[str, Any]] = {}
    for name, _ in MODES:
        last = rounds[-1][name]
        modes[name] = {
            "wall": WallClockStats.from_samples(
                [series[name]["wall_s"] for series in rounds]
            ).as_dict(),
            "run": WallClockStats.from_samples(
                [series[name]["run_s"] for series in rounds]
            ).as_dict(),
            "completed": last["completed"],
            "verdict": last["verdict"],
            "flight_recorded": last["flight_recorded"],
            "transcript_events": last["transcript_events"],
        }
    # Paired per-round ratios against that round's trace-off sample
    # (median of ratios; see the methodology note in the docstring).
    overhead = {
        name: percentile(
            [
                (series[name]["run_s"] / series["trace-off"]["run_s"] - 1.0)
                * 100.0
                for series in rounds
            ],
            50,
        )
        for name, _ in MODES
        if name != "trace-off"
    }
    reference = rounds[-1]["trace-off"]["fingerprint"]
    return {
        "schema": SCHEMA,
        "suite": "trace",
        "quick": quick,
        "python": platform.python_version(),
        "scenario": scenario,
        "ops": rounds[-1]["trace-off"]["ops"],
        "repeats": repeats,
        "modes": modes,
        "overhead_pct": overhead,
        "ring_budget_pct": RING_BUDGET_PCT,
        "fingerprints_identical": all(
            series[name]["fingerprint"] == reference
            for series in rounds
            for name, _ in MODES
        ),
    }


def write_trace_file(report: Dict[str, Any], output_dir: str = ".") -> str:
    """Write ``BENCH_trace.json``; return its path."""
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / TRACE_FILE
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return str(path)


def format_trace_bench(report: Dict[str, Any]) -> str:
    """Render the A/B as the table the CLI prints."""
    header = (
        f"{'mode':<12} {'run best':>9} {'run p50':>9} {'total p50':>10}  "
        f"{'overhead':>8}  {'recorded':>9}  verdict"
    )
    lines = [
        f"scenario {report['scenario']}, {report['ops']:,} ops, "
        f"{report['repeats']} paired rounds (one subprocess per run; "
        "overhead = median of per-round ratios)",
        "",
        header,
        "-" * len(header),
    ]
    for name, _ in MODES:
        mode = report["modes"][name]
        overhead = report["overhead_pct"].get(name)
        overhead_text = "baseline" if overhead is None else f"{overhead:+.1f}%"
        recorded = mode["flight_recorded"]
        recorded_text = "-" if recorded is None else f"{recorded:,}"
        lines.append(
            f"{name:<12} {mode['run']['best_s']:>8.2f}s "
            f"{mode['run']['p50_s']:>8.2f}s {mode['wall']['p50_s']:>9.2f}s  "
            f"{overhead_text:>8}  {recorded_text:>9}  "
            f"{'PASS' if mode['verdict'] else 'FAIL'}"
        )
    ring = report["overhead_pct"]["ring-on"]
    lines.append("")
    lines.append(
        f"always-on ring overhead {ring:+.1f}% "
        f"(budget {report['ring_budget_pct']:.0f}%); fingerprints "
        + (
            "identical across modes"
            if report["fingerprints_identical"]
            else "DIVERGED across modes"
        )
    )
    return "\n".join(lines)


if __name__ == "__main__":  # the subprocess entry used by _sample
    _child_main(sys.argv[1:])
