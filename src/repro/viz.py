"""ASCII space-time diagrams of runs, in the style of the paper's figures.

The paper illustrates its criteria and proofs with process-timeline
diagrams (Figures 1-3).  :func:`render_history` draws the same kind of
diagram from a recorded history::

    p0 |--W(v1)--|  |--W(v2)...X        R  |--W(v3)--|
    p1     |--R():v1--|

Each process gets one line; operations appear as ``|--op--|`` spans,
crashes as ``X``, recoveries as ``R``, and interrupted operations as
``...X``.  Time is quantized onto a character grid, so the diagrams are
qualitative -- exactly like the paper's.

:func:`render_trace_summary` prints per-process message/log counts for
quick run forensics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.history.events import Crash, Invoke, Recover, Reply
from repro.history.history import History

#: Diagram width in characters.
DEFAULT_WIDTH = 100


def _column(time: float, t0: float, t1: float, width: int) -> int:
    if t1 <= t0:
        return 0
    fraction = (time - t0) / (t1 - t0)
    return min(width - 1, max(0, int(fraction * (width - 1))))


def _place(
    canvas: List[str], column: int, text: str, width: int, overwrite: bool = False
) -> None:
    """Write ``text`` onto the canvas row at ``column``, clamped.

    By default only blank cells are written, so earlier spans are not
    clobbered; single-character markers (crash/recovery) overwrite.
    """
    start = min(column, max(0, width - len(text)))
    for offset, char in enumerate(text):
        position = start + offset
        if 0 <= position < width and (overwrite or canvas[position] == " "):
            canvas[position] = char


def _op_label(kind: str, value, result) -> str:
    if kind == "write":
        return f"W({value})"
    if result is None:
        return "R()"
    return f"R():{result}"


def render_history(
    history: History,
    width: int = DEFAULT_WIDTH,
    pids: Optional[List[int]] = None,
) -> str:
    """Render ``history`` as one timeline per process."""
    events = history.events
    if not events:
        return "(empty history)"
    t0 = events[0].time
    t1 = events[-1].time
    if pids is None:
        pids = sorted({event.pid for event in events})

    rows: Dict[int, List[str]] = {pid: [" "] * width for pid in pids}
    open_col: Dict[int, Tuple[int, str]] = {}

    records = {op.op: op for op in history.operations()}

    for event in events:
        if event.pid not in rows:
            continue
        canvas = rows[event.pid]
        column = _column(event.time, t0, t1, width)
        if isinstance(event, Invoke):
            record = records[event.op]
            label = _op_label(record.kind, record.value, record.result)
            open_col[event.pid] = (column, label)
            if record.pending:
                _place(canvas, column, f"|--{label}...", width)
        elif isinstance(event, Reply):
            start, label = open_col.pop(event.pid, (column, "?"))
            body = f"|--{label}--|"
            span = max(column - start + 1, len(body))
            if start + span > width:
                start = max(0, width - span)
            text = f"|--{label}" + "-" * max(0, span - len(body)) + "--|"
            _place(canvas, start, text, width)
        elif isinstance(event, Crash):
            open_col.pop(event.pid, None)
            _place(canvas, column, "X", width, overwrite=True)
        elif isinstance(event, Recover):
            # An immediate recovery lands on the crash marker's column;
            # slide right so both stay visible.
            if column < width and canvas[column] == "X":
                column = min(column + 1, width - 1)
            _place(canvas, column, "R", width, overwrite=True)

    lines = [f"p{pid} |" + "".join(rows[pid]) for pid in pids]
    duration_us = (t1 - t0) * 1e6
    lines.append(f"     {'-' * width}")
    lines.append(f"     0 us {' ' * max(0, width - 20)}{duration_us:.0f} us")
    return "\n".join(lines)


def render_trace_summary(cluster) -> str:
    """Per-process message and log counters from a cluster's trace."""
    from repro.sim import tracing

    pids = sorted(node.pid for node in cluster.nodes)
    header = (
        f"{'process':<8s} {'sent':>6s} {'recv':>6s} "
        f"{'logs':>6s} {'crashes':>8s}"
    )
    lines = [header, "-" * len(header)]
    for pid in pids:
        sent = len(cluster.trace.filter(kind=tracing.SEND, pid=pid))
        received = len(cluster.trace.filter(kind=tracing.DELIVER, pid=pid))
        logs = len(cluster.trace.filter(kind=tracing.STORE_END, pid=pid))
        crashes = len(cluster.trace.filter(kind=tracing.CRASH, pid=pid))
        lines.append(
            f"p{pid:<7d} {sent:>6d} {received:>6d} {logs:>6d} {crashes:>8d}"
        )
    return "\n".join(lines)
