"""Asyncio host for a process's protocol instances.

Mirrors :class:`repro.sim.node.SimNode` -- effect execution, causal-log
accounting, crash/recovery semantics, multi-register hosting -- on real
time and real I/O:

* :class:`~repro.protocol.base.Store` effects run the file write (with
  ``fsync``) in a thread-pool executor, completing the protocol event
  when durable;
* :class:`~repro.protocol.base.SetTimer` uses ``loop.call_later``;
* crash emulation mutes the transport, cancels timers, voids in-flight
  stores via an incarnation counter, and wipes the protocols' volatile
  state -- everything a real ``kill -9`` would do to the algorithm,
  inside one OS process so tests stay hermetic.

Like the simulated node, a runtime node boots with one anonymous
register slot and can host additional named register instances
(:meth:`RuntimeNode.provision_register`) for the key-value layer.
Named-slot traffic crosses the UDP transport wrapped in single-frame
:class:`~repro.protocol.messages.MuxBatch` datagrams; the simulator's
time-window egress coalescing has no equivalent here yet (real-time
batching needs flow-control decisions the runtime does not make).
"""

from __future__ import annotations

import asyncio
import pickle
from pathlib import Path
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.common.errors import (
    NotRecoveredError,
    ProcessCrashed,
    ProtocolError,
)
from repro.common.ids import OperationId, ProcessId, make_operation_id
from repro.history.causal_logs import CausalDepthTracker
from repro.history.recorder import HistoryRecorder
from repro.protocol.base import (
    Broadcast,
    CancelTimer,
    Checkpoint,
    Effect,
    RecoveryComplete,
    RegisterProtocol,
    Reply,
    Send,
    SetTimer,
    StableView,
    Store,
)
from repro.protocol.messages import Message, MuxBatch, RegisterFrame
from repro.runtime.storage import FileStableStorage
from repro.runtime.transport import UdpTransport
from repro.storage import checkpoint as ckpt


class RuntimeOperation:
    """Client handle: an :class:`asyncio.Future` plus metadata."""

    def __init__(self, op: OperationId, kind: str, value: Any,
                 register: Optional[str] = None):
        self.op = op
        self.kind = kind
        self.value = value
        self.register = register
        self.future: asyncio.Future = asyncio.get_event_loop().create_future()
        self.causal_logs: Optional[int] = None


class _RuntimeSlot:
    """One hosted register instance of a runtime node."""

    __slots__ = ("register", "prefix", "protocol", "current", "ready", "booted")

    def __init__(self, register: Optional[str], prefix: str,
                 protocol: RegisterProtocol):
        self.register = register
        self.prefix = prefix
        self.protocol = protocol
        self.current: Optional[RuntimeOperation] = None
        self.ready = False
        self.booted = False


class RuntimeNode:
    """One live process of the emulation."""

    def __init__(
        self,
        pid: ProcessId,
        num_processes: int,
        protocol_factory,
        storage_root: Path,
        recorder: HistoryRecorder,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.pid = pid
        self.num_processes = num_processes
        self.transport = UdpTransport(pid, host=host, port=port)
        self.storage = FileStableStorage(Path(storage_root) / f"node-{pid}")
        self._factory = protocol_factory
        self._recorder = recorder
        self._snapshot: Dict[str, Tuple[Any, ...]] = {}
        self._snapshot_sizes: Dict[str, int] = {}
        self._ckpt_seq = 0
        self.checkpoints_committed = 0
        self._load_snapshot()
        self._slots: Dict[Optional[str], _RuntimeSlot] = {}
        self._slots[None] = self._make_slot(None)
        self._depths = CausalDepthTracker()
        self._timers: Dict[Tuple[Optional[str], Hashable], asyncio.TimerHandle] = {}
        self.crashed = False
        self.incarnation = 0
        self.recoveries = 0
        self._booted = False

    def _make_slot(self, register: Optional[str]) -> _RuntimeSlot:
        prefix = "" if register is None else f"{register}/"
        stable = StableView(self.storage.records, self._snapshot)
        if register is not None:
            stable = stable.scoped(prefix)
        protocol = self._factory(self.pid, self.num_processes, stable)
        protocol.register = register
        return _RuntimeSlot(register, prefix, protocol)

    # -- register hosting --------------------------------------------------

    @property
    def protocol(self) -> RegisterProtocol:
        """The default (anonymous) register's protocol instance."""
        return self._slots[None].protocol

    @property
    def ready(self) -> bool:
        if self.crashed:
            return False
        return all(slot.ready for slot in self._slots.values())

    def has_register(self, register: Optional[str]) -> bool:
        return register in self._slots

    def register_ready(self, register: Optional[str]) -> bool:
        slot = self._slots.get(register)
        return slot is not None and slot.ready and not self.crashed

    def provision_register(self, register: str) -> None:
        """Host a new named register instance (idempotent).

        Boots immediately on a live node; dormant until recovery on a
        crashed one.
        """
        if register in self._slots:
            return
        slot = self._make_slot(register)
        self._slots[register] = slot
        if self._booted and not self.crashed:
            self._boot_slot(slot)

    def registers(self) -> List[Optional[str]]:
        """Register ids hosted here (``None`` is the anonymous slot)."""
        return list(self._slots)

    def _slot(self, register: Optional[str]) -> _RuntimeSlot:
        slot = self._slots.get(register)
        if slot is None:
            raise ProtocolError(f"node {self.pid} hosts no register {register!r}")
        return slot

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the transport.  Peers are installed by the cluster."""
        await self.transport.start(self._on_message)

    def boot(self) -> None:
        """Run every slot's Initialize procedure."""
        self._booted = True
        for slot in list(self._slots.values()):
            self._boot_slot(slot)

    def _boot_slot(self, slot: _RuntimeSlot) -> None:
        slot.booted = True
        self._execute(slot.protocol.initialize(), depth=0, op=None, slot=slot)

    def crash(self) -> None:
        """Emulate a crash of this process."""
        if self.crashed:
            raise ProcessCrashed(f"node {self.pid} already crashed")
        self.crashed = True
        self.incarnation += 1
        self.transport.muted = True
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        self._depths.reset()
        for slot in self._slots.values():
            slot.protocol.crash()
            slot.ready = False
            if slot.current is not None and not slot.current.future.done():
                slot.current.future.cancel()
            slot.current = None
        self._recorder.record_crash(self.pid)

    def recover(self) -> None:
        """Restart: reload durable state and run every recovery procedure."""
        if not self.crashed:
            raise ProtocolError(f"node {self.pid} is not crashed")
        self.crashed = False
        self.recoveries += 1
        self.transport.muted = False
        self.storage.reload_from_disk()
        self._load_snapshot()
        self._recorder.record_recovery(self.pid)
        base = StableView(self.storage.records, self._snapshot)
        for slot in list(self._slots.values()):
            if slot.register is None:
                slot.protocol.stable = base
            else:
                slot.protocol.stable = base.scoped(slot.prefix)
            if not slot.booted:
                self._boot_slot(slot)
                continue
            self._execute(slot.protocol.recover(), depth=0, op=None, slot=slot)

    def _load_snapshot(self) -> None:
        """Rebuild the in-memory snapshot from the durable permanent record.

        As in the simulator, a stray tentative record (crash between
        the two checkpoint phases) is ignored: its truncations never
        happened, so the previous permanent snapshot plus the intact
        log suffix is still a complete restore point.
        """
        seq, records, sizes = ckpt.load_snapshot(
            self.storage.retrieve(ckpt.PERMANENT_KEY)
        )
        self._ckpt_seq = seq
        self._snapshot.clear()
        self._snapshot.update(records)
        self._snapshot_sizes = dict(sizes)

    def checkpoint(self) -> bool:
        """Run one two-phase checkpoint now; returns whether one committed.

        The runtime twin of ``SimNode.begin_checkpoint``, collapsed to
        a single synchronous call because :class:`FileStableStorage`
        stores are synchronous: tentative store, permanent store,
        truncate the captured records, drop the tentative.  Captures
        only *idle* slots (no operation in flight, recovery complete),
        whose last write reached a majority.  Blocks the event loop for
        two fsyncs -- callers drive it from tests or maintenance hooks,
        not the datapath.
        """
        if self.crashed:
            return False
        idle = [
            slot.prefix
            for slot in self._slots.values()
            if slot.ready
            and (slot.current is None or slot.current.future.done())
            and not getattr(slot.protocol, "busy", False)
        ]
        live = self.storage.records
        keys = ckpt.capturable_keys(live.keys(), idle)
        fresh = {
            key: live[key]
            for key in keys
            if self._snapshot.get(key) != live[key]
        }
        if not fresh:
            return False
        captured = dict(self._snapshot)
        captured.update(fresh)
        sizes = dict(self._snapshot_sizes)
        for key in fresh:
            sizes[key] = len(pickle.dumps((key, fresh[key])))
        seq = self._ckpt_seq + 1
        record = ckpt.build_snapshot_record(seq, captured, sizes)
        size = ckpt.snapshot_store_size(sizes.values())
        self.storage.store(ckpt.TENTATIVE_KEY, record, size)
        self.storage.store(ckpt.PERMANENT_KEY, record, size)
        self._ckpt_seq = seq
        self._snapshot.clear()
        self._snapshot.update(captured)
        self._snapshot_sizes = sizes
        for key, captured_record in fresh.items():
            if live.get(key) == captured_record:
                self.storage.delete(key)
        self.storage.delete(ckpt.TENTATIVE_KEY)
        self.checkpoints_committed += 1
        return True

    async def wait_ready(self, timeout: float = 5.0) -> None:
        deadline = asyncio.get_event_loop().time() + timeout
        while not self.ready:
            if asyncio.get_event_loop().time() > deadline:
                raise ProtocolError(f"node {self.pid} did not become ready")
            await asyncio.sleep(0.005)

    async def wait_register_ready(
        self, register: str, timeout: float = 5.0
    ) -> None:
        deadline = asyncio.get_event_loop().time() + timeout
        while not self.register_ready(register):
            if asyncio.get_event_loop().time() > deadline:
                raise ProtocolError(
                    f"node {self.pid} register {register!r} did not become ready"
                )
            await asyncio.sleep(0.005)

    def close(self) -> None:
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        self.transport.close()

    # -- client operations -----------------------------------------------------

    async def write(
        self, value: Any, timeout: float = 10.0, register: Optional[str] = None
    ) -> RuntimeOperation:
        return await self._invoke("write", value, timeout, register)

    async def read(
        self, timeout: float = 10.0, register: Optional[str] = None
    ) -> RuntimeOperation:
        return await self._invoke("read", None, timeout, register)

    async def _invoke(
        self, kind: str, value: Any, timeout: float, register: Optional[str]
    ) -> RuntimeOperation:
        if self.crashed:
            raise ProcessCrashed(f"node {self.pid} is crashed")
        slot = self._slot(register)
        if not slot.ready:
            raise NotRecoveredError(
                f"node {self.pid} register {register!r} is not ready"
            )
        if slot.current is not None and not slot.current.future.done():
            raise ProtocolError(
                f"node {self.pid} has an operation in flight on "
                f"register {register!r}"
            )
        op = make_operation_id(self.pid)
        handle = RuntimeOperation(op, kind, value, register=register)
        slot.current = handle
        self._recorder.record_invoke(op, self.pid, kind, value)
        if register is not None:
            self._recorder.record_register(op, register)
        self._depths.observe(op, 0)
        if kind == "write":
            effects = slot.protocol.invoke_write(op, value)
        else:
            effects = slot.protocol.invoke_read(op)
        self._execute(effects, depth=0, op=op, slot=slot)
        await asyncio.wait_for(handle.future, timeout=timeout)
        return handle

    # -- event entry points ---------------------------------------------------

    def _on_message(self, src: ProcessId, depth: int, message: Message) -> None:
        if self.crashed:
            return
        if isinstance(message, MuxBatch):
            for frame in message.frames:
                slot = self._slots.get(frame.register)
                if slot is None:
                    continue  # provisioning raced a delivery; sender retries
                inner = frame.message
                context = self._depths.observe(inner.op, frame.depth)
                effects = slot.protocol.on_message(src, inner)
                self._execute(effects, depth=context, op=inner.op, slot=slot)
            return
        slot = self._slots[None]
        context = self._depths.observe(message.op, depth)
        effects = slot.protocol.on_message(src, message)
        self._execute(effects, depth=context, op=message.op, slot=slot)

    def _on_store_durable(
        self,
        token: Hashable,
        issue_depth: int,
        op: Optional[OperationId],
        incarnation: int,
        register: Optional[str],
    ) -> None:
        if incarnation != self.incarnation or self.crashed:
            return
        slot = self._slots.get(register)
        if slot is None:
            return
        depth = self._depths.record_store(op, issue_depth)
        effects = slot.protocol.on_store_complete(token)
        self._execute(effects, depth=depth, op=op, slot=slot)

    def _on_timer(
        self,
        token: Hashable,
        depth: int,
        op: Optional[OperationId],
        incarnation: int,
        register: Optional[str],
    ) -> None:
        if incarnation != self.incarnation or self.crashed:
            return
        slot = self._slots.get(register)
        if slot is None:
            return
        self._timers.pop((register, token), None)
        effects = slot.protocol.on_timer(token)
        self._execute(effects, depth=depth, op=op, slot=slot)

    # -- effect execution ----------------------------------------------------------

    def _execute(
        self,
        effects: List[Effect],
        depth: int,
        op: Optional[OperationId],
        slot: _RuntimeSlot,
    ) -> None:
        loop = asyncio.get_event_loop()
        for effect in effects:
            if isinstance(effect, Send):
                out_depth = self._outgoing_depth(effect.message, depth, op)
                self.transport.send(
                    effect.dst, out_depth, self._wrap(slot, effect.message, out_depth)
                )
            elif isinstance(effect, Broadcast):
                out_depth = self._outgoing_depth(effect.message, depth, op)
                self.transport.broadcast(
                    out_depth, self._wrap(slot, effect.message, out_depth)
                )
            elif isinstance(effect, Store):
                self._spawn_store(effect, depth, op, slot)
            elif isinstance(effect, Reply):
                self._complete(effect, depth, slot)
            elif isinstance(effect, SetTimer):
                key = (slot.register, effect.token)
                existing = self._timers.pop(key, None)
                if existing is not None:
                    existing.cancel()
                self._timers[key] = loop.call_later(
                    effect.delay,
                    self._on_timer,
                    effect.token,
                    depth,
                    op,
                    self.incarnation,
                    slot.register,
                )
            elif isinstance(effect, CancelTimer):
                handle = self._timers.pop((slot.register, effect.token), None)
                if handle is not None:
                    handle.cancel()
            elif isinstance(effect, RecoveryComplete):
                slot.ready = True
            elif isinstance(effect, Checkpoint):
                self.checkpoint()
            else:
                raise ProtocolError(f"unknown effect {type(effect).__name__}")

    @staticmethod
    def _wrap(slot: _RuntimeSlot, message: Message, depth: int) -> Message:
        """Namespace a named slot's message; default slot sends raw."""
        if slot.register is None:
            return message
        frame = RegisterFrame(register=slot.register, depth=depth, message=message)
        return MuxBatch(op=None, round_no=0, frames=(frame,))

    def _outgoing_depth(
        self, message: Message, handler_depth: int, handler_op: Optional[OperationId]
    ) -> int:
        inherited = handler_depth if message.op == handler_op else 0
        if not message.is_ack:
            return inherited
        return self._depths.outgoing_depth(message.op, inherited)

    def _spawn_store(
        self,
        effect: Store,
        depth: int,
        op: Optional[OperationId],
        slot: _RuntimeSlot,
    ) -> None:
        loop = asyncio.get_event_loop()
        incarnation = self.incarnation
        key = slot.prefix + effect.key
        register = slot.register

        async def run() -> None:
            await loop.run_in_executor(
                None, self.storage.store, key, effect.record, effect.size
            )
            self._on_store_durable(effect.token, depth, op, incarnation, register)

        loop.create_task(run())

    def _complete(self, effect: Reply, depth: int, slot: _RuntimeSlot) -> None:
        handle = slot.current
        if handle is None or handle.op != effect.op:
            raise ProtocolError(f"node {self.pid} replied to unknown op {effect.op}")
        causal = max(depth, self._depths.depth_of(effect.op))
        handle.causal_logs = causal
        self._recorder.record_reply(effect.op, self.pid, handle.kind, effect.result)
        self._recorder.record_causal_logs(effect.op, causal)
        if effect.tag is not None:
            self._recorder.record_tag(effect.op, effect.tag)
        slot.current = None
        if not handle.future.done():
            handle.future.set_result(effect.result)
