"""Asyncio host for one protocol instance.

Mirrors :class:`repro.sim.node.SimNode` -- effect execution, causal-log
accounting, crash/recovery semantics -- on real time and real I/O:

* :class:`~repro.protocol.base.Store` effects run the file write (with
  ``fsync``) in a thread-pool executor, completing the protocol event
  when durable;
* :class:`~repro.protocol.base.SetTimer` uses ``loop.call_later``;
* crash emulation mutes the transport, cancels timers, voids in-flight
  stores via an incarnation counter, and wipes the protocol's volatile
  state -- everything a real ``kill -9`` would do to the algorithm,
  inside one OS process so tests stay hermetic.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Any, Dict, Hashable, List, Optional

from repro.common.errors import (
    NotRecoveredError,
    ProcessCrashed,
    ProtocolError,
)
from repro.common.ids import OperationId, ProcessId, make_operation_id
from repro.history.causal_logs import CausalDepthTracker
from repro.history.recorder import HistoryRecorder
from repro.protocol.base import (
    Broadcast,
    CancelTimer,
    Effect,
    RecoveryComplete,
    RegisterProtocol,
    Reply,
    Send,
    SetTimer,
    StableView,
    Store,
)
from repro.protocol.messages import Message
from repro.runtime.storage import FileStableStorage
from repro.runtime.transport import UdpTransport


class RuntimeOperation:
    """Client handle: an :class:`asyncio.Future` plus metadata."""

    def __init__(self, op: OperationId, kind: str, value: Any):
        self.op = op
        self.kind = kind
        self.value = value
        self.future: asyncio.Future = asyncio.get_event_loop().create_future()
        self.causal_logs: Optional[int] = None


class RuntimeNode:
    """One live process of the emulation."""

    def __init__(
        self,
        pid: ProcessId,
        num_processes: int,
        protocol_factory,
        storage_root: Path,
        recorder: HistoryRecorder,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.pid = pid
        self.num_processes = num_processes
        self.transport = UdpTransport(pid, host=host, port=port)
        self.storage = FileStableStorage(Path(storage_root) / f"node-{pid}")
        self._factory = protocol_factory
        self._recorder = recorder
        self.protocol: RegisterProtocol = protocol_factory(
            pid, num_processes, StableView(self.storage.records)
        )
        self._depths = CausalDepthTracker()
        self._timers: Dict[Hashable, asyncio.TimerHandle] = {}
        self._current: Optional[RuntimeOperation] = None
        self.crashed = False
        self.ready = False
        self.incarnation = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the transport.  Peers are installed by the cluster."""
        await self.transport.start(self._on_message)

    def boot(self) -> None:
        """Run the protocol's Initialize procedure."""
        self._execute(self.protocol.initialize(), depth=0, op=None)

    def crash(self) -> None:
        """Emulate a crash of this process."""
        if self.crashed:
            raise ProcessCrashed(f"node {self.pid} already crashed")
        self.crashed = True
        self.ready = False
        self.incarnation += 1
        self.transport.muted = True
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        self.protocol.crash()
        self._depths.reset()
        if self._current is not None and not self._current.future.done():
            self._current.future.cancel()
        self._current = None
        self._recorder.record_crash(self.pid)

    def recover(self) -> None:
        """Restart: reload durable state and run the recovery procedure."""
        if not self.crashed:
            raise ProtocolError(f"node {self.pid} is not crashed")
        self.crashed = False
        self.transport.muted = False
        self.storage.reload_from_disk()
        self.protocol.stable = StableView(self.storage.records)
        self._recorder.record_recovery(self.pid)
        self._execute(self.protocol.recover(), depth=0, op=None)

    async def wait_ready(self, timeout: float = 5.0) -> None:
        deadline = asyncio.get_event_loop().time() + timeout
        while not self.ready:
            if asyncio.get_event_loop().time() > deadline:
                raise ProtocolError(f"node {self.pid} did not become ready")
            await asyncio.sleep(0.005)

    def close(self) -> None:
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        self.transport.close()

    # -- client operations -----------------------------------------------------

    async def write(self, value: Any, timeout: float = 10.0) -> RuntimeOperation:
        return await self._invoke("write", value, timeout)

    async def read(self, timeout: float = 10.0) -> RuntimeOperation:
        return await self._invoke("read", None, timeout)

    async def _invoke(self, kind: str, value: Any, timeout: float) -> RuntimeOperation:
        if self.crashed:
            raise ProcessCrashed(f"node {self.pid} is crashed")
        if not self.ready:
            raise NotRecoveredError(f"node {self.pid} is not ready")
        if self._current is not None and not self._current.future.done():
            raise ProtocolError(f"node {self.pid} has an operation in flight")
        op = make_operation_id(self.pid)
        handle = RuntimeOperation(op, kind, value)
        self._current = handle
        self._recorder.record_invoke(op, self.pid, kind, value)
        self._depths.observe(op, 0)
        if kind == "write":
            effects = self.protocol.invoke_write(op, value)
        else:
            effects = self.protocol.invoke_read(op)
        self._execute(effects, depth=0, op=op)
        await asyncio.wait_for(handle.future, timeout=timeout)
        return handle

    # -- event entry points ---------------------------------------------------

    def _on_message(self, src: ProcessId, depth: int, message: Message) -> None:
        if self.crashed:
            return
        context = self._depths.observe(message.op, depth)
        effects = self.protocol.on_message(src, message)
        self._execute(effects, depth=context, op=message.op)

    def _on_store_durable(
        self, token: Hashable, issue_depth: int, op: Optional[OperationId], incarnation: int
    ) -> None:
        if incarnation != self.incarnation or self.crashed:
            return
        depth = self._depths.record_store(op, issue_depth)
        effects = self.protocol.on_store_complete(token)
        self._execute(effects, depth=depth, op=op)

    def _on_timer(
        self, token: Hashable, depth: int, op: Optional[OperationId], incarnation: int
    ) -> None:
        if incarnation != self.incarnation or self.crashed:
            return
        self._timers.pop(token, None)
        effects = self.protocol.on_timer(token)
        self._execute(effects, depth=depth, op=op)

    # -- effect execution ----------------------------------------------------------

    def _execute(
        self, effects: List[Effect], depth: int, op: Optional[OperationId]
    ) -> None:
        loop = asyncio.get_event_loop()
        for effect in effects:
            if isinstance(effect, Send):
                self.transport.send(
                    effect.dst,
                    self._outgoing_depth(effect.message, depth, op),
                    effect.message,
                )
            elif isinstance(effect, Broadcast):
                self.transport.broadcast(
                    self._outgoing_depth(effect.message, depth, op), effect.message
                )
            elif isinstance(effect, Store):
                self._spawn_store(effect, depth, op)
            elif isinstance(effect, Reply):
                self._complete(effect, depth)
            elif isinstance(effect, SetTimer):
                existing = self._timers.pop(effect.token, None)
                if existing is not None:
                    existing.cancel()
                self._timers[effect.token] = loop.call_later(
                    effect.delay,
                    self._on_timer,
                    effect.token,
                    depth,
                    op,
                    self.incarnation,
                )
            elif isinstance(effect, CancelTimer):
                handle = self._timers.pop(effect.token, None)
                if handle is not None:
                    handle.cancel()
            elif isinstance(effect, RecoveryComplete):
                self.ready = True
            else:
                raise ProtocolError(f"unknown effect {type(effect).__name__}")

    def _outgoing_depth(
        self, message: Message, handler_depth: int, handler_op: Optional[OperationId]
    ) -> int:
        inherited = handler_depth if message.op == handler_op else 0
        if not message.is_ack:
            return inherited
        return self._depths.outgoing_depth(message.op, inherited)

    def _spawn_store(
        self, effect: Store, depth: int, op: Optional[OperationId]
    ) -> None:
        loop = asyncio.get_event_loop()
        incarnation = self.incarnation

        async def run() -> None:
            await loop.run_in_executor(
                None, self.storage.store, effect.key, effect.record, effect.size
            )
            self._on_store_durable(effect.token, depth, op, incarnation)

        loop.create_task(run())

    def _complete(self, effect: Reply, depth: int) -> None:
        handle = self._current
        if handle is None or handle.op != effect.op:
            raise ProtocolError(f"node {self.pid} replied to unknown op {effect.op}")
        causal = max(depth, self._depths.depth_of(effect.op))
        handle.causal_logs = causal
        self._recorder.record_reply(effect.op, self.pid, handle.kind, effect.result)
        self._recorder.record_causal_logs(effect.op, causal)
        if effect.tag is not None:
            self._recorder.record_tag(effect.op, effect.tag)
        self._current = None
        if not handle.future.done():
            handle.future.set_result(effect.result)
