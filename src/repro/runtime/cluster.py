"""A live cluster of UDP nodes on localhost.

This is the *low-level* live front-end -- the unified client API in
:mod:`repro.api` (``open_cluster(backend="live")``) wraps it behind
the backend-agnostic ``Cluster``/``Session`` vocabulary.

:class:`LiveCluster` spins up N :class:`~repro.runtime.node.RuntimeNode`
instances in one asyncio event loop, wires their transports together,
and exposes both an async API and a blocking wrapper::

    with LiveCluster(protocol="persistent", num_processes=3) as cluster:
        cluster.write(0, "hello")
        assert cluster.read(1) == "hello"
        cluster.crash_node(0)
        cluster.recover_node(0)
        assert cluster.read(0) == "hello"

Every node gets a private storage directory under ``storage_root``
(a temporary directory by default), so crash/recovery really does go
through the filesystem.

Like the simulated cluster, a live cluster can host named register
instances over the same UDP nodes -- one per key -- addressed with the
``key`` argument of :meth:`LiveCluster.write`/:meth:`LiveCluster.read`
(messages travel register-namespaced, storage files key-prefixed)::

    cluster.write(0, 1000, key="limits.rps")
    assert cluster.read(2, key="limits.rps") == 1000
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import tempfile
import threading
from pathlib import Path
from typing import Any, List, Optional

from repro.common.errors import ConfigurationError, ReproError
from repro.common.ids import ProcessId
from repro.history.recorder import HistoryRecorder
from repro.protocol.base import RegisterProtocol, StableView
from repro.protocol.registry import get_protocol_class
from repro.protocol.two_round import TwoRoundRegisterProtocol
from repro.runtime.node import RuntimeNode
from repro.runtime.transport import Peer

#: Retransmission period for live clusters, seconds.  Generous: real
#: loopback rarely drops, so retries are a safety net, not the norm.
LIVE_RETRANSMIT_INTERVAL = 0.05


class LiveCluster:
    """N protocol nodes over real UDP sockets on one event loop."""

    def __init__(
        self,
        protocol: str = "persistent",
        num_processes: int = 3,
        storage_root: Optional[Path] = None,
        op_timeout: float = 10.0,
    ):
        if num_processes < 1:
            raise ConfigurationError("num_processes must be >= 1")
        self.protocol_name = protocol
        self.num_processes = num_processes
        self.op_timeout = op_timeout
        self._protocol_class = get_protocol_class(protocol)
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if storage_root is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-live-")
            storage_root = Path(self._tmpdir.name)
        self.storage_root = Path(storage_root)
        self.recorder = HistoryRecorder(clock=self._clock)
        # One shared flight recorder over every node's transport,
        # using the sim trace's kind vocabulary so exports decode
        # uniformly across backends.
        from repro.obs.ring import RingTrace
        from repro.sim.tracing import ALL_KINDS

        self.flight_recorder = RingTrace(kinds=ALL_KINDS)
        self.nodes: List[RuntimeNode] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = False

    def _clock(self) -> float:
        if self._loop is not None:
            return self._loop.time()
        return 0.0

    def _make_protocol(
        self, pid: ProcessId, num_processes: int, stable: StableView
    ) -> RegisterProtocol:
        cls = self._protocol_class
        if issubclass(cls, TwoRoundRegisterProtocol):
            return cls(
                pid,
                num_processes,
                stable,
                retransmit_interval=LIVE_RETRANSMIT_INTERVAL,
            )
        return cls(pid, num_processes, stable)

    # -- async API ---------------------------------------------------------

    async def astart(self) -> None:
        """Create, bind and boot all nodes; wait until ready."""
        if self._started:
            raise ReproError("cluster already started")
        self._started = True
        for pid in range(self.num_processes):
            node = RuntimeNode(
                pid=pid,
                num_processes=self.num_processes,
                protocol_factory=self._make_protocol,
                storage_root=self.storage_root,
                recorder=self.recorder,
            )
            await node.start()
            node.transport.attach_flight_recorder(
                self.flight_recorder, self._clock
            )
            self.nodes.append(node)
        peers = [
            Peer(pid=node.pid, host=node.transport.host, port=node.transport.port)
            for node in self.nodes
        ]
        for node in self.nodes:
            node.transport.set_peers(peers)
        for node in self.nodes:
            node.boot()
        await asyncio.gather(*(node.wait_ready() for node in self.nodes))

    async def aensure_register(self, key: str) -> None:
        """Provision register instance ``key`` on every node.

        Crashed nodes get the slot dormant and boot it when they
        recover; only live nodes are awaited for readiness.
        """
        for node in self.nodes:
            node.provision_register(key)
        await asyncio.gather(
            *(
                node.wait_register_ready(key, timeout=self.op_timeout)
                for node in self.nodes
                if not node.crashed
            )
        )

    async def awrite(
        self, pid: ProcessId, value: Any, key: Optional[str] = None
    ) -> None:
        if key is not None and not self.nodes[pid].has_register(key):
            await self.aensure_register(key)
        await self.nodes[pid].write(value, timeout=self.op_timeout, register=key)

    async def aread(self, pid: ProcessId, key: Optional[str] = None) -> Any:
        if key is not None and not self.nodes[pid].has_register(key):
            await self.aensure_register(key)
        handle = await self.nodes[pid].read(timeout=self.op_timeout, register=key)
        return handle.future.result()

    async def aclose(self) -> None:
        for node in self.nodes:
            node.close()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()

    # -- blocking wrapper (background event loop thread) ----------------------

    def start(self) -> "LiveCluster":
        """Start the event loop on a background thread and boot."""
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            ready.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=run, daemon=True, name="repro-live")
        self._thread.start()
        ready.wait()
        self._call(self.astart())
        return self

    def _call(self, coroutine):
        return self.submit(coroutine).result(timeout=max(self.op_timeout * 2, 30.0))

    def submit(self, coroutine) -> concurrent.futures.Future:
        """Schedule ``coroutine`` on the cluster loop without blocking.

        Returns the :class:`concurrent.futures.Future` of its result --
        the non-blocking entry point the :mod:`repro.api` live backend
        builds its operation handles on.
        """
        if self._loop is None:
            raise ReproError("cluster not started")
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop)

    def write(self, pid: ProcessId, value: Any, key: Optional[str] = None) -> None:
        """Blocking write at node ``pid`` (``key`` names a register instance)."""
        self._call(self.awrite(pid, value, key=key))

    def read(self, pid: ProcessId, key: Optional[str] = None) -> Any:
        """Blocking read at node ``pid`` (``key`` names a register instance)."""
        return self._call(self.aread(pid, key=key))

    def ensure_register(self, key: str) -> None:
        """Blocking provisioning of register instance ``key``."""
        self._call(self.aensure_register(key))

    @property
    def registers(self) -> List[str]:
        """Named register instances provisioned so far, sorted."""
        if not self.nodes:
            return []
        return sorted(
            key for key in self.nodes[0].registers() if key is not None
        )

    def crash_node(self, pid: ProcessId) -> None:
        """Emulate a crash of node ``pid``."""

        async def do() -> None:
            self.nodes[pid].crash()

        self._call(do())

    def recover_node(self, pid: ProcessId, timeout: float = 5.0) -> None:
        """Restart node ``pid`` and wait for its recovery to finish."""

        async def do() -> None:
            self.nodes[pid].recover()
            await self.nodes[pid].wait_ready(timeout=timeout)

        self._call(do())

    def close(self) -> None:
        """Tear the cluster down and stop the event loop thread."""
        if self._loop is None:
            return
        self._call(self.aclose())
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._loop.close()
        self._loop = None

    def __enter__(self) -> "LiveCluster":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
