"""Asyncio UDP transport between cluster nodes.

One datagram socket per node; messages are pickled
``(src, depth, message)`` triples.  UDP gives exactly the fair-lossy
channel of the model: datagrams can be dropped, duplicated or
reordered, and the protocols' retransmission loops handle it.
Payloads above the 64 KB datagram limit raise, as in the paper
("a UDP packet cannot contain more than 64KB of data").
"""

from __future__ import annotations

import asyncio
import pickle
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.errors import TransportError
from repro.common.ids import ProcessId
from repro.protocol.messages import Message

#: Hard UDP payload ceiling (IPv4 localhost supports slightly less
#: than 64 KB of payload after headers).
MAX_DATAGRAM = 65000


@dataclass(frozen=True)
class Peer:
    """Network address of one cluster member."""

    pid: ProcessId
    host: str
    port: int


ReceiveCallback = Callable[[ProcessId, int, Message], None]


class _Endpoint(asyncio.DatagramProtocol):
    def __init__(self, transport_owner: "UdpTransport"):
        self._owner = transport_owner

    def datagram_received(self, data: bytes, addr) -> None:
        self._owner._on_datagram(data)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        # ICMP errors (e.g. peer not yet bound) are expected on UDP and
        # handled by retransmission.
        pass


class UdpTransport:
    """One node's UDP endpoint and its view of the peer set."""

    def __init__(self, pid: ProcessId, host: str = "127.0.0.1", port: int = 0):
        self.pid = pid
        self.host = host
        self.port = port
        self._peers: Dict[ProcessId, Peer] = {}
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._receive: Optional[ReceiveCallback] = None
        self.messages_sent = 0
        self.messages_received = 0
        #: Set to True to drop all I/O (crash emulation).
        self.muted = False
        # Optional flight recorder (attach_flight_recorder); when
        # attached, send/receive are mirrored into the shared ring.
        self._ring = None
        self._ring_clock: Optional[Callable[[], float]] = None
        self._ring_send = 0
        self._ring_deliver = 0

    def attach_flight_recorder(
        self, ring, clock: Callable[[], float]
    ) -> None:
        """Mirror sends/receives into ``ring``, timestamped by ``clock``.

        Kind codes are resolved once here (the pre-resolved-handle
        discipline of :mod:`repro.obs`); the per-datagram cost is one
        ``record`` call.
        """
        self._ring = ring
        self._ring_clock = clock
        self._ring_send = ring.kind_id("send")
        self._ring_deliver = ring.kind_id("deliver")

    async def start(self, receive: ReceiveCallback) -> None:
        """Bind the socket and start delivering to ``receive``."""
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _Endpoint(self), local_addr=(self.host, self.port)
        )
        self._transport = transport
        self._receive = receive
        sockname = transport.get_extra_info("sockname")
        self.port = sockname[1]

    def set_peers(self, peers: List[Peer]) -> None:
        """Install the cluster membership (including this node)."""
        self._peers = {peer.pid: peer for peer in peers}

    def send(self, dst: ProcessId, depth: int, message: Message) -> None:
        """Fire-and-forget one datagram to ``dst``."""
        if self.muted or self._transport is None:
            return
        peer = self._peers.get(dst)
        if peer is None:
            raise TransportError(f"unknown peer {dst}")
        payload = pickle.dumps((self.pid, depth, message))
        if len(payload) > MAX_DATAGRAM:
            raise TransportError(
                f"message of {len(payload)} bytes exceeds the "
                f"{MAX_DATAGRAM}-byte UDP datagram limit"
            )
        self._transport.sendto(payload, (peer.host, peer.port))
        self.messages_sent += 1
        ring = self._ring
        if ring is not None:
            ring.record(
                self._ring_clock(), self._ring_send, self.pid, message.op
            )

    def broadcast(self, depth: int, message: Message) -> None:
        """Send to every known peer, including this node."""
        for pid in self._peers:
            self.send(pid, depth, message)

    def _on_datagram(self, data: bytes) -> None:
        if self.muted or self._receive is None:
            return
        try:
            src, depth, message = pickle.loads(data)
        except (pickle.PickleError, ValueError, EOFError):
            return  # garbage datagram: drop, like a checksum failure
        self.messages_received += 1
        ring = self._ring
        if ring is not None:
            ring.record(
                self._ring_clock(), self._ring_deliver, self.pid, message.op
            )
        self._receive(src, depth, message)

    def close(self) -> None:
        """Release the socket."""
        if self._transport is not None:
            self._transport.close()
            self._transport = None
