"""Asyncio/UDP runtime: the protocols over real sockets and real disks.

The paper's measurements come from a C implementation on a LAN using
UDP and synchronous file writes.  This package is the Python analogue:
the *same* sans-io protocol classes as the simulator, hosted on

* :class:`~repro.runtime.transport.UdpTransport` -- asyncio datagram
  endpoints (UDP really can drop/reorder, matching fair-lossy);
* :class:`~repro.runtime.storage.FileStableStorage` -- one file per
  record, written with ``fsync`` so a store is durable when it returns
  (buffering "would violate even transient atomicity", Section V-A);
* :class:`~repro.runtime.node.RuntimeNode` /
  :class:`~repro.runtime.cluster.LiveCluster` -- effect execution,
  crash emulation (drop volatile state, void in-flight stores) and a
  blocking convenience wrapper.

The runtime exists to demonstrate the protocol code is real, and to
let users run a live cluster on localhost (``examples/live_udp_cluster
.py``).  For experiments, prefer the simulator: it is deterministic
and its clock is calibrated.
"""

from repro.runtime.cluster import LiveCluster
from repro.runtime.node import RuntimeNode
from repro.runtime.storage import FileStableStorage
from repro.runtime.transport import UdpTransport

__all__ = ["FileStableStorage", "LiveCluster", "RuntimeNode", "UdpTransport"]
