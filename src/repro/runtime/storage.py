"""File-backed stable storage with synchronous durability.

Each record is one file under the node's directory, written via a
temporary file + ``fsync`` + atomic rename so that a torn write can
never corrupt the previous record -- mirroring the simulator's
semantics where an in-flight store that crashes leaves the old record
intact.  Records are serialized with :mod:`pickle` (library-internal
data only; nothing here parses untrusted input).
"""

from __future__ import annotations

import os
import pickle
import zlib
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import StorageError

_SUFFIX = ".rec"


class FileStableStorage:
    """Durable key-record storage rooted at a directory."""

    def __init__(self, root: Path):
        self._root = Path(root)
        try:
            self._root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StorageError(f"cannot create storage dir {self._root}: {exc}")
        self._records: Dict[str, Tuple[Any, ...]] = {}
        self._load()
        self.stores_completed = 0
        self.bytes_logged = 0

    @property
    def records(self) -> Dict[str, Tuple[Any, ...]]:
        """In-memory view of the durable records (kept in sync)."""
        return self._records

    def _path(self, key: str) -> Path:
        # Sanitizing alone could collide two keys ("a/written" vs
        # "a_written"), which matters now that register instances
        # prefix their keys; a content hash keeps filenames unique.
        safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in key)
        digest = zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF
        return self._root / f"{safe}.{digest:08x}{_SUFFIX}"

    def _load(self) -> None:
        for path in self._root.glob(f"*{_SUFFIX}"):
            try:
                with open(path, "rb") as handle:
                    key, record = pickle.load(handle)
            except (OSError, pickle.PickleError) as exc:
                raise StorageError(f"corrupt record {path}: {exc}")
            self._records[key] = record

    def store(self, key: str, record: Tuple[Any, ...], size: int) -> None:
        """Synchronously persist ``record`` under ``key``.

        Returns only once the bytes are on disk (write + fsync +
        rename + directory fsync): the ``store`` primitive of the
        model.  Runs in an executor thread when called from asyncio.
        """
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        payload = pickle.dumps((key, record))
        try:
            with open(tmp, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            dir_fd = os.open(self._root, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError as exc:
            raise StorageError(f"store of {key!r} failed: {exc}")
        self._records[key] = record
        self.stores_completed += 1
        self.bytes_logged += size

    def retrieve(self, key: str) -> Optional[Tuple[Any, ...]]:
        """Read the last durable record under ``key`` (or ``None``)."""
        return self._records.get(key)

    def reload_from_disk(self) -> None:
        """Drop the in-memory view and re-read the files.

        Used by crash emulation: a "recovering" node must see exactly
        what is durable, not what its previous incarnation cached.
        """
        self._records = {}
        self._load()
