"""File-backed stable storage with synchronous durability.

Each record is one file under the node's directory, written via a
temporary file + ``fsync`` + atomic rename so that a torn write can
never corrupt the previous record -- mirroring the simulator's
semantics where an in-flight store that crashes leaves the old record
intact.  Records are serialized with :mod:`pickle` (library-internal
data only; nothing here parses untrusted input).

Startup is quarantine-and-continue: leftover ``.tmp`` files (a crash
before the atomic rename) are deleted, and a record file that fails to
read or decode is renamed aside with a ``.corrupt`` extension and
logged instead of aborting recovery.  Losing a single local record is
a fault the protocols already tolerate -- they never rely on one copy
of anything -- so refusing to start would turn a recoverable storage
fault into a permanent crash.
"""

from __future__ import annotations

import logging
import os
import pickle
import zlib
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import StorageError

_SUFFIX = ".rec"
_QUARANTINE_SUFFIX = ".corrupt"

logger = logging.getLogger(__name__)


class FileStableStorage:
    """Durable key-record storage rooted at a directory."""

    def __init__(self, root: Path):
        self._root = Path(root)
        try:
            self._root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StorageError(f"cannot create storage dir {self._root}: {exc}")
        self._records: Dict[str, Tuple[Any, ...]] = {}
        self.records_quarantined = 0
        self._load()
        self.stores_completed = 0
        self.bytes_logged = 0

    @property
    def records(self) -> Dict[str, Tuple[Any, ...]]:
        """In-memory view of the durable records (kept in sync)."""
        return self._records

    def _path(self, key: str) -> Path:
        # Sanitizing alone could collide two keys ("a/written" vs
        # "a_written"), which matters now that register instances
        # prefix their keys; a content hash keeps filenames unique.
        safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in key)
        digest = zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF
        return self._root / f"{safe}.{digest:08x}{_SUFFIX}"

    def _load(self) -> None:
        # A .tmp file is a store that crashed before its atomic rename;
        # the previous record (if any) is intact, the partial write is
        # garbage.
        for tmp in self._root.glob("*.tmp"):
            try:
                tmp.unlink()
            except OSError:
                pass
        for path in self._root.glob(f"*{_SUFFIX}"):
            try:
                with open(path, "rb") as handle:
                    key, record = pickle.load(handle)
            except (OSError, pickle.PickleError, EOFError, ValueError) as exc:
                self._quarantine(path, exc)
                continue
            self._records[key] = record

    def _quarantine(self, path: Path, exc: Exception) -> None:
        """Move an unreadable record aside and keep starting up."""
        target = path.with_name(path.name + _QUARANTINE_SUFFIX)
        try:
            os.replace(path, target)
        except OSError:
            target = path  # could not even rename; leave it in place
        self.records_quarantined += 1
        logger.warning(
            "quarantined corrupt record %s -> %s (%s); recovery continues "
            "without it", path.name, target.name, exc,
        )

    def store(self, key: str, record: Tuple[Any, ...], size: int) -> None:
        """Synchronously persist ``record`` under ``key``.

        Returns only once the bytes are on disk (write + fsync +
        rename + directory fsync): the ``store`` primitive of the
        model.  Runs in an executor thread when called from asyncio.
        """
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        payload = pickle.dumps((key, record))
        try:
            with open(tmp, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            dir_fd = os.open(self._root, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError as exc:
            raise StorageError(f"store of {key!r} failed: {exc}")
        self._records[key] = record
        self.stores_completed += 1
        self.bytes_logged += size

    def retrieve(self, key: str) -> Optional[Tuple[Any, ...]]:
        """Read the last durable record under ``key`` (or ``None``)."""
        return self._records.get(key)

    def delete(self, key: str) -> None:
        """Remove the record under ``key`` (checkpoint truncation).

        Durable like :meth:`store`: the unlink is followed by a
        directory fsync, so a truncated record cannot resurface after
        a crash.  Deleting a missing key is a no-op.
        """
        self._records.pop(key, None)
        path = self._path(key)
        try:
            path.unlink()
        except FileNotFoundError:
            return
        except OSError as exc:
            raise StorageError(f"delete of {key!r} failed: {exc}")
        dir_fd = os.open(self._root, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def reload_from_disk(self) -> None:
        """Drop the in-memory view and re-read the files.

        Used by crash emulation: a "recovering" node must see exactly
        what is durable, not what its previous incarnation cached.
        """
        self._records = {}
        self._load()
