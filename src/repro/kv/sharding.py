"""Pluggable key-to-shard maps for the KV layer.

A shard is the store's unit of concurrency and batching: each process
runs one single-threaded pipeline per shard, so two operations on the
same shard at the same process serialize (and may share a quorum
round-trip), while operations on different shards proceed in parallel.
The shard map decides which keys contend with which.

Two implementations:

* :class:`HashShardMap` -- stable modular hashing.  Perfectly balanced
  for uniform keys, but adding/removing a shard remaps almost every
  key.
* :class:`ConsistentHashShardMap` -- a hash ring with virtual nodes.
  Slightly less balanced, but resizing moves only ``~1/num_shards`` of
  the keyspace, the property real stores rely on for online resharding.

Both use content hashes (not Python's salted ``hash``) so a key's
shard is stable across processes and runs -- determinism the simulator
and the recorded histories depend on.
"""

from __future__ import annotations

import bisect
import hashlib
import zlib
from abc import ABC, abstractmethod
from typing import List, Tuple

from repro.common.errors import ConfigurationError


class ShardMap(ABC):
    """Maps every key to one of ``num_shards`` shards."""

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        self.num_shards = num_shards

    @abstractmethod
    def shard_of(self, key: str) -> int:
        """Shard index of ``key``, in ``range(num_shards)``."""


class HashShardMap(ShardMap):
    """Stable modular hashing: ``crc32(key) % num_shards``."""

    def shard_of(self, key: str) -> int:
        return zlib.crc32(key.encode("utf-8")) % self.num_shards


class ConsistentHashShardMap(ShardMap):
    """Consistent hashing on a ring of virtual nodes.

    Each shard owns ``replicas`` points on a 2**64 ring; a key belongs
    to the first shard point at or after its own hash (wrapping
    around).  With enough virtual nodes per shard the load spread is
    within a few percent of modular hashing.
    """

    def __init__(self, num_shards: int, replicas: int = 64):
        super().__init__(num_shards)
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(num_shards):
            for replica in range(replicas):
                points.append((self._point(f"shard-{shard}#{replica}"), shard))
        points.sort()
        self._ring = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    @staticmethod
    def _point(label: str) -> int:
        digest = hashlib.md5(label.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def shard_of(self, key: str) -> int:
        index = bisect.bisect_left(self._ring, self._point(key))
        if index == len(self._ring):
            index = 0
        return self._owners[index]
