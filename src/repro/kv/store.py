"""The sharded key-value store front-end.

This is the *low-level* KV layer -- the unified client API in
:mod:`repro.api` (``open_cluster(backend="kv")``) wraps it behind the
backend-agnostic ``Cluster``/``Session`` vocabulary.

:class:`KVCluster` turns the single-register emulation into a store:

* **key -> register**: every key is one virtual register instance,
  provisioned on all replicas on first touch
  (:meth:`~repro.cluster.SimCluster.ensure_register`) and addressed by
  register-id-namespaced messages;
* **key -> shard**: a :class:`~repro.kv.sharding.ShardMap` assigns
  keys to shards.  Each (process, shard) pair runs one single-threaded
  pipeline: at most one *batch* of operations is in flight per
  pipeline, operations on different shards proceed concurrently.  This
  is the shard-per-core execution model of production stores, and it is
  what makes throughput scale with the shard count;
* **batching**: with a batch window ``w > 0``, a free pipeline waits
  ``w`` of virtual time, then drains every queued operation (at most
  one per key -- each register is a sequential process) and issues them
  together.  Their protocol messages coalesce into one datagram per
  destination (:class:`~repro.protocol.messages.MuxBatch`), so a batch
  of same-shard operations costs a single quorum round-trip.  With
  ``w == 0`` the pipeline is strictly serial: one operation at a time,
  no coalescing -- the baseline the benchmarks sweep against;
* **verification**: the recorded history is partitioned per key and
  every projection is checked with the paper's atomicity checkers
  (exhaustive black-box search on small projections, the scalable
  white-box tag checker on large ones).

The store inherits the model's failure semantics wholesale: replicas
crash and recover, operations in flight at a crashed coordinator abort
(their invocations stay pending in the per-key history), and queued
operations wait for the replica to come back.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster import DEFAULT_OP_TIMEOUT, SimCluster
from repro.common.config import ClusterConfig
from repro.common.errors import (
    ConfigurationError,
    NotRecoveredError,
    OperationAborted,
    ProtocolError,
    ReproError,
)
from repro.common.ids import ProcessId
from repro.history.checker import (
    MAX_OPERATIONS,
    check_history,
)
from repro.history.history import History
from repro.history.register_checker import check_tagged_history
from repro.kv.sharding import HashShardMap, ShardMap
from repro.sim.node import SimOperation

#: How often a blocked pipeline re-checks its replica, seconds.
PIPELINE_RETRY_INTERVAL = 1e-3

#: Largest per-key projection the exhaustive black-box checker is asked
#: to verify; bigger projections use the white-box tag checker.
EXHAUSTIVE_CHECK_LIMIT = 20


def projection_check_method(num_operations: int) -> str:
    """The store's checker policy for one per-key projection.

    Exhaustive black-box search up to :data:`EXHAUSTIVE_CHECK_LIMIT`
    operations (bounded by the checker's own hard cap), the white-box
    tag checker beyond.  Shared by :meth:`KVCluster.check_atomicity`
    and the :mod:`repro.api` KV backend so the two surfaces cannot
    diverge.
    """
    if num_operations <= min(EXHAUSTIVE_CHECK_LIMIT, MAX_OPERATIONS):
        return "blackbox"
    return "whitebox"

#: Predicate-poll stride for the preload readiness barrier (see
#: :meth:`repro.sim.kernel.Kernel.run_until`).
PRELOAD_POLL_STRIDE = 16


class KVOperation:
    """Client-side handle of one key-value operation.

    Settles (``done`` or ``aborted``) as the simulation advances.  The
    handle exists from submission; ``invoked_at`` is set once the shard
    pipeline actually issues the operation on the replica, so
    ``latency`` includes queueing and batching delay -- the client-side
    truth a service would measure.
    """

    __slots__ = (
        "key",
        "kind",
        "value",
        "pid",
        "shard",
        "done",
        "aborted",
        "result",
        "submitted_at",
        "invoked_at",
        "completed_at",
        "_callbacks",
        "_sim_handle",
    )

    def __init__(self, key: str, kind: str, value: Any, pid: ProcessId, shard: int):
        self.key = key
        self.kind = kind
        self.value = value
        self.pid = pid
        self.shard = shard
        self.done = False
        self.aborted = False
        self.result: Any = None
        self.submitted_at: Optional[float] = None
        self.invoked_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self._callbacks: List[Callable[["KVOperation"], None]] = []
        self._sim_handle: Optional[SimOperation] = None

    @property
    def settled(self) -> bool:
        return self.done or self.aborted

    @property
    def latency(self) -> Optional[float]:
        """Submission-to-completion duration in virtual time."""
        if self.submitted_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def add_callback(self, callback: Callable[["KVOperation"], None]) -> None:
        """Run ``callback(handle)`` when the operation settles."""
        if self.settled:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _settle_from(self, handle: SimOperation, now: float) -> None:
        self.done = handle.done
        self.aborted = handle.aborted
        self.result = handle.result
        self.completed_at = now
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = "done" if self.done else ("aborted" if self.aborted else "pending")
        return f"KVOperation({self.key!r}, {self.kind}, {state})"


class _ShardPipeline:
    """Single-threaded executor of one (process, shard) pair."""

    __slots__ = ("kv", "pid", "shard", "queue", "inflight", "armed")

    def __init__(self, kv: "KVCluster", pid: ProcessId, shard: int):
        self.kv = kv
        self.pid = pid
        self.shard = shard
        self.queue: List[KVOperation] = []
        self.inflight = 0
        #: Whether a drain (or retry) event is already scheduled.
        self.armed = False

    def submit(self, op: KVOperation) -> None:
        self.queue.append(op)
        self._arm(self.kv.batch_window)

    def _arm(self, delay: float) -> None:
        if self.armed or self.inflight or not self.queue:
            return
        self.armed = True
        self.kv.kernel.schedule(delay, self._drain)

    def _drain(self) -> None:
        self.armed = False
        if self.inflight or not self.queue:
            return
        node = self.kv.sim.node(self.pid)
        if node.crashed or not node.ready:
            self._arm(PIPELINE_RETRY_INTERVAL)
            return
        # A zero window cannot gather anything: the pipeline runs one
        # operation at a time.  A positive window drains everything
        # that queued while it was open, at most one op per key.
        max_ops = None if self.kv.batch_window > 0 else 1
        taken: List[KVOperation] = []
        taken_keys: Set[str] = set()
        remaining: List[KVOperation] = []
        for op in self.queue:
            if max_ops is not None and len(taken) >= max_ops:
                remaining.append(op)
                continue
            if op.key in taken_keys or not node.register_ready(op.key):
                remaining.append(op)
                continue
            if node.register_busy(op.key):
                remaining.append(op)
                continue
            taken.append(op)
            taken_keys.add(op.key)
        self.queue = remaining
        issued = 0
        for op in taken:
            try:
                if op.kind == "write":
                    handle = node.invoke_write(op.value, register=op.key)
                else:
                    handle = node.invoke_read(register=op.key)
            except (ProtocolError, NotRecoveredError):
                # Lost a race with protocol-internal activity (e.g. a
                # recovery replay); requeue and retry shortly.
                self.queue.append(op)
                continue
            op.invoked_at = self.kv.kernel.now
            op._sim_handle = handle
            issued += 1
            handle.add_callback(lambda h, kv_op=op: self._on_settled(kv_op, h))
        self.inflight += issued
        if issued == 0 and self.queue:
            self._arm(PIPELINE_RETRY_INTERVAL)

    def _on_settled(self, op: KVOperation, handle: SimOperation) -> None:
        self.inflight -= 1
        op._settle_from(handle, self.kv.kernel.now)
        if op.aborted:
            self.kv._aborted += 1
        else:
            self.kv._completed += 1
        # Start the next batch from a fresh kernel event, not inside
        # the settling call stack (which may be a crash handler).
        self._arm(0.0)


class KVAtomicityReport:
    """Per-key atomicity verdicts of one KV run."""

    def __init__(self, criterion: str):
        self.criterion = criterion
        #: key -> (ok, checker-name, diagnostic)
        self.per_key: Dict[str, Tuple[bool, str, str]] = {}

    def record(self, key: str, ok: bool, checker: str, reason: str = "") -> None:
        self.per_key[key] = (ok, checker, reason)

    @property
    def ok(self) -> bool:
        return all(ok for ok, _, _ in self.per_key.values())

    @property
    def failures(self) -> Dict[str, str]:
        return {
            key: reason
            for key, (ok, _, reason) in self.per_key.items()
            if not ok
        }

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"FAILED({sorted(self.failures)})"
        return f"KVAtomicityReport({self.criterion}, {len(self.per_key)} keys, {status})"


class KVCluster:
    """A sharded, batching key-value store on a simulated cluster."""

    def __init__(
        self,
        protocol: str = "persistent",
        num_processes: Optional[int] = None,
        num_shards: int = 8,
        shard_map: Optional[ShardMap] = None,
        batch_window: float = 0.0,
        config: Optional[ClusterConfig] = None,
        seed: Optional[int] = None,
        capture_trace: bool = False,
        flight_recorder: bool = True,
        checkpoint_interval: Optional[float] = None,
        recovery_scan: bool = False,
    ):
        if batch_window < 0:
            raise ConfigurationError("batch_window must be >= 0")
        if shard_map is None:
            shard_map = HashShardMap(num_shards)
        elif shard_map.num_shards != num_shards:
            raise ConfigurationError(
                f"shard_map has {shard_map.num_shards} shards, expected {num_shards}"
            )
        self.shard_map = shard_map
        self.batch_window = batch_window
        self.sim = SimCluster(
            protocol=protocol,
            num_processes=num_processes,
            config=config,
            seed=seed,
            capture_trace=capture_trace,
            batch_window=batch_window,
            flight_recorder=flight_recorder,
            checkpoint_interval=checkpoint_interval,
            recovery_scan=recovery_scan,
        )
        self._pipelines: Dict[Tuple[ProcessId, int], _ShardPipeline] = {}
        self._next_pid = 0
        self._completed = 0
        self._aborted = 0

    # -- plumbing ----------------------------------------------------------

    @property
    def kernel(self):
        return self.sim.kernel

    @property
    def config(self) -> ClusterConfig:
        return self.sim.config

    @property
    def protocol_name(self) -> str:
        return self.sim.protocol_name

    @property
    def num_shards(self) -> int:
        return self.shard_map.num_shards

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def nodes(self):
        return self.sim.nodes

    @property
    def network(self):
        return self.sim.network

    @property
    def recorder(self):
        return self.sim.recorder

    @property
    def flight_recorder(self):
        """The underlying trace's event ring, or ``None`` when disabled."""
        return self.sim.flight_recorder

    @property
    def history(self) -> History:
        return self.sim.history

    @property
    def completed_operations(self) -> int:
        """KV operations that finished successfully so far."""
        return self._completed

    @property
    def aborted_operations(self) -> int:
        """KV operations aborted by coordinator crashes so far."""
        return self._aborted

    def start(self, timeout: float = 1.0) -> None:
        """Boot every replica and wait until all report ready."""
        self.sim.start(timeout=timeout)

    def run(self, duration: Optional[float] = None, max_events: int = 1_000_000) -> None:
        self.sim.run(duration, max_events=max_events)

    def run_until(
        self,
        predicate,
        timeout: Optional[float] = None,
        poll_every: int = 1,
        max_events: int = 1_000_000,
    ) -> bool:
        return self.sim.run_until(
            predicate, timeout=timeout, poll_every=poll_every,
            max_events=max_events,
        )

    def crash(self, pid: ProcessId) -> None:
        """Crash replica ``pid`` immediately."""
        self.sim.crash(pid)

    def recover(self, pid: ProcessId, wait: bool = True, timeout: float = 5.0) -> None:
        """Restart replica ``pid``; by default run until it is ready."""
        self.sim.recover(pid, wait=wait, timeout=timeout)

    def install_schedule(self, schedule) -> None:
        self.sim.install_schedule(schedule)

    def preload(self, keys: Sequence[str], timeout: float = 10.0) -> None:
        """Provision register instances for ``keys`` and wait until ready.

        Touching a key lazily works too, but the first touch pays the
        instance's initialization logs inside the request path;
        benchmarks and latency-sensitive callers provision the key
        universe up front instead.
        """
        for key in keys:
            self.sim.ensure_register(key)
        # The readiness predicate touches every node, so amortize it
        # over a stride of kernel events: the workload's measured
        # window opens after preload returns, so a few events of
        # overshoot are invisible.
        ok = self.sim.run_until(
            lambda: all(node.crashed or node.ready for node in self.nodes),
            timeout=timeout,
            poll_every=PRELOAD_POLL_STRIDE,
        )
        if not ok:
            raise ReproError("preloaded registers did not become ready")

    # -- operations --------------------------------------------------------

    def shard_of(self, key: str) -> int:
        return self.shard_map.shard_of(key)

    def write(
        self, key: str, value: Any, pid: Optional[ProcessId] = None
    ) -> KVOperation:
        """Submit a write of ``key``; returns a handle immediately."""
        return self._submit("write", key, value, pid)

    def read(self, key: str, pid: Optional[ProcessId] = None) -> KVOperation:
        """Submit a read of ``key``; returns a handle immediately."""
        return self._submit("read", key, None, pid)

    def _submit(
        self, kind: str, key: str, value: Any, pid: Optional[ProcessId]
    ) -> KVOperation:
        if not isinstance(key, str) or not key:
            raise ConfigurationError("keys must be non-empty strings")
        if pid is None:
            pid = self._next_pid
            self._next_pid = (self._next_pid + 1) % self.config.num_processes
        elif not 0 <= pid < self.config.num_processes:
            raise ConfigurationError(f"pid {pid} out of range")
        self.sim.ensure_register(key)
        shard = self.shard_map.shard_of(key)
        op = KVOperation(key, kind, value, pid, shard)
        op.submitted_at = self.kernel.now
        pipeline = self._pipelines.get((pid, shard))
        if pipeline is None:
            pipeline = _ShardPipeline(self, pid, shard)
            self._pipelines[(pid, shard)] = pipeline
        pipeline.submit(op)
        return op

    def wait(
        self, handle: KVOperation, timeout: float = DEFAULT_OP_TIMEOUT
    ) -> KVOperation:
        """Advance virtual time until ``handle`` settles."""
        ok = self.sim.run_until(lambda: handle.settled, timeout=timeout)
        if not ok:
            raise ReproError(
                f"operation on {handle.key!r} did not settle within {timeout}s"
            )
        return handle

    def wait_all(
        self, handles: Sequence[KVOperation], timeout: float = DEFAULT_OP_TIMEOUT
    ) -> List[KVOperation]:
        """Advance virtual time until every handle settles."""
        ok = self.sim.run_until(
            lambda: all(handle.settled for handle in handles), timeout=timeout
        )
        if not ok:
            unsettled = [h.key for h in handles if not h.settled]
            raise ReproError(f"operations did not settle: {unsettled}")
        return list(handles)

    def write_sync(
        self,
        key: str,
        value: Any,
        pid: Optional[ProcessId] = None,
        timeout: float = DEFAULT_OP_TIMEOUT,
    ) -> KVOperation:
        """Write and run the simulation until the write returns."""
        handle = self.wait(self.write(key, value, pid=pid), timeout=timeout)
        if handle.aborted:
            raise OperationAborted(f"write of {key!r} aborted by a crash")
        return handle

    def read_sync(
        self,
        key: str,
        pid: Optional[ProcessId] = None,
        timeout: float = DEFAULT_OP_TIMEOUT,
    ) -> Any:
        """Read and run the simulation until the value is returned."""
        handle = self.wait(self.read(key, pid=pid), timeout=timeout)
        if handle.aborted:
            raise OperationAborted(f"read of {key!r} aborted by a crash")
        return handle.result

    # -- verification ------------------------------------------------------

    def per_key_histories(self) -> Dict[str, History]:
        """The recorded history, projected onto each touched key."""
        partitions = self.sim.per_register_histories()
        return {
            key: history
            for key, history in partitions.items()
            if key is not None
        }

    def check_atomicity(
        self, criterion: Optional[str] = None, initial_value: Any = None
    ) -> KVAtomicityReport:
        """Check every key's projected history against the criterion.

        Projections of up to :data:`EXHAUSTIVE_CHECK_LIMIT` operations
        go through the exhaustive black-box checker; larger ones use
        the scalable white-box tag checker
        (:mod:`repro.history.register_checker`).
        """
        if criterion is None:
            criterion = (
                "transient" if self.protocol_name == "transient" else "persistent"
            )
        report = KVAtomicityReport(criterion)
        for key, history in sorted(self.per_key_histories().items()):
            operations = history.operations()
            if not operations:
                continue
            if projection_check_method(len(operations)) == "blackbox":
                verdict = check_history(
                    history, criterion=criterion, initial_value=initial_value
                )
                report.record(key, verdict.ok, "black-box", verdict.reason)
            else:
                result = check_tagged_history(
                    history,
                    self.sim.recorder,
                    criterion=criterion,
                    initial_value=initial_value,
                )
                report.record(
                    key, result.ok, "white-box", "; ".join(result.violations)
                )
        return report
