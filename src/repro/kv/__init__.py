"""repro.kv -- a sharded key-value store over the register emulations.

The paper emulates one shared register; a store serves a keyspace.
This package closes that gap without touching the algorithms:

* every key is its own *virtual register instance*, multiplexed over
  the same simulated cluster (register-id-namespaced messages, scoped
  stable storage -- see :mod:`repro.sim.node`);
* a pluggable :class:`~repro.kv.sharding.ShardMap` (hash or consistent
  hash) assigns each key to a shard; each shard is a single-threaded
  pipeline per process, the unit of concurrency and batching;
* operations on the same shard issued within the configurable batch
  window coalesce into a single quorum round-trip (one datagram per
  destination carries every operation's protocol message);
* histories are partitioned per key so the paper's atomicity checkers
  verify every register independently -- the store is per-key
  linearizable (persistent/transient atomic, per the chosen protocol).

Quickstart::

    from repro.kv import KVCluster

    kv = KVCluster(protocol="persistent", num_processes=5, num_shards=8)
    kv.start()
    kv.write_sync("user:42", {"name": "ada"})
    assert kv.read_sync("user:42") == {"name": "ada"}
    kv.crash(0)
    kv.recover(0)
    assert kv.check_atomicity().ok
"""

from repro.kv.sharding import ConsistentHashShardMap, HashShardMap, ShardMap
from repro.kv.store import KVAtomicityReport, KVCluster, KVOperation

__all__ = [
    "ConsistentHashShardMap",
    "HashShardMap",
    "KVAtomicityReport",
    "KVCluster",
    "KVOperation",
    "ShardMap",
]
