"""Metrics registry: counters, gauges and fixed-bucket histograms.

The hot-path contract is *pre-resolved handles*: instrumented code asks
the registry for a :class:`Counter` / :class:`Gauge` / :class:`Histogram`
once, at wiring time, and then updates the returned object with plain
attribute arithmetic -- no dict lookup, no string hashing, no branching
on "is telemetry enabled" inside the kernel loop.

* :class:`Counter` -- monotonic ``inc``-only total.
* :class:`Gauge` -- a point-in-time value; either ``set()`` by the
  producer or *pull-based* (constructed with ``fn=``), sampled only
  when a snapshot is taken.  Pull gauges are how the backends expose
  their existing native counters (``SimNetwork.messages_sent`` etc.)
  with **zero** added hot-path cost.
* :class:`Histogram` -- fixed geometric buckets with ``O(log buckets)``
  ``observe`` and p50/p99 estimated from bucket counts.  The estimate
  is validated against the exact :func:`repro.obs.summary.percentile`
  in the unit tests; both share one quantile convention.
* :class:`MetricsRegistry` -- the name -> instrument directory;
  ``snapshot()`` freezes everything into a :class:`MetricsSnapshot`.
* :class:`MetricsSnapshot` -- plain data; ``diff`` (per-phase windows)
  and ``merge`` (future fleet aggregation) compose snapshots.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from math import fsum
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.summary import percentile  # noqa: F401  (shared convention)

#: Default histogram bucket upper bounds: geometric, factor 2, from one
#: microsecond to ~134 seconds -- covers both simulated-time operation
#: latencies (tens of microseconds) and wall-clock phases.  A final
#: implicit +inf bucket catches everything above.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    1e-6 * (2.0 ** i) for i in range(28)
)


class Counter:
    """A monotonically increasing total, updated via a resolved handle."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value: ``set()`` by hand or pulled via ``fn``.

    Pull gauges (``fn`` given) cost nothing until a snapshot samples
    them -- the instrumented code keeps updating its own plain ``int``
    attribute exactly as before.
    """

    __slots__ = ("name", "value", "fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self.value = value

    def sample(self) -> float:
        return self.fn() if self.fn is not None else self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name})"


class Histogram:
    """Fixed-bucket histogram with percentile estimates.

    ``observe`` is a ``bisect`` over the static bound table plus two
    integer adds -- cheap enough for per-operation latencies.  Bucket
    counts are exact; quantiles are estimated by linear interpolation
    inside the winning bucket (tested against the exact percentile to
    within one bucket's width).
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum",
                 "minimum", "maximum")

    def __init__(self, name: str,
                 bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # final slot: > bounds[-1]
        self.total = 0
        self.sum = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.total += 1
        self.sum += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-th percentile (0..100) from bucket counts."""
        if self.total == 0:
            return None
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        target = self.total * (q / 100.0)
        cumulative = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if cumulative + count >= target:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (self.bounds[index] if index < len(self.bounds)
                         else (self.maximum or lower))
                upper = max(upper, lower)
                fraction = (target - cumulative) / count
                return lower + (upper - lower) * fraction
            cumulative += count
        return self.maximum

    def snapshot(self) -> "HistogramSnapshot":
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(self.counts),
            total=self.total,
            sum=self.sum,
            minimum=self.minimum,
            maximum=self.maximum,
        )

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.total})"


@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen histogram state: exact bucket counts plus extremes.

    ``diff`` subtracts bucket counts (a window of a monotonic series);
    window ``minimum``/``maximum`` are not recoverable from cumulative
    extremes, so a diff keeps the newer snapshot's values as a bound.
    """

    bounds: Tuple[float, ...]
    counts: Tuple[int, ...]
    total: int
    sum: float
    minimum: Optional[float]
    maximum: Optional[float]

    def quantile(self, q: float) -> Optional[float]:
        """Same bucket-interpolating estimate as the live histogram."""
        if self.total == 0:
            return None
        target = self.total * (q / 100.0)
        cumulative = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if cumulative + count >= target:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (self.bounds[index] if index < len(self.bounds)
                         else (self.maximum or lower))
                upper = max(upper, lower)
                fraction = (target - cumulative) / count
                return lower + (upper - lower) * fraction
            cumulative += count
        return self.maximum

    def diff(self, earlier: "HistogramSnapshot") -> "HistogramSnapshot":
        if earlier.bounds != self.bounds:
            raise ValueError("cannot diff histograms with different buckets")
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(a - b for a, b in zip(self.counts, earlier.counts)),
            total=self.total - earlier.total,
            sum=self.sum - earlier.sum,
            minimum=self.minimum,
            maximum=self.maximum,
        )

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        extremes = [v for v in (self.minimum, other.minimum) if v is not None]
        peaks = [v for v in (self.maximum, other.maximum) if v is not None]
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            sum=self.sum + other.sum,
            minimum=min(extremes) if extremes else None,
            maximum=max(peaks) if peaks else None,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.total,
            "sum": self.sum,
            "mean": (self.sum / self.total) if self.total else 0.0,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.quantile(50.0),
            "p99": self.quantile(99.0),
        }

    def to_wire(self) -> Dict[str, Any]:
        """A lossless JSON-able form (unlike the ``as_dict`` summary).

        ``as_dict`` reduces the histogram to estimated quantiles;
        ``to_wire`` keeps the exact bucket counts so a snapshot can
        cross a process or file boundary and still :meth:`merge`.
        """
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "HistogramSnapshot":
        return cls(
            bounds=tuple(wire["bounds"]),
            counts=tuple(wire["counts"]),
            total=wire["total"],
            sum=wire["sum"],
            minimum=wire["min"],
            maximum=wire["max"],
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen, backend-uniform view of every registered instrument.

    ``scalars`` holds counter totals and sampled gauge values keyed by
    metric name; ``histograms`` holds :class:`HistogramSnapshot`
    objects.  Snapshots compose: ``later.diff(earlier)`` yields the
    window between two moments of one run (how scenarios attribute
    traffic to phases), ``a.merge(b)`` adds independent runs together
    (fleet aggregation).
    """

    scalars: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramSnapshot] = field(default_factory=dict)

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """The window between ``earlier`` and this snapshot of one run."""
        scalars = {
            name: value - earlier.scalars.get(name, 0)
            for name, value in self.scalars.items()
        }
        histograms = {}
        for name, snap in self.histograms.items():
            before = earlier.histograms.get(name)
            histograms[name] = snap.diff(before) if before else snap
        return MetricsSnapshot(scalars=scalars, histograms=histograms)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Elementwise sum of two independent snapshots."""
        scalars = dict(self.scalars)
        for name, value in other.scalars.items():
            scalars[name] = scalars.get(name, 0) + value
        histograms = dict(self.histograms)
        for name, snap in other.histograms.items():
            mine = histograms.get(name)
            histograms[name] = mine.merge(snap) if mine else snap
        return MetricsSnapshot(scalars=scalars, histograms=histograms)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly nested dict (stable key order via sorting)."""
        return {
            "scalars": {k: self.scalars[k] for k in sorted(self.scalars)},
            "histograms": {
                k: self.histograms[k].as_dict()
                for k in sorted(self.histograms)
            },
        }

    def to_wire(self) -> Dict[str, Any]:
        """A lossless JSON-able form for crossing process boundaries.

        Unlike :meth:`as_dict` (a human/benchmark summary with
        estimated quantiles), the wire form round-trips through
        :meth:`from_wire` without losing histogram bucket counts, so
        fleet workers can ship snapshots home as plain data and the
        parent can still :meth:`merge` them exactly.
        """
        return {
            "scalars": {k: self.scalars[k] for k in sorted(self.scalars)},
            "histograms": {
                k: self.histograms[k].to_wire()
                for k in sorted(self.histograms)
            },
        }

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "MetricsSnapshot":
        return cls(
            scalars=dict(wire.get("scalars", {})),
            histograms={
                name: HistogramSnapshot.from_wire(h)
                for name, h in wire.get("histograms", {}).items()
            },
        )

    def format(self, limit: Optional[int] = None) -> str:
        """An aligned text table, largest scalars first (CLI output)."""
        rows = sorted(
            self.scalars.items(), key=lambda kv: (-abs(kv[1]), kv[0])
        )
        if limit is not None:
            rows = rows[:limit]
        lines = []
        width = max((len(name) for name, _ in rows), default=0)
        for name, value in rows:
            rendered = f"{value:.6f}".rstrip("0").rstrip(".") \
                if isinstance(value, float) and value != int(value) \
                else f"{int(value)}"
            lines.append(f"{name:<{width}}  {rendered}")
        for name in sorted(self.histograms):
            snap = self.histograms[name]
            if snap.total == 0:
                continue
            summary = snap.as_dict()
            lines.append(
                f"{name}: n={summary['count']} "
                f"mean={summary['mean'] * 1e6:.1f}us "
                f"p50={summary['p50'] * 1e6:.1f}us "
                f"p99={summary['p99'] * 1e6:.1f}us "
                f"max={summary['max'] * 1e6:.1f}us"
            )
        return "\n".join(lines)


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Merge independent snapshots into one, insensitive to order.

    Pairwise :meth:`MetricsSnapshot.merge` is associative over counter
    values but accumulates float rounding in fold order; this helper
    sums every scalar and histogram ``sum`` with :func:`math.fsum`
    (exact accumulation, rounded once), so **any** permutation of the
    same snapshots produces the bit-identical merged snapshot.  That is
    the contract fleet aggregation relies on: per-run results land in
    completion order, which varies run to run, and the merged report
    must not.
    """
    snapshots = list(snapshots)
    scalar_parts: Dict[str, List[float]] = {}
    hist_parts: Dict[str, List[HistogramSnapshot]] = {}
    for snapshot in snapshots:
        for name, value in snapshot.scalars.items():
            scalar_parts.setdefault(name, []).append(value)
        for name, hist in snapshot.histograms.items():
            hist_parts.setdefault(name, []).append(hist)
    histograms: Dict[str, HistogramSnapshot] = {}
    for name, parts in hist_parts.items():
        bounds = parts[0].bounds
        if any(part.bounds != bounds for part in parts[1:]):
            raise ValueError(
                f"cannot merge histogram {name!r}: bucket bounds differ"
            )
        extremes = [p.minimum for p in parts if p.minimum is not None]
        peaks = [p.maximum for p in parts if p.maximum is not None]
        histograms[name] = HistogramSnapshot(
            bounds=bounds,
            counts=tuple(
                sum(part.counts[i] for part in parts)
                for i in range(len(bounds) + 1)
            ),
            total=sum(part.total for part in parts),
            sum=fsum(part.sum for part in parts),
            minimum=min(extremes) if extremes else None,
            maximum=max(peaks) if peaks else None,
        )
    return MetricsSnapshot(
        scalars={
            name: fsum(parts) for name, parts in scalar_parts.items()
        },
        histograms=histograms,
    )


class MetricsRegistry:
    """The name -> instrument directory behind ``Cluster.metrics()``.

    Instruments are created on first request and returned verbatim on
    repeats, so wiring code can resolve handles idempotently.  A name
    identifies exactly one instrument kind; re-requesting it as a
    different kind is a :class:`ValueError` (catches wiring typos).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        handle = self._counters.get(name)
        if handle is None:
            self._check_free(name, "counter")
            handle = self._counters[name] = Counter(name)
        return handle

    def gauge(self, name: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        handle = self._gauges.get(name)
        if handle is None:
            self._check_free(name, "gauge")
            handle = self._gauges[name] = Gauge(name, fn=fn)
        elif fn is not None:
            handle.fn = fn
        return handle

    def histogram(self, name: str,
                  bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        handle = self._histograms.get(name)
        if handle is None:
            self._check_free(name, "histogram")
            handle = self._histograms[name] = Histogram(name, bounds=bounds)
        return handle

    def names(self) -> List[str]:
        return sorted(
            list(self._counters)
            + list(self._gauges)
            + list(self._histograms)
        )

    def snapshot(self) -> MetricsSnapshot:
        """Freeze every instrument (pull gauges are sampled here)."""
        scalars: Dict[str, float] = {}
        for name, counter in self._counters.items():
            scalars[name] = counter.value
        for name, gauge in self._gauges.items():
            scalars[name] = gauge.sample()
        return MetricsSnapshot(
            scalars=scalars,
            histograms={
                name: histogram.snapshot()
                for name, histogram in self._histograms.items()
            },
        )
