"""The flight recorder: a bounded binary ring of trace codes.

Where the full :class:`repro.sim.tracing.Trace` stores one frozen
``TraceEvent`` dataclass (with a detail dict) per event, the ring
stores four parallel pre-allocated list slots per event -- time, a
small-int kind code, the node id and an opaque op reference -- and
overwrites the oldest entry when full.  A slot store allocates
*nothing* (the stored objects already exist on the caller's frame) and
triggers no cyclic-GC bookkeeping, which is what makes the recorder
cheap enough to leave **always on**: when a soak run crashes or a
checker flags a violation, the last ``capacity`` events are already in
memory, no re-run with capture enabled required.

Recording never touches the kernel: no events, no randomness, no
allocation beyond the slot assignments.  The hot-path attributes are
deliberately public so the simulator's trace can inline the store
sequence without a method call per event (see
:meth:`repro.sim.tracing.Trace.tick`); :meth:`RingTrace.record` wraps
the same steps for everyone else.  Decoding is on demand only:
:meth:`RingTrace.events` yields light tuples in chronological order,
:meth:`RingTrace.to_trace_events` rehydrates today's ``TraceEvent``
stream, and :meth:`RingTrace.to_chrome_trace` /
:meth:`RingTrace.to_jsonl` export for chrome://tracing and scripts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, NamedTuple, Sequence, Tuple

#: Default ring capacity: 64Ki events (~2MB of slots) holds the full
#: tail of any scenario phase while staying negligible next to the
#: history the checker keeps anyway.
DEFAULT_CAPACITY = 65536


class RingEvent(NamedTuple):
    """One decoded flight-recorder entry."""

    time: float
    kind: str
    pid: int
    op: Any


class RingTrace:
    """Bounded ring of ``(time, kind-id, pid, op)`` codes.

    ``kinds`` is the kind-name table; recorded slots carry the *index*
    into it (resolve once via :meth:`kind_id` at wiring time, the same
    pre-resolved-handle discipline as the metrics registry).

    The slot lists (:attr:`times`/:attr:`codes`/:attr:`pids`/
    :attr:`ops`) plus the :attr:`next_index`/:attr:`wraps` cursor are
    public on purpose: they are the inlinable hot path.  A writer
    stores into all four lists at ``next_index``, then advances the
    cursor, bumping :attr:`wraps` when it returns to zero --
    :attr:`total` is derived from the cursor, so recording an event
    costs no separate counter update.
    """

    __slots__ = ("kinds", "capacity", "times", "codes", "pids", "ops",
                 "next_index", "wraps")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 kinds: Sequence[str] = ()) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.kinds = tuple(kinds)
        self.capacity = capacity
        self.times: List[float] = [0.0] * capacity
        self.codes: List[int] = [0] * capacity
        self.pids: List[int] = [0] * capacity
        self.ops: List[Any] = [None] * capacity
        #: Next slot to overwrite, and completed trips around the ring.
        self.next_index = 0
        self.wraps = 0

    def kind_id(self, kind: str) -> int:
        """Resolve a kind name to its code (do this once, not per event)."""
        return self.kinds.index(kind)

    def record(self, time: float, kind_id: int, pid: int, op: Any) -> None:
        """Append one event, overwriting the oldest when full."""
        index = self.next_index
        self.times[index] = time
        self.codes[index] = kind_id
        self.pids[index] = pid
        self.ops[index] = op
        index += 1
        if index == self.capacity:
            self.next_index = 0
            self.wraps += 1
        else:
            self.next_index = index

    @property
    def total(self) -> int:
        """Events ever recorded (including since-overwritten ones)."""
        return self.wraps * self.capacity + self.next_index

    @property
    def dropped(self) -> int:
        """Events overwritten because the ring wrapped."""
        return max(0, self.total - self.capacity)

    def __len__(self) -> int:
        return min(self.total, self.capacity)

    def _indexes(self) -> Iterator[int]:
        """Retained slot indexes, oldest first."""
        if self.wraps == 0:
            yield from range(self.next_index)
        else:
            yield from range(self.next_index, self.capacity)
            yield from range(self.next_index)

    def events(self) -> List[RingEvent]:
        """Decode the retained window, oldest first."""
        times, codes, pids, ops, kinds = (
            self.times, self.codes, self.pids, self.ops, self.kinds
        )
        return [
            RingEvent(times[i], kinds[codes[i]], pids[i], ops[i])
            for i in self._indexes()
        ]

    def to_trace_events(self) -> List[Any]:
        """Rehydrate the window as :class:`repro.sim.tracing.TraceEvent`.

        Import is deferred: :mod:`repro.sim.tracing` embeds a ring, so
        a module-level import here would be a cycle.
        """
        from repro.sim.tracing import TraceEvent

        return [
            TraceEvent(
                time=event.time,
                kind=event.kind,
                pid=event.pid,
                detail={"op": event.op} if event.op is not None else {},
            )
            for event in self.events()
        ]

    def to_jsonl(self) -> str:
        """One compact JSON object per retained event."""
        lines = []
        for event in self.events():
            record: Dict[str, Any] = {
                "t": event.time, "kind": event.kind, "pid": event.pid,
            }
            if event.op is not None:
                record["op"] = str(event.op)
            lines.append(json.dumps(record, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The window as Chrome ``trace_event`` JSON (object form).

        Load the dumped dict in ``chrome://tracing`` or Perfetto: each
        event is a thread-scoped instant on the row of the node that
        produced it, timestamped in microseconds of simulated (or
        wall) time.
        """
        decoded = self.events()
        trace_events: List[Dict[str, Any]] = []
        for event in decoded:
            entry: Dict[str, Any] = {
                "name": event.kind,
                "ph": "i",
                "s": "t",
                "ts": event.time * 1e6,
                "pid": 0,
                "tid": event.pid,
            }
            if event.op is not None:
                entry["args"] = {"op": str(event.op)}
            trace_events.append(entry)
        metadata = [
            {
                "name": "thread_name", "ph": "M", "pid": 0, "tid": pid,
                "args": {"name": f"p{pid}"},
            }
            for pid in sorted({event.pid for event in decoded})
        ]
        return {
            "displayTimeUnit": "ms",
            "traceEvents": metadata + trace_events,
        }

    def counts(self) -> Dict[str, int]:
        """Per-kind totals of the *retained* window."""
        totals: Dict[str, int] = {}
        kinds = self.kinds
        codes = self.codes
        for i in self._indexes():
            kind = kinds[codes[i]]
            totals[kind] = totals.get(kind, 0) + 1
        return totals

    def __repr__(self) -> str:
        return (
            f"RingTrace(capacity={self.capacity}, retained={len(self)}, "
            f"total={self.total})"
        )


__all__: Tuple[str, ...] = (
    "DEFAULT_CAPACITY", "RingEvent", "RingTrace",
)
