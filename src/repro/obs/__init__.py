"""``repro.obs``: low-overhead telemetry for every backend.

Three pieces, one discipline (resolve handles once, never pay a dict
lookup or a feature branch on the hot path):

* :mod:`repro.obs.metrics` -- the counters / gauges / fixed-bucket
  histogram registry behind ``Cluster.metrics()``, frozen into
  diffable, mergeable :class:`~repro.obs.metrics.MetricsSnapshot`\\ s.
* :mod:`repro.obs.ring` -- the always-on binary flight recorder the
  sim trace and the live transports feed; decodes to ``TraceEvent``
  streams, JSONL and Chrome ``trace_event`` JSON on demand.
* :mod:`repro.obs.summary` -- the single exact percentile /
  ``WallClockStats`` / ``LatencyStats`` implementation, re-exported
  from :mod:`repro.metrics` for its historical callers.

None of it consumes kernel events or randomness: seeded runs are
byte-identical with telemetry on or off (the determinism goldens
assert exactly that).  See ``docs/observability.md``.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)
from repro.obs.ring import DEFAULT_CAPACITY, RingEvent, RingTrace
from repro.obs.summary import LatencyStats, WallClockStats, percentile

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_CAPACITY",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "LatencyStats",
    "MetricsRegistry",
    "MetricsSnapshot",
    "RingEvent",
    "RingTrace",
    "WallClockStats",
    "merge_snapshots",
    "percentile",
]
