"""Shared summary statistics: the single percentile implementation.

Home of the exact (sample-sorting) percentile math and the two summary
dataclasses the benchmark and experiment harnesses report.  These used
to live in :mod:`repro.metrics`, which still re-exports them unchanged;
they moved here so the telemetry layer's bucketed histograms
(:mod:`repro.obs.metrics`) and the exact summaries are one family with
one quantile convention instead of two drifting copies.

* :func:`percentile` -- exact ``q``-th percentile with linear
  interpolation, small-sample friendly.
* :class:`WallClockStats` -- repeated-run wall-clock summary (best /
  mean / p50 / p99 / worst), the row format of every ``BENCH_*.json``.
* :class:`LatencyStats` -- simulated-time latency summary in the units
  the paper's graphs use.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Small-sample friendly: ``p99`` of five samples interpolates toward
    the maximum instead of requiring a hundred runs.
    """
    if not samples:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * (q / 100.0)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


@dataclass
class WallClockStats:
    """Wall-clock summary of repeated benchmark runs, in seconds."""

    count: int = 0
    best: float = 0.0
    mean: float = 0.0
    p50: float = 0.0
    p99: float = 0.0
    worst: float = 0.0

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "WallClockStats":
        if not samples:
            return cls()
        return cls(
            count=len(samples),
            best=min(samples),
            mean=statistics.fmean(samples),
            p50=percentile(samples, 50.0),
            p99=percentile(samples, 99.0),
            worst=max(samples),
        )

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly form for the ``BENCH_*.json`` trajectory files."""
        return {
            "count": self.count,
            "best_s": self.best,
            "mean_s": self.mean,
            "p50_s": self.p50,
            "p99_s": self.p99,
            "worst_s": self.worst,
        }

    def ops_per_sec(self, operations: int) -> float:
        """Median throughput: ``operations`` per second of p50 wall time.

        The unit every ``BENCH_*.json`` trajectory point reports for
        the engine, checker and KV suites.
        """
        if self.p50 <= 0:
            return 0.0
        return operations / self.p50


@dataclass
class LatencyStats:
    """Summary statistics of a latency sample, in seconds."""

    count: int = 0
    mean: float = 0.0
    median: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    stdev: float = 0.0

    @classmethod
    def from_samples(cls, samples: List[float]) -> "LatencyStats":
        if not samples:
            return cls()
        return cls(
            count=len(samples),
            mean=statistics.fmean(samples),
            median=statistics.median(samples),
            minimum=min(samples),
            maximum=max(samples),
            stdev=statistics.pstdev(samples) if len(samples) > 1 else 0.0,
        )

    @property
    def mean_us(self) -> float:
        """Mean in microseconds, the unit of the paper's graphs."""
        return self.mean * 1e6
