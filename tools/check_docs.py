#!/usr/bin/env python
"""Documentation health check: intra-repo links and importable modules.

Two gates, both cheap enough for every CI run and the tier-1 suite
(``tests/unit/test_docs.py`` calls the same functions):

1. **Links** -- every relative markdown link in ``README.md`` and the
   ``docs/`` tree must point at a file (or directory) that exists in
   the repo.  External (``http``/``https``/``mailto``) links are not
   checked.
2. **Modules** -- every public module under ``src/repro`` must import
   cleanly (what ``python -m pydoc repro.x`` requires) and carry a
   module docstring, so the API documentation pydoc renders never goes
   stale or breaks.
3. **Lint rules** -- the linter's rule registry (``repro.lint.RULES``)
   and the docs must agree in both directions: every registered rule
   id is documented in ``docs/determinism.md``, and every rule id
   mentioned anywhere in the docs exists in the registry (a doc that
   cites a deleted or mistyped rule is lying about what is enforced).

Exit status is non-zero with a readable report when any gate fails::

    python tools/check_docs.py
"""

from __future__ import annotations

import importlib
import pkgutil
import re
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose relative links must resolve.
DOC_GLOBS = ("README.md", "ROADMAP.md", "CHANGES.md", "docs/*.md")

#: ``[text](target)`` -- good enough for the hand-written docs here
#: (no nested brackets, no angle-bracket targets).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_EXTERNAL = ("http://", "https://", "mailto:")


def iter_doc_files() -> List[Path]:
    files: List[Path] = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(REPO_ROOT.glob(pattern)))
    return files


def check_links() -> List[str]:
    """Broken relative links, as ``file: target`` strings."""
    problems = []
    for doc in iter_doc_files():
        for target in _LINK.findall(doc.read_text()):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(REPO_ROOT)}: broken link -> {target}"
                )
    return problems


def iter_public_modules() -> List[str]:
    """Every importable module name under ``src/repro``, no privates."""
    src = REPO_ROOT / "src"
    names = ["repro"]
    for info in pkgutil.walk_packages([str(src / "repro")], prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        names.append(info.name)
    return sorted(names)


def check_modules() -> List[str]:
    """Modules that fail to import or lack a docstring."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    problems = []
    for name in iter_public_modules():
        try:
            module = importlib.import_module(name)
        except Exception as exc:  # pydoc would fail identically
            problems.append(f"{name}: import failed -- {exc!r}")
            continue
        doc = (module.__doc__ or "").strip()
        if not doc:
            problems.append(f"{name}: missing module docstring")
    return problems


#: Rule-id tokens worth cross-checking: the registry's prefixes with a
#: three-digit number.  Keeping the prefixes explicit avoids false
#: positives on other ALLCAPS+digits tokens in prose.
_RULE_ID = re.compile(r"\b(?:DET|TRC|HOT|API|POOL|LINT)[0-9]{3}\b")

#: The document that must describe every registered lint rule.
RULES_DOC = "docs/determinism.md"


def check_lint_rules() -> List[str]:
    """Registry/docs rule-id drift, in both directions."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.lint import all_rule_ids

    registered = set(all_rule_ids())
    problems = []

    rules_doc = REPO_ROOT / RULES_DOC
    documented = (
        set(_RULE_ID.findall(rules_doc.read_text()))
        if rules_doc.is_file()
        else set()
    )
    for rule_id in sorted(registered - documented):
        problems.append(
            f"{RULES_DOC}: registered lint rule {rule_id} is not documented"
        )

    for doc in iter_doc_files():
        for rule_id in sorted(set(_RULE_ID.findall(doc.read_text()))):
            if rule_id not in registered:
                problems.append(
                    f"{doc.relative_to(REPO_ROOT)}: mentions lint rule "
                    f"{rule_id}, which is not in the registry"
                )
    return problems


def main() -> int:
    problems = check_links() + check_modules() + check_lint_rules()
    for problem in problems:
        print(problem)
    checked = len(iter_doc_files())
    modules = len(iter_public_modules())
    if problems:
        print(f"\nFAILED: {len(problems)} problem(s)")
        return 1
    print(
        f"ok: {checked} doc files link-clean, {modules} modules "
        "documented, lint rules in sync"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
