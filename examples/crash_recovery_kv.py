"""A replicated configuration store that rides out power failures.

The paper's motivation: distributed programming with shared memory is
easier than with message passing.  This example builds the kind of
application the abstraction is for -- a small cluster-wide
configuration store (feature flags, leader hints, rate limits) -- on
the real :class:`repro.kv.KVCluster`: every key is a virtual register
instance multiplexed over ONE five-replica cluster (not a cluster per
key), keys are sharded across per-process pipelines, and same-shard
updates batch into shared quorum round-trips.  Then we abuse it with
the failures the crash-recovery model allows:

* rolling restarts (each replica crashes and recovers in turn),
* a correlated crash of every replica at once (power loss),
* an update issued while part of the cluster is down.

Because every register is persistent atomic, readers always see a
consistent, most-recent value -- no matter which replica they ask and
what crashed in between -- and the run's per-key histories prove it
via the paper's atomicity checkers.

Usage::

    python examples/crash_recovery_kv.py
"""

from repro.kv import KVCluster

CONFIG_KEYS = (
    "feature.dark_mode",
    "limits.requests_per_second",
    "routing.primary_region",
)


def main() -> None:
    store = KVCluster(
        protocol="persistent",
        num_processes=5,
        num_shards=4,
        batch_window=2e-5,  # 20us of virtual time to coalesce round-trips
        seed=0,
    )
    store.start()

    print("== initial configuration ==")
    store.write_sync("feature.dark_mode", True)
    store.write_sync("limits.requests_per_second", 1000)
    store.write_sync("routing.primary_region", "eu-west")
    for key in CONFIG_KEYS:
        print(f"  {key} = {store.read_sync(key, pid=3)!r}")

    print("== rolling restart: every replica crashes and recovers ==")
    for pid in range(5):
        store.crash(pid)
        store.recover(pid)
    print(
        f"  dark_mode read from restarted replica 4: "
        f"{store.read_sync('feature.dark_mode', pid=4)!r}"
    )

    print("== update during a partial outage (2 of 5 replicas down) ==")
    store.crash(3)
    store.crash(4)
    store.write_sync("limits.requests_per_second", 250, pid=1)
    print(
        f"  rps while degraded: "
        f"{store.read_sync('limits.requests_per_second', pid=2)!r}"
    )
    store.recover(3)
    store.recover(4)
    print(
        f"  rps from recovered replica 3: "
        f"{store.read_sync('limits.requests_per_second', pid=3)!r}"
    )

    print("== datacenter power loss: all replicas crash at once ==")
    for pid in range(5):
        store.crash(pid)
    # Recovery of a persistent replica replays its last write to a
    # majority, so after a total outage the replicas must be restarted
    # together before any can finish recovering.
    for pid in range(5):
        store.recover(pid, wait=False)
    store.run_until(lambda: all(node.ready for node in store.nodes), timeout=5.0)
    for key in CONFIG_KEYS:
        print(f"  {key} = {store.read_sync(key, pid=0)!r}")

    # Every key's projected history is verified independently: small
    # projections by the exhaustive black-box search, large ones by the
    # scalable white-box tag checker (see docs/checking.md).
    report = store.check_atomicity()
    checkers = sorted({checker for _, checker, _ in report.per_key.values()})
    print(f"== all {len(report.per_key)} per-key histories atomic: "
          f"{report.ok} (via {', '.join(checkers)}) ==")


if __name__ == "__main__":
    main()
