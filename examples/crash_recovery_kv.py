"""A replicated configuration store that rides out power failures.

The paper's motivation: distributed programming with shared memory is
easier than with message passing.  This example builds the kind of
application the abstraction is for -- a small cluster-wide
configuration store (feature flags, leader hints, rate limits) -- on
top of the emulated register, then abuses it with the failures the
crash-recovery model allows:

* rolling restarts (each node crashes and recovers in turn),
* a correlated crash of every node at once (power loss),
* a writer dying mid-update.

Each configuration *key* is one multi-writer/multi-reader register;
the store is just a dict of registers.  Because every register is
persistent atomic, readers always see a consistent, most-recent value
-- no matter which replica they ask and what crashed in between.

Usage::

    python examples/crash_recovery_kv.py
"""

from typing import Any, Dict

from repro import SimCluster
from repro.sim.node import SimOperation


class ConfigStore:
    """A tiny replicated key-value store: one register per key."""

    def __init__(self, num_replicas: int = 5, seed: int = 0):
        self._clusters: Dict[str, SimCluster] = {}
        self._num_replicas = num_replicas
        self._seed = seed

    def _register(self, key: str) -> SimCluster:
        if key not in self._clusters:
            cluster = SimCluster(
                protocol="persistent",
                num_processes=self._num_replicas,
                seed=self._seed + len(self._clusters),
            )
            cluster.start()
            self._clusters[key] = cluster
        return self._clusters[key]

    def set(self, key: str, value: Any, via_replica: int = 0) -> SimOperation:
        return self._register(key).write_sync(via_replica, value)

    def get(self, key: str, via_replica: int = 0) -> Any:
        return self._register(key).read_sync(via_replica)

    # -- failure injection, forwarded to every key's register cluster ----

    def crash_replica(self, pid: int) -> None:
        for cluster in self._clusters.values():
            if not cluster.node(pid).crashed:
                cluster.crash(pid)

    def recover_replica(self, pid: int, wait: bool = True) -> None:
        for cluster in self._clusters.values():
            if cluster.node(pid).crashed:
                cluster.recover(pid, wait=wait)

    def wait_all_ready(self) -> None:
        for cluster in self._clusters.values():
            cluster.run_until(
                lambda c=cluster: all(node.ready for node in c.nodes), timeout=5.0
            )

    def verify(self) -> bool:
        return all(
            cluster.check_atomicity().ok for cluster in self._clusters.values()
        )


def main() -> None:
    store = ConfigStore(num_replicas=5)

    print("== initial configuration ==")
    store.set("feature.dark_mode", True)
    store.set("limits.requests_per_second", 1000)
    store.set("routing.primary_region", "eu-west")
    for key in ("feature.dark_mode", "limits.requests_per_second",
                "routing.primary_region"):
        print(f"  {key} = {store.get(key, via_replica=3)!r}")

    print("== rolling restart: every replica crashes and recovers ==")
    for pid in range(5):
        store.crash_replica(pid)
        store.recover_replica(pid)
    print(f"  dark_mode read from restarted replica 4: "
          f"{store.get('feature.dark_mode', via_replica=4)!r}")

    print("== update during a partial outage (2 of 5 replicas down) ==")
    store.crash_replica(3)
    store.crash_replica(4)
    store.set("limits.requests_per_second", 250, via_replica=1)
    print(f"  rps while degraded: "
          f"{store.get('limits.requests_per_second', via_replica=2)!r}")
    store.recover_replica(3)
    store.recover_replica(4)
    print(f"  rps from recovered replica 3: "
          f"{store.get('limits.requests_per_second', via_replica=3)!r}")

    print("== datacenter power loss: all replicas crash at once ==")
    for pid in range(5):
        store.crash_replica(pid)
    # Recovery of a persistent replica replays its last write to a
    # majority, so after a total outage the replicas must be restarted
    # together before any can finish recovering.
    for pid in range(5):
        store.recover_replica(pid, wait=False)
    store.wait_all_ready()
    for key in ("feature.dark_mode", "limits.requests_per_second",
                "routing.primary_region"):
        print(f"  {key} = {store.get(key, via_replica=0)!r}")

    print(f"== all histories atomic: {store.verify()} ==")


if __name__ == "__main__":
    main()
