"""Drive the cluster with declarative, reproducible fault scenarios.

The scenario layer (:mod:`repro.scenarios`) is the simulator as an
adversary: named programs composing workload phases, fault schedules
(crashes, partitions, loss bursts, slow links, trace-triggered
crashes) and per-phase incremental verification.  This example runs a
library scenario, proves the run is a pure function of its seed, and
builds a custom scenario from the primitives.

Usage::

    python examples/fault_scenarios.py
"""

from repro.scenarios import (
    Downtime,
    PartitionWindow,
    Scenario,
    WorkloadPhase,
    get_scenario,
    run_scenario,
)

#: Operation budget for the example runs (keeps it snappy; scenarios
#: scale to any budget via ``ops`` -- the library default for
#: ``soak-100k`` is 100,000).
OPS = 200


def main() -> None:
    print("== a library scenario: rolling-crash ==")
    result = run_scenario(get_scenario("rolling-crash"), ops=OPS, seed=7)
    print(result.summary())

    print()
    print("== same seed, same run (the determinism contract) ==")
    again = run_scenario(get_scenario("rolling-crash"), ops=OPS, seed=7)
    same = result.fingerprint() == again.fingerprint()
    print(f"  fingerprints identical: {same}")

    print()
    print("== a custom scenario from the primitives ==")
    custom = Scenario(
        name="flaky-afternoon",
        description="one replica flaps while another is partitioned away",
        default_ops=OPS,
        phases=(
            WorkloadPhase(name="calm", weight=1.0),
            WorkloadPhase(
                name="flaky",
                weight=2.0,
                read_fraction=0.7,
                faults=(
                    Downtime(pid=1, start=1e-3, end=4e-3),
                    PartitionWindow(
                        group_a=(4,), group_b=(0, 1, 2, 3),
                        start=2e-3, end=7e-3,
                    ),
                ),
            ),
        ),
    )
    verdict = run_scenario(custom, seed=3)
    print(verdict.summary())


if __name__ == "__main__":
    main()
