"""Run the emulation over real UDP sockets and real fsync'd files.

The simulator is calibrated and deterministic; this example is the
opposite: the same protocol classes hosted on asyncio, exchanging real
datagrams on localhost and logging to a real directory with ``fsync``
-- the Python analogue of the paper's C/UDP testbed.  It reports the
measured write latency split across the three algorithms, which shows
the same +1 log / +2 log hierarchy as Figure 6 (the absolute numbers
depend on your disk: on modern NVMe an fsync costs tens of
microseconds, not the 200 us of a 2003 IDE disk).

Usage::

    python examples/live_udp_cluster.py
"""

import statistics
import time

from repro.runtime import LiveCluster

ALGORITHMS = ("crash-stop", "transient", "persistent")
WRITES = 30


def measure(protocol: str) -> float:
    with LiveCluster(protocol=protocol, num_processes=3) as cluster:
        samples = []
        for i in range(WRITES):
            start = time.perf_counter()
            cluster.write(0, f"value-{i}")
            samples.append(time.perf_counter() - start)
        return statistics.median(samples)


def main() -> None:
    print(f"{WRITES} writes per algorithm, 3 nodes on localhost UDP\n")
    results = {}
    for protocol in ALGORITHMS:
        results[protocol] = measure(protocol)
        print(f"  {protocol:<12s} median write latency: "
              f"{results[protocol] * 1e6:8.0f} us")
    print()
    base = results["crash-stop"]
    print("relative to the crash-stop baseline (paper: 1.0 / ~1.4 / ~1.8):")
    for protocol in ALGORITHMS:
        print(f"  {protocol:<12s} {results[protocol] / base:4.2f}x")

    print("\ncrash/recovery through the filesystem:")
    with LiveCluster(protocol="persistent", num_processes=3) as cluster:
        cluster.write(0, "survives-reboot")
        cluster.crash_node(0)
        cluster.recover_node(0)
        print(f"  read after recovery: {cluster.read(0)!r}")


if __name__ == "__main__":
    main()
