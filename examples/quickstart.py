"""Quickstart: emulate a robust shared register over five processes.

Runs the paper's log-optimal persistent atomic emulation (Figure 4) on
the deterministic simulator, exercises writes, reads, a crash and a
recovery, and verifies the recorded history with the atomicity checker.

Usage::

    python examples/quickstart.py
"""

from repro import SimCluster, collect_metrics


def main() -> None:
    # Five simulated workstations, calibrated like the paper's LAN:
    # ~0.1 ms message delay, ~0.2 ms synchronous disk log.
    cluster = SimCluster(protocol="persistent", num_processes=5)
    cluster.start()

    # Any process can write; any process can read (multi-writer/
    # multi-reader atomic register).
    write = cluster.write_sync(pid=0, value="hello, shared memory")
    print(f"write completed in {write.latency * 1e6:.0f} us "
          f"using {write.causal_logs} causal logs")

    value = cluster.read_sync(pid=3)
    print(f"process 3 read: {value!r}")

    # Crash the writer -- its volatile state is gone -- then recover it.
    # Stable storage brings the register's value back.
    cluster.crash(0)
    cluster.recover(0, wait=True)
    print(f"process 0 read after crash+recovery: {cluster.read_sync(0)!r}")

    # Even if EVERY process crashes simultaneously, the value survives,
    # as long as a majority eventually recovers (Section I-D).
    for pid in range(5):
        cluster.crash(pid)
    for pid in (0, 1, 2):
        cluster.recover(pid)
    cluster.run_until(lambda: all(cluster.node(p).ready for p in (0, 1, 2)))
    print(f"after total crash, majority recovered: {cluster.read_sync(1)!r}")

    # The recorded history is checked against the formal criterion.
    # Small histories like this one get the exhaustive black-box
    # search; past its cap, method="auto" switches to the near-linear
    # white-box tag checker (see docs/checking.md), so the same call
    # scales to soak-sized runs.
    verdict = cluster.check_atomicity()
    print(f"persistent atomicity: {verdict.ok} "
          f"({verdict.operations} operations checked)")

    metrics = collect_metrics(cluster)
    print(f"total messages: {metrics.messages_sent}, "
          f"stable-storage logs: {metrics.stores_completed}")


if __name__ == "__main__":
    main()
