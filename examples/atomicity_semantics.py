"""Persistent vs. transient atomicity, demonstrated (Figure 1).

Replays the paper's Figure 1 schedule -- a writer crashes in the middle
of W(v2), recovers, and issues W(v3) while another process reads twice
-- against both algorithms, prints what the reads observed, and runs
both formal checkers on each history.

Expected output: the persistent algorithm masks the crash (reads see
v2, both criteria hold); the transient algorithm exhibits the
"overlapping write" (reads see v1 then v2 after W(v3) was invoked,
which weakly completes to the paper's H'_1 but violates persistent
atomicity).

Usage::

    python examples/atomicity_semantics.py
"""

from repro.experiments.figure1 import format_figure1, run_persistent, run_transient


def main() -> None:
    persistent = run_persistent()
    transient = run_transient()

    print(format_figure1(persistent, transient))
    print()

    print("The transient run's history, as recorded:")
    for record in transient.history.operations():
        print(f"  {record}")
    print()

    witness = transient.transient_verdict.linearization
    records = {record.op: record for record in transient.history.operations()}
    readable = []
    for op in witness:
        record = records[op]
        if record.kind == "write":
            readable.append(f"W({record.value})")
        else:
            readable.append(f"R()->{record.result}")
    print("Weak-completion witness found by the checker (the paper's H'_1):")
    print("  " + " . ".join(readable))
    print()
    print(f"transient run satisfies persistent atomicity: "
          f"{transient.persistent_verdict.ok}")
    print(f"transient run satisfies transient  atomicity: "
          f"{transient.transient_verdict.ok}")


if __name__ == "__main__":
    main()
