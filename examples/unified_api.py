"""One program, three backends: the unified ``repro.api`` façade.

The same ~20-line Session program -- writes, reads, a crash, a
recovery, an atomicity check -- runs unmodified against the
deterministic simulator, the sharded key-value store, and real UDP
sockets with fsync'd files.  Backend differences are declared through
``Cluster.capabilities``, so the program never branches on what it is
talking to.

Usage::

    python examples/unified_api.py
"""

from repro import open_cluster

BACKENDS = ("sim", "kv", "live")


def exercise(cluster) -> str:
    """The backend-agnostic Session program."""
    with cluster as c:
        writer, reader = c.session(0), c.session(1)

        writer.write_sync("hello, shared memory")
        value = reader.read_sync()

        # Non-blocking submission: an OpHandle settles on its own.
        handle = reader.write("second value")
        c.wait(handle)
        assert handle.done and handle.latency is not None

        # Power-fail a replica, bring it back; the register survives.
        c.crash(0)
        c.recover(0)
        survived = writer.read_sync()

        # Named keys work everywhere (kv shards them; the others host
        # one register instance per key).
        c.ensure_key("limits.rps")
        writer.write_sync(1000, key="limits.rps")
        assert reader.read_sync(key="limits.rps") == 1000

        verdict = c.check(criterion="atomic")
        assert verdict.ok
        return (
            f"read {value!r}, survived crash with {survived!r}, "
            f"check: {verdict.consistency}/{verdict.method} ok"
        )


def main() -> None:
    for backend in BACKENDS:
        cluster = open_cluster(
            backend=backend,
            protocol="persistent",
            num_processes=3,
            # Only virtual-time backends are seedable.
            **({} if backend == "live" else {"seed": 7}),
        )
        print(f"{backend:<5s} {sorted(cluster.capabilities)}")
        print(f"      {exercise(cluster)}")


if __name__ == "__main__":
    main()
