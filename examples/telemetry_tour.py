"""Tour of the telemetry layer: metrics, diffs, and the flight recorder.

The observability story (:mod:`repro.obs`, docs/observability.md) in
one script:

1. the uniform metrics catalog every backend populates, snapshotted
   and *diffed* to isolate one burst of traffic;
2. a live listener feeding a custom counter mid-run -- provably
   passive, since observers never touch the kernel;
3. the always-on flight recorder of a scenario run, decoded and
   exported as Chrome ``trace_event`` JSON for chrome://tracing
   or https://ui.perfetto.dev.

Usage::

    python examples/telemetry_tour.py
"""

import json
import tempfile
from pathlib import Path

from repro.api import open_cluster
from repro.scenarios import get_scenario, run_scenario

#: Operation budget for the scenario run (trimmed further by CI).
OPS = 300


def main() -> None:
    print("== 1. the uniform catalog, diffed around a burst ==")
    with open_cluster(backend="sim", protocol="persistent", seed=7) as c:
        writer, reader = c.session(0), c.session(1)
        writer.write_sync("warmup")
        before = c.metrics()
        for i in range(5):
            writer.write_sync(f"v{i}")
            assert reader.read_sync() == f"v{i}"
        window = c.metrics().diff(before)
        for name in ("net.messages_sent", "storage.stores_completed",
                     "trace.flight_recorded"):
            print(f"  {name:<28} {window.scalars[name]:>8,.0f}")
        write_latency = window.histograms["op.write.latency"]
        print(
            f"  op.write.latency             n={write_latency.total} "
            f"p50={write_latency.quantile(50) * 1e6:,.0f}us "
            f"p99={write_latency.quantile(99) * 1e6:,.0f}us"
        )

    print()
    print("== 2. a mid-run listener (observation is passive) ==")
    with open_cluster(backend="sim", seed=7) as c:
        # Pre-resolve the handle once; inc() per event, no dict lookups.
        crashes_seen = c.registry.counter("tour.crashes_seen")
        unsubscribe = c.sim.trace.subscribe(
            lambda event: crashes_seen.inc(), kinds=["crash"]
        )
        session = c.session(0)
        session.write_sync("a")
        c.crash(1)
        c.recover(1)
        session.write_sync("b")
        unsubscribe()
        print(f"  tour.crashes_seen = {c.metrics().scalars['tour.crashes_seen']}")

    print()
    print("== 3. the flight recorder of a scenario run ==")
    result = run_scenario(
        get_scenario("crash-during-write"), ops=OPS, seed=7
    )
    ring = result.flight_recorder
    print(
        f"  {result.scenario}: verdict "
        f"{'PASS' if result.verdict else 'FAIL'}"
    )
    print(
        f"  flight recorder: {len(ring):,} of {ring.total:,} events retained"
    )
    counts = sorted(ring.counts().items(), key=lambda kv: -kv[1])
    busiest = ", ".join(f"{kind}={count:,}" for kind, count in counts[:4])
    print(f"  busiest kinds: {busiest}")

    trace_path = Path(tempfile.mkdtemp()) / "crash-during-write.json"
    payload = ring.to_chrome_trace()
    trace_path.write_text(json.dumps(payload) + "\n")
    print(
        f"  chrome trace: {len(payload['traceEvents']):,} entries -> "
        f"{trace_path}"
    )
    print("  (load it in chrome://tracing or https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
