"""Figure 6 (top): average write time vs. number of workstations.

Regenerates the paper's first experiment -- 50 writes of a 4-byte
integer on N = 3, 5, 7, 9 workstations for the crash-stop, transient
and persistent algorithms -- and asserts the paper's shape:

* at every N: crash-stop < transient < persistent;
* the gaps are one and two log latencies (lambda ~ 200 us);
* latency is nearly flat in N.

The paper's absolute numbers at N = 5 are ~500/700/900 us; the
simulator, calibrated to the same delta/lambda, lands within a few
percent of the same ratios.
"""

import pytest

from repro.common.config import PAPER_LAMBDA
from repro.experiments.figure6 import (
    FIGURE6_ALGORITHMS,
    FIGURE6_SIZES,
    figure6_top,
    format_figure6_top,
)


@pytest.mark.parametrize("algorithm", FIGURE6_ALGORITHMS)
@pytest.mark.parametrize("num_processes", FIGURE6_SIZES)
def test_write_latency_point(benchmark, algorithm, num_processes):
    """One point of the graph: 50 sequential 4-byte writes."""

    def run():
        return figure6_top(
            sizes=(num_processes,), algorithms=(algorithm,), repeats=50
        )[algorithm][0]

    point = benchmark(run)
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["num_processes"] = num_processes
    benchmark.extra_info["simulated_write_us"] = round(point.mean_us, 1)


def test_full_figure(benchmark, write_result):
    """The whole graph, with the paper's qualitative claims asserted."""
    series = benchmark.pedantic(
        lambda: figure6_top(repeats=50), rounds=1, iterations=1
    )
    table = format_figure6_top(series)
    write_result("figure6_top", table)

    lam_us = PAPER_LAMBDA * 1e6
    for idx in range(len(FIGURE6_SIZES)):
        crash_stop = series["crash-stop"][idx].mean_us
        transient = series["transient"][idx].mean_us
        persistent = series["persistent"][idx].mean_us
        assert crash_stop < transient < persistent
        assert transient - crash_stop == pytest.approx(lam_us, rel=0.2)
        assert persistent - crash_stop == pytest.approx(2 * lam_us, rel=0.2)
    # At N=5 the paper reports 500/700/900us; check the ratios.
    n5 = {name: series[name][1].mean_us for name in series}
    assert n5["transient"] / n5["crash-stop"] == pytest.approx(1.4, rel=0.1)
    assert n5["persistent"] / n5["crash-stop"] == pytest.approx(1.8, rel=0.1)
