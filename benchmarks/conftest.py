"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures and, in
addition to the pytest-benchmark timing (wall time of running the
experiment harness), writes the reproduced rows/series to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote them.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    def writer(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")

    return writer
