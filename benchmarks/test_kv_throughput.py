"""KV store benchmarks (ours): throughput scaling of the sharded layer.

Not a figure from the paper -- the acceptance bar of the KV subsystem:

* simulated-time throughput must scale at least 2x going from 1 shard
  to 8 shards under a 16-client zipfian workload (pipeline parallelism
  actually exploited);
* a positive batch window must cut the datagram count (same-shard
  operations genuinely share quorum round-trips);
* every measured run's per-key histories must pass the atomicity
  checkers -- the store never buys throughput with consistency.
"""

import pytest

from repro.experiments.kv_bench import (
    SHARD_SWEEP,
    WINDOW_SWEEP,
    WINDOW_SWEEP_SHARDS,
    format_kv_bench,
    run_kv_bench,
    run_kv_config,
)


@pytest.fixture(scope="module")
def shard_rows():
    return [run_kv_config(shards, batch_window=0.0) for shards in SHARD_SWEEP]


@pytest.fixture(scope="module")
def window_rows():
    return [
        run_kv_config(WINDOW_SWEEP_SHARDS, batch_window=window)
        for window in WINDOW_SWEEP
    ]


def test_throughput_scales_2x_from_1_to_8_shards(shard_rows, write_result):
    by_shards = {row.shards: row for row in shard_rows}
    baseline, scaled = by_shards[1], by_shards[8]
    assert baseline.completed == scaled.completed == 16 * 30
    speedup = scaled.throughput / baseline.throughput
    write_result(
        "kv_shard_scaling",
        format_kv_bench(shard_rows)
        + f"\n\n1 -> 8 shard speedup: {speedup:.2f}x (required: >= 2.0x)",
    )
    assert speedup >= 2.0, (
        f"1->8 shard speedup {speedup:.2f}x below the 2x acceptance bar "
        f"({baseline.throughput:,.0f} -> {scaled.throughput:,.0f} ops/s)"
    )


def test_throughput_increases_monotonically_enough(shard_rows):
    """Each doubling of shards may plateau but must never regress by
    more than measurement noise."""
    ordered = sorted(shard_rows, key=lambda row: row.shards)
    for smaller, larger in zip(ordered, ordered[1:]):
        assert larger.throughput > smaller.throughput * 0.9


def test_every_swept_run_is_per_key_atomic(shard_rows, window_rows):
    for row in [*shard_rows, *window_rows]:
        assert row.atomic, (
            f"shards={row.shards} window={row.window_us:.0f}us produced a "
            f"non-atomic per-key history"
        )


def test_batching_cuts_datagrams_and_helps_throughput(window_rows, write_result):
    by_window = {row.batch_window: row for row in window_rows}
    unbatched = by_window[0.0]
    batched = max(
        (row for row in window_rows if row.batch_window > 0),
        key=lambda row: row.throughput,
    )
    write_result("kv_batch_window", format_kv_bench(window_rows))
    assert batched.messages_sent < unbatched.messages_sent * 0.8
    assert batched.throughput > unbatched.throughput


def test_kv_bench_quick_wall_time(benchmark):
    """Wall time of the CI smoke sweep (`repro kv-bench --quick`)."""
    rows = benchmark(run_kv_bench, quick=True)
    assert all(row.atomic for row in rows)
    assert {row.shards for row in rows} >= {1, 8}
