"""Message/time complexity bench (Sections I-D and IV-B).

Regenerates the claim that the crash-recovery algorithms cost the same
4 communication steps and the same message count per operation as the
crash-stop baseline -- log-optimality is free in messages and rounds.
"""

import pytest

from repro.experiments.complexity import (
    COMPLEXITY_ALGORITHMS,
    EXPECTED_STEPS,
    format_complexity,
    measure_complexity,
)


@pytest.mark.parametrize("algorithm", COMPLEXITY_ALGORITHMS)
def test_algorithm_complexity(benchmark, algorithm):
    results = benchmark(measure_complexity, (algorithm,), 5, 5)
    result = results[0]
    for kind in ("read", "write"):
        measured = result.steps_of(kind)
        benchmark.extra_info[f"{kind}_steps"] = measured
        benchmark.extra_info[f"{kind}_messages"] = result.messages_of(kind)
        assert measured == EXPECTED_STEPS[algorithm][kind]


def test_full_table(benchmark, write_result):
    results = benchmark.pedantic(measure_complexity, rounds=1, iterations=1)
    write_result("message_complexity", format_complexity(results))
    by_name = {result.algorithm: result for result in results}
    # The paper's headline claim, asserted:
    for kind in ("read", "write"):
        assert (
            by_name["crash-stop"].messages_of(kind)
            == by_name["transient"].messages_of(kind)
            == by_name["persistent"].messages_of(kind)
        )
        assert (
            by_name["crash-stop"].steps_of(kind)
            == by_name["transient"].steps_of(kind)
            == by_name["persistent"].steps_of(kind)
            == 4
        )
