"""White-box checker throughput: operations checked per second.

Not a figure from the paper -- this keeps the tag checker honest as
the only affordable verifier at soak scale.  The near-linear rewrite
checks 10k-operation histories in ~0.1s (the all-pairs scan took about
a minute); the budget assertions pin the soak scale under a generous
wall-clock ceiling so an accidental return to quadratic scanning fails
loudly rather than silently re-inflating ``repro bench``.
"""

import time

import pytest

from repro.experiments.bench import make_tagged_history
from repro.history.register_checker import check_tagged_history

SIZES = (1_000, 10_000)
CRITERIA = ("persistent", "transient")

#: Wall-clock ceiling for a single check, seconds.  ~50x the measured
#: cost on a development machine: slack for slow CI, fatal for O(N^2)
#: (which needs ~60s at 10k operations).
BUDGET_SECONDS = {1_000: 1.0, 10_000: 5.0}


@pytest.mark.parametrize("criterion", CRITERIA)
@pytest.mark.parametrize("operations", SIZES)
def test_whitebox_checker_throughput(benchmark, operations, criterion):
    history, recorder = make_tagged_history(operations)
    result = benchmark(check_tagged_history, history, recorder, criterion)
    assert result.ok, result.violations
    assert result.operations == operations
    benchmark.extra_info["operations"] = operations
    benchmark.extra_info["criterion"] = criterion


@pytest.mark.parametrize("criterion", CRITERIA)
@pytest.mark.parametrize("operations", SIZES)
def test_soak_scale_stays_under_wall_clock_budget(operations, criterion):
    # Cold check on a fresh history -- the incremental History caches
    # its views after the first check, and the soak-relevant cost is
    # the first (and usually only) check of a recorded run.
    history, recorder = make_tagged_history(operations)
    start = time.perf_counter()
    result = check_tagged_history(history, recorder, criterion)
    elapsed = time.perf_counter() - start
    assert result.ok, result.violations
    assert elapsed < BUDGET_SECONDS[operations], (
        f"{operations}-op {criterion} check took {elapsed:.2f}s; "
        f"budget is {BUDGET_SECONDS[operations]}s"
    )
