"""Figure 6 (bottom): average write time vs. payload size at N = 5.

Regenerates the paper's second experiment -- writes of increasing size
up to the 64 KB UDP limit on five workstations -- and asserts its
claim: "for relatively small data sizes, the time it takes to log and
the time it takes to send a message over the network increases
linearly".
"""

import pytest

from repro.experiments.figure6 import (
    FIGURE6_ALGORITHMS,
    FIGURE6_PAYLOADS,
    figure6_bottom,
    format_figure6_bottom,
    linearity_of,
)


@pytest.mark.parametrize("algorithm", FIGURE6_ALGORITHMS)
def test_payload_sweep(benchmark, algorithm):
    """One curve of the graph: the full payload sweep for one algorithm."""

    def run():
        return figure6_bottom(algorithms=(algorithm,), repeats=10)[algorithm]

    points = benchmark(run)
    slope, intercept, r_squared = linearity_of(points)
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["slope_us_per_byte"] = round(slope, 6)
    benchmark.extra_info["intercept_us"] = round(intercept, 1)
    benchmark.extra_info["r_squared"] = round(r_squared, 6)
    assert r_squared > 0.999  # the paper's linearity claim


def test_full_figure(benchmark, write_result):
    series = benchmark.pedantic(
        lambda: figure6_bottom(repeats=10), rounds=1, iterations=1
    )
    table = format_figure6_bottom(series)
    lines = [table, ""]
    for algorithm, points in series.items():
        slope, intercept, r2 = linearity_of(points)
        lines.append(
            f"{algorithm}: latency_us = {slope:.6f} * bytes + {intercept:.1f}"
            f"   (R^2 = {r2:.6f})"
        )
    write_result("figure6_bottom", "\n".join(lines))

    # Hierarchy preserved at every size, and slopes ordered: each log
    # pass adds per-byte disk cost.
    slopes = {name: linearity_of(points)[0] for name, points in series.items()}
    assert slopes["crash-stop"] < slopes["transient"] < slopes["persistent"]
    for idx in range(len(FIGURE6_PAYLOADS)):
        assert (
            series["crash-stop"][idx].mean_us
            < series["transient"][idx].mean_us
            < series["persistent"][idx].mean_us
        )
