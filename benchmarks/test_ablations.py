"""Ablation benches: each removed ingredient costs its anomaly.

DESIGN.md calls out four design choices of the algorithms; each bench
runs the weakened protocol under its adversarial schedule (anomaly must
appear) and the correct protocol under the same schedule (anomaly must
not).
"""

import pytest

from repro.experiments.ablations import (
    ablate_majority_quorum,
    ablate_read_writeback,
    ablate_recovery_counter,
    ablate_writer_prelog,
    format_ablations,
    run_all_ablations,
)

ABLATIONS = {
    "writer-prelog": ablate_writer_prelog,
    "read-writeback": ablate_read_writeback,
    "recovery-counter": ablate_recovery_counter,
    "majority-quorum": ablate_majority_quorum,
}


@pytest.mark.parametrize("name", sorted(ABLATIONS))
def test_ablation(benchmark, name):
    result = benchmark(ABLATIONS[name])
    benchmark.extra_info["anomaly"] = result.anomaly
    benchmark.extra_info["demonstrated"] = result.demonstrated
    assert result.demonstrated, (
        f"{name}: broken={result.broken_verdict.ok} "
        f"control={result.control_verdict.ok}"
    )


def test_full_table(benchmark, write_result):
    results = benchmark.pedantic(run_all_ablations, rounds=1, iterations=1)
    write_result("ablations", format_ablations(results))
