"""Log-complexity table: measured causal logs per operation.

The paper's central cost claims (Section IV), regenerated as
measurements: the persistent algorithm's writes use 2 causal logs, the
transient algorithm's 1, reads at most 1 (0 crash-free), the crash-stop
baseline 0, and the naive strawman 4/3 -- under sequential, concurrent
and crashy workloads.
"""

import pytest

from repro.cluster import SimCluster
from repro.experiments.log_complexity import (
    EXPECTED_SEQUENTIAL_WRITE,
    format_log_complexity,
    measure_log_complexity,
)


@pytest.mark.parametrize(
    "algorithm,expected", sorted(EXPECTED_SEQUENTIAL_WRITE.items())
)
def test_sequential_write_logs(benchmark, algorithm, expected):
    """Causal logs of one crash-free write, per algorithm."""

    def run():
        cluster = SimCluster(
            protocol=algorithm, num_processes=5, capture_trace=False
        )
        cluster.start()
        return cluster.write_sync(0, b"1234").causal_logs

    measured = benchmark(run)
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["causal_logs"] = measured
    assert measured == expected


def test_full_table(benchmark, write_result):
    rows = benchmark.pedantic(
        lambda: measure_log_complexity(operations=30, seed=0),
        rounds=1,
        iterations=1,
    )
    table = format_log_complexity(rows)
    write_result("log_complexity", table)
    assert all(row.within_bound for row in rows), table
