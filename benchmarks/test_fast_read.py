"""Fast-read ablation bench (extension; ours).

Quantifies the optimization DESIGN.md lists as an extension: quiescent
reads drop from 4 communication steps to 2 when the query quorum
unanimously reports a durable tag, with writes and contended reads
unchanged and atomicity preserved.
"""

import pytest

from repro.cluster import SimCluster
from repro.metrics import LatencyStats


def _read_latency(protocol: str, repeats: int = 30) -> LatencyStats:
    cluster = SimCluster(protocol=protocol, num_processes=5, capture_trace=False)
    cluster.start()
    cluster.write_sync(0, b"seed")
    samples = []
    for _ in range(repeats):
        handle = cluster.wait(cluster.read(1))
        samples.append(handle.latency)
    return LatencyStats.from_samples(samples)


@pytest.mark.parametrize("protocol", ["persistent", "persistent-fastread"])
def test_quiescent_read_latency(benchmark, protocol):
    stats = benchmark(_read_latency, protocol)
    benchmark.extra_info["read_us"] = round(stats.mean_us, 1)


def test_speedup_table(benchmark, write_result):
    def run():
        return {
            protocol: _read_latency(protocol)
            for protocol in ("persistent", "persistent-fastread")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    base = results["persistent"].mean_us
    fast = results["persistent-fastread"].mean_us
    write_result(
        "fast_read",
        "Quiescent read latency (N = 5, crash-free):\n"
        f"  persistent            {base:8.1f} us  (4 communication steps)\n"
        f"  persistent-fastread   {fast:8.1f} us  (2 communication steps)\n"
        f"  speedup               {base / fast:8.2f}x",
    )
    assert fast == pytest.approx(base / 2, rel=0.15)
