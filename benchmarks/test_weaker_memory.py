"""Section VI bench: safe/regular vs. atomic emulations.

Regenerates the concluding remarks' argument as a table: the regular
emulation matches the transient one on every logging cost and only
saves a message round trip on reads -- while giving up atomicity
(the new/old inversion run).
"""

import pytest

from repro.experiments.weaker_memory import (
    COMPARED,
    format_costs,
    format_inversions,
    measure_costs,
    new_old_inversion_run,
)


@pytest.mark.parametrize("algorithm", COMPARED)
def test_cost_point(benchmark, algorithm):
    rows = benchmark(measure_costs, (algorithm,), 5, 20)
    row = rows[0]
    benchmark.extra_info["write_us"] = round(row.write_latency.mean_us, 1)
    benchmark.extra_info["read_us"] = round(row.read_latency.mean_us, 1)
    benchmark.extra_info["write_logs"] = row.write_causal_logs
    benchmark.extra_info["read_logs"] = row.read_causal_logs


def test_full_table(benchmark, write_result):
    def run():
        rows = measure_costs(repeats=20)
        inversions = [new_old_inversion_run(a) for a in COMPARED]
        return rows, inversions

    rows, inversions = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_costs(rows) + "\n\n" + format_inversions(inversions)
    write_result("weaker_memory", text)

    by_name = {row.algorithm: row for row in rows}
    # Section VI's claims, asserted:
    assert by_name["regular"].write_causal_logs == 1  # writes always log
    assert by_name["regular"].read_causal_logs == 0  # reads never do
    assert by_name["transient"].read_causal_logs == 0  # ...but neither
    # do crash-free atomic reads, so the only saving is delta, not lambda.
    inversion = {run.algorithm: run for run in inversions}
    assert not inversion["regular"].atomic
    assert inversion["regular"].regular
    assert inversion["transient"].atomic
