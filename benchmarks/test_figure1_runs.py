"""Figure 1: the persistent vs. transient demonstration runs.

Benchmarks the scripted Figure 1 schedule against both algorithms and
records the observed reads plus both checkers' verdicts -- the paper's
figure as a regenerable table.
"""

import pytest

from repro.experiments.figure1 import format_figure1, run_persistent, run_transient


def test_persistent_run(benchmark):
    run = benchmark(run_persistent)
    benchmark.extra_info["reads"] = ",".join(map(str, run.read_results))
    assert run.read_results == ["v2", "v2"]
    assert run.persistent_verdict.ok
    assert run.transient_verdict.ok


def test_transient_run(benchmark):
    run = benchmark(run_transient)
    benchmark.extra_info["reads"] = ",".join(map(str, run.read_results))
    assert run.read_results == ["v1", "v2"]
    assert not run.persistent_verdict.ok
    assert run.transient_verdict.ok


def test_full_figure(benchmark, write_result):
    def run():
        return run_persistent(), run_transient()

    persistent, transient = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("figure1", format_figure1(persistent, transient))
