"""Engine benchmarks (ours): simulator and checker throughput.

Not a figure from the paper -- these keep the reproduction honest as a
piece of software: how many simulated operations per wall-clock second
the engine sustains, and how the checkers scale.
"""

import pytest

from repro.cluster import SimCluster
from repro.common.ids import OperationId
from repro.history.checker import check_persistent_atomicity
from repro.history.events import Invoke, Reply
from repro.history.history import History
from repro.history.register_checker import check_tagged_history
from repro.workloads.generators import run_closed_loop


@pytest.mark.parametrize("capture", [False, True], ids=["trace-off", "trace-on"])
@pytest.mark.parametrize("protocol", ["crash-stop", "transient", "persistent"])
def test_simulator_operation_throughput(benchmark, protocol, capture):
    """Wall time of 100 simulated operations on 5 processes.

    The trace-off variant is the engine's allocation-free fast path
    (the closed-loop number the perf trajectory tracks); trace-on
    additionally measures full event capture, so the gap between the
    two is the cost of observability.
    """

    def run():
        cluster = SimCluster(
            protocol=protocol, num_processes=5, capture_trace=capture
        )
        cluster.start()
        report = run_closed_loop(
            cluster, operations_per_client=20, read_fraction=0.5, seed=0
        )
        assert report.completed == 100
        return cluster

    cluster = benchmark(run)
    benchmark.extra_info["simulated_ops"] = 100
    benchmark.extra_info["capture_trace"] = capture
    benchmark.extra_info["kernel_events"] = cluster.kernel.events_processed


def _sequential_history(num_ops):
    events = []
    value = None
    for i in range(num_ops):
        op = OperationId(pid=i % 3, seq=i)
        if i % 2 == 0:
            value = f"v{i}"
            events.append(
                Invoke(time=2.0 * i, pid=op.pid, op=op, kind="write", value=value)
            )
            events.append(Reply(time=2.0 * i + 1, pid=op.pid, op=op, kind="write"))
        else:
            events.append(Invoke(time=2.0 * i, pid=op.pid, op=op, kind="read"))
            events.append(
                Reply(time=2.0 * i + 1, pid=op.pid, op=op, kind="read", result=value)
            )
    return History(events)


def test_blackbox_checker_on_30_operations(benchmark):
    history = _sequential_history(30)
    verdict = benchmark(check_persistent_atomicity, history)
    assert verdict.ok


def test_whitebox_checker_on_2000_operations(benchmark):
    from repro.common.timestamps import Tag
    from repro.history.recorder import HistoryRecorder

    recorder = HistoryRecorder(clock=lambda: 0.0)
    time = [0.0]

    def tick():
        time[0] += 1.0
        return time[0]

    recorder._clock = tick  # deterministic increasing clock
    tag = None
    for i in range(1, 1001):
        op = OperationId(pid=0, seq=i)
        tag = Tag(i, 0)
        recorder.record_invoke(op, 0, "write", f"v{i}")
        recorder.record_reply(op, 0, "write")
        recorder.record_tag(op, tag)
        rop = OperationId(pid=1, seq=10_000 + i)
        recorder.record_invoke(rop, 1, "read")
        recorder.record_reply(rop, 1, "read", f"v{i}")
        recorder.record_tag(rop, tag)

    result = benchmark(
        check_tagged_history, recorder.history, recorder, "persistent"
    )
    assert result.ok
    assert result.operations == 2000
