"""Theorems 1 and 2: the lower-bound runs (Figures 2 and 3).

Regenerates the adversarial runs rho_1..rho_4 against the paper's
algorithms (which must survive) and the below-bound variants (which
must fail), producing the verdict table quoted in EXPERIMENTS.md.
"""

import pytest

from repro.experiments.lower_bounds import (
    format_lower_bounds,
    run_rho1,
    run_rho2,
    run_rho3,
    run_rho4,
)

RHO1_ALGORITHMS = ("persistent", "transient", "broken-no-prelog")
RHO4_ALGORITHMS = ("persistent", "transient", "broken-no-writeback")


@pytest.mark.parametrize("algorithm", RHO1_ALGORITHMS)
def test_rho1(benchmark, algorithm):
    run = benchmark(run_rho1, algorithm)
    benchmark.extra_info["reads"] = ",".join(map(str, run.read_results))
    benchmark.extra_info["persistent_atomic"] = run.persistent_verdict.ok
    if algorithm == "broken-no-prelog":
        assert not run.persistent_verdict.ok
    else:
        assert run.transient_verdict.ok


@pytest.mark.parametrize("algorithm", RHO4_ALGORITHMS)
def test_rho4(benchmark, algorithm):
    run = benchmark(run_rho4, algorithm)
    benchmark.extra_info["reads"] = ",".join(map(str, run.read_results))
    benchmark.extra_info["read_causal_logs"] = str(run.read_causal_logs)
    if algorithm == "broken-no-writeback":
        assert not run.transient_verdict.ok
    else:
        assert run.transient_verdict.ok
        assert run.read_causal_logs == [1, 0]


def test_full_table(benchmark, write_result):
    def run():
        runs = [run_rho1(a) for a in RHO1_ALGORITHMS]
        runs += [run_rho4(a) for a in RHO4_ALGORITHMS]
        runs.append(run_rho2("persistent"))
        runs.append(run_rho3("persistent"))
        return runs

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("lower_bounds", format_lower_bounds(runs))
