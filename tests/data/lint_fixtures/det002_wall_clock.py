"""DET002 fixture: a wall-clock read inside virtual-time code."""

# repro-lint: pretend src/repro/sim/clockless.py

import time


def stamp(event):
    event.at = time.time()
    return event
