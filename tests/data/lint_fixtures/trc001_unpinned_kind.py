"""TRC001 fixture: a trace kind appended without updating the manifest.

``gc_sweep`` is a plausible future kind; it is *not* in
``PINNED_TRACE_KINDS``, so the rule must demand the manifest append.
"""

# repro-lint: pretend src/repro/sim/tracing.py

ALL_KINDS = (
    "send",
    "deliver",
    "drop",
    "duplicate",
    "store_begin",
    "store_end",
    "invoke",
    "reply",
    "crash",
    "recover",
    "recovery_done",
    "timer",
    "ckpt_begin",
    "ckpt_tentative",
    "ckpt_commit",
    "gc_sweep",
)
