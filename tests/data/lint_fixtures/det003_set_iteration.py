"""DET003 fixture: bare set iteration inside fingerprint scope."""

# repro-lint: pretend src/repro/history/history.py


def fingerprint(ops):
    pids = {op.pid for op in ops}
    parts = []
    for pid in pids:
        parts.append(str(pid))
    return "|".join(parts)
