"""HOT001 fixture: event construction outside the wants() guard."""

# repro: hot-path

from repro.sim.tracing import TraceEvent


def deliver(trace, kind, pid):
    event = TraceEvent(time=0.0, kind=kind, pid=pid)
    if trace.wants(kind):
        trace.emit(event)
    else:
        trace.tick(kind, pid)
