"""POOL001 fixture: an unfrozen spec with unpicklable fields."""

# repro-lint: pretend src/repro/scenarios/pool.py

from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass
class LeakySpec:
    name: str
    on_done: Callable[[], None]
    payload: Any
    seed: Optional[int] = None
