"""LINT001 fixture: an allow with no reason neither suppresses nor passes."""

# repro-lint: pretend src/repro/sim/clockless.py

import time


def stamp(event):
    event.at = time.time()  # repro: allow[DET002]
    return event
