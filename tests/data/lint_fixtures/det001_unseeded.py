"""DET001 fixture: unseeded randomness outside the RNG-owner modules."""

import os
import random
import uuid


def jitter(choices):
    token = uuid.uuid4()
    noise = os.urandom(8)
    pick = random.choice(choices)
    rng = random.Random()
    return token, noise, pick, rng
