"""API001 fixture: a fault verb implemented but not capability-declared."""

# repro-lint: pretend src/repro/api/chaotic.py


class ChaoticCluster:
    backend = "chaotic"
    capabilities = frozenset({"virtual_time", "trace"})

    def crash(self, pid):
        self._kernel.crash(pid)

    def partition(self, groups):
        self._net.partition(groups)
