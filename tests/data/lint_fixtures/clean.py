"""A module every lint rule is happy with (no-false-positive control).

Seeded randomness, sorted iteration over sets, and no wall-clock reads:
the shapes the rules demand, in one place.
"""

# repro-lint: pretend src/repro/history/history.py

import random


def pick(seed, items):
    rng = random.Random(seed)
    ordered = sorted(items)
    return ordered[rng.randrange(len(ordered))]


def fingerprint(ops):
    pids = {op.pid for op in ops}
    return ",".join(str(pid) for pid in sorted(pids)) + f"|{len(pids)}"
