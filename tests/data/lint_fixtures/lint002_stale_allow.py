"""LINT002 fixture: a reasoned allow whose rule never fires (stale)."""

# repro-lint: pretend src/repro/sim/clockless.py

# repro: allow[DET002] kept from a refactor; nothing below reads a clock
OFFSET = 42


def shift(value):
    return value + OFFSET
