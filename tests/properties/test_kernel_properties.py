"""Property-based tests for the simulation kernel."""

from hypothesis import given, strategies as st

from repro.sim.kernel import Kernel


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=50))
def test_callbacks_fire_in_nondecreasing_time_order(delays):
    kernel = Kernel()
    times = []
    for delay in delays:
        kernel.schedule(delay, lambda: times.append(kernel.now))
    kernel.run()
    assert times == sorted(times)
    assert len(times) == len(delays)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=10.0), st.booleans()),
        max_size=40,
    )
)
def test_cancelled_callbacks_never_fire(entries):
    kernel = Kernel()
    fired = []
    expected = 0
    for index, (delay, cancel) in enumerate(entries):
        handle = kernel.schedule_cancellable(delay, fired.append, index)
        if cancel:
            handle.cancel()
        else:
            expected += 1
    assert kernel.pending_events == expected
    kernel.run()
    assert len(fired) == expected
    assert kernel.pending_events == 0


@given(st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=30), st.integers(0, 2**32))
def test_runs_are_deterministic(delays, seed):
    def run():
        kernel = Kernel(seed=seed)
        order = []
        for index, delay in enumerate(delays):
            kernel.schedule(delay, order.append, index)
        kernel.run()
        return order, kernel.now

    assert run() == run()


@given(
    st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30),
    st.floats(min_value=0.0, max_value=10.0),
)
def test_run_until_time_never_executes_later_events(delays, horizon):
    kernel = Kernel()
    fired = []
    for delay in delays:
        kernel.schedule(delay, lambda d=delay: fired.append(d))
    kernel.run(until=horizon)
    assert all(delay <= horizon for delay in fired)
    # Everything else still fires afterwards.
    kernel.run()
    assert len(fired) == len(delays)
