"""Property-based tests for tags (total order, monotonicity)."""

from hypothesis import given, strategies as st

from repro.common.timestamps import Tag, bottom_tag, max_tag

tags = st.builds(
    Tag,
    sn=st.integers(min_value=0, max_value=1_000_000),
    pid=st.integers(min_value=0, max_value=64),
    rec=st.integers(min_value=0, max_value=64),
)


@given(tags, tags)
def test_order_is_total(a, b):
    assert (a < b) or (b < a) or (a == b)


@given(tags, tags)
def test_order_is_antisymmetric(a, b):
    assert not ((a < b) and (b < a))


@given(tags, tags, tags)
def test_order_is_transitive(a, b, c):
    if a < b and b < c:
        assert a < c


@given(tags, tags)
def test_order_matches_tuple_order(a, b):
    assert (a < b) == (a.as_tuple() < b.as_tuple())


@given(tags)
def test_bottom_is_a_global_minimum(tag):
    assert bottom_tag() <= tag


@given(
    tags,
    st.integers(min_value=0, max_value=64),
    st.integers(min_value=1, max_value=100),
    st.integers(min_value=0, max_value=10),
)
def test_next_for_strictly_increases(tag, pid, increment, rec):
    assert tag.next_for(pid, increment=increment, rec=rec) > tag


@given(tags)
def test_serialization_round_trips(tag):
    assert Tag.from_tuple(tag.as_tuple()) == tag


@given(st.lists(tags, min_size=1))
def test_max_tag_is_an_upper_bound_from_the_list(sample):
    top = max_tag(sample)
    assert top in sample
    assert all(tag <= top for tag in sample)


@given(st.lists(tags, min_size=1), st.lists(tags, min_size=1))
def test_max_tag_is_monotone_under_union(xs, ys):
    assert max_tag(xs + ys) == max(max_tag(xs), max_tag(ys))
