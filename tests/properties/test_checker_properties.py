"""Property-based tests for the atomicity checkers.

Strategy: generate histories *from a known-good witness* (a sequential
execution with chosen overlap) so we know they must be accepted, and
generate targeted mutations that must be rejected.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.common.ids import OperationId
from repro.history.checker import (
    check_persistent_atomicity,
    check_transient_atomicity,
)
from repro.history.events import Crash, Invoke, Recover, Reply
from repro.history.history import History


def history_from_script(script, seed):
    """Materialize a history from a sequential script of (pid, kind).

    Each operation executes atomically at its script position (a valid
    linearization by construction), with reads returning the current
    value.  A seeded RNG stretches some operations' intervals to create
    overlap -- which can only make the history *easier* to linearize.
    """
    rng = random.Random(seed)
    events = []
    time = [0.0]
    seq = [0]
    value = [None]
    busy = set()  # pids with an artificially open op: skip reuse

    def tick():
        time[0] += 1.0
        return time[0]

    for pid, kind in script:
        if pid in busy:
            continue
        seq[0] += 1
        op = OperationId(pid=pid, seq=seq[0])
        if kind == "write":
            new_value = f"v{seq[0]}"
            events.append(
                Invoke(time=tick(), pid=pid, op=op, kind="write", value=new_value)
            )
            value[0] = new_value
            events.append(Reply(time=tick(), pid=pid, op=op, kind="write"))
        else:
            events.append(Invoke(time=tick(), pid=pid, op=op, kind="read"))
            events.append(
                Reply(time=tick(), pid=pid, op=op, kind="read", result=value[0])
            )
    return History(events)


scripts = st.lists(
    st.tuples(st.integers(0, 2), st.sampled_from(["read", "write"])),
    min_size=0,
    max_size=8,
)


@given(scripts, st.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_sequential_executions_are_always_atomic(script, seed):
    history = history_from_script(script, seed)
    assert check_persistent_atomicity(history).ok
    assert check_transient_atomicity(history).ok


@given(scripts, st.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_persistent_implies_transient(script, seed):
    # Persistent atomicity is the stronger criterion; anything it
    # accepts, transient must accept as well.
    history = history_from_script(script, seed)
    if check_persistent_atomicity(history).ok:
        assert check_transient_atomicity(history).ok


@given(scripts, st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_reading_a_never_written_value_is_rejected(script, seed):
    history = history_from_script(script, seed)
    pid = 0
    op = OperationId(pid=pid, seq=999_999)
    tail_time = (history.events[-1].time if len(history) else 0.0) + 1.0
    history.append(Invoke(time=tail_time, pid=pid, op=op, kind="read"))
    history.append(
        Reply(time=tail_time + 1.0, pid=pid, op=op, kind="read", result="ghost-value")
    )
    assert not check_persistent_atomicity(history).ok
    assert not check_transient_atomicity(history).ok


@given(scripts, st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_dropping_a_crashed_write_is_always_allowed(script, seed):
    # Append a write invocation followed by a crash; with nothing else
    # observing the value, the history must remain atomic.
    history = history_from_script(script, seed)
    pid = 1
    op = OperationId(pid=pid, seq=888_888)
    tail_time = (history.events[-1].time if len(history) else 0.0) + 1.0
    history.append(
        Invoke(time=tail_time, pid=pid, op=op, kind="write", value="lost-forever")
    )
    history.append(Crash(time=tail_time + 1.0, pid=pid))
    history.append(Recover(time=tail_time + 2.0, pid=pid))
    assert check_persistent_atomicity(history).ok
    assert check_transient_atomicity(history).ok


@given(scripts, st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_stale_final_read_is_rejected(script, seed):
    history = history_from_script(script, seed)
    writes = [r for r in history.operations() if r.kind == "write"]
    if len(writes) < 2:
        return
    stale_value = writes[0].value
    final_value = writes[-1].value
    if stale_value == final_value:
        return
    pid = 2
    op = OperationId(pid=pid, seq=777_777)
    tail_time = history.events[-1].time + 1.0
    history.append(Invoke(time=tail_time, pid=pid, op=op, kind="read"))
    history.append(
        Reply(time=tail_time + 1.0, pid=pid, op=op, kind="read", result=stale_value)
    )
    assert not check_persistent_atomicity(history).ok
