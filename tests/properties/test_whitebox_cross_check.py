"""Cross-checking the optimized white-box checker.

The near-linear tag checker must agree with the exhaustive black-box
checker of :mod:`repro.history.checker` wherever both can see the
problem: histories generated from a known-good sequential witness (with
protocol-consistent tags) are accepted by both, and history-level
corruptions (stale read, orphan value) are rejected by both.  Tag-level
corruptions (swapped tags) are invisible to the black-box checker, so
only the white-box rejection is asserted there.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.common.ids import OperationId
from repro.common.timestamps import Tag, bottom_tag
from repro.history.checker import (
    check_persistent_atomicity,
    check_transient_atomicity,
)
from repro.history.recorder import HistoryRecorder
from repro.history.register_checker import check_tagged_history

_SEQ = [1_000_000]


def _op(pid):
    _SEQ[0] += 1
    return OperationId(pid=pid, seq=_SEQ[0])


class TaggedRun:
    """A sequential witness execution with protocol-consistent tags."""

    def __init__(self):
        self.time = 0.0
        self.recorder = HistoryRecorder(clock=self._tick)
        self.tag = bottom_tag()
        self.value = None
        self.next_sn = 1
        self.writes = []  # (op, value, tag) in execution order

    def _tick(self):
        self.time += 1.0
        return self.time

    @property
    def history(self):
        return self.recorder.history

    def write(self, pid, value):
        op = _op(pid)
        self.tag = Tag(self.next_sn, pid)
        self.next_sn += 1
        self.value = value
        self.recorder.record_invoke(op, pid, "write", value)
        self.recorder.record_reply(op, pid, "write")
        self.recorder.record_tag(op, self.tag)
        self.writes.append((op, value, self.tag))
        return op

    def read(self, pid):
        op = _op(pid)
        self.recorder.record_invoke(op, pid, "read")
        self.recorder.record_reply(op, pid, "read", self.value)
        self.recorder.record_tag(op, self.tag)
        return op

    def raw_read(self, pid, result, tag):
        """A read returning an arbitrary (possibly corrupt) result."""
        op = _op(pid)
        self.recorder.record_invoke(op, pid, "read")
        self.recorder.record_reply(op, pid, "read", result)
        self.recorder.record_tag(op, tag)
        return op


def run_from_script(script):
    run = TaggedRun()
    counter = [0]
    for pid, kind in script:
        if kind == "write":
            counter[0] += 1
            run.write(pid, f"v{counter[0]}")
        else:
            run.read(pid)
    return run


scripts = st.lists(
    st.tuples(st.integers(0, 2), st.sampled_from(["read", "write"])),
    min_size=0,
    max_size=8,
)


@given(scripts)
@settings(max_examples=60, deadline=None)
def test_whitebox_agrees_with_exhaustive_on_witnessed_histories(script):
    run = run_from_script(script)
    for criterion in ("persistent", "transient"):
        white = check_tagged_history(run.history, run.recorder, criterion)
        assert white.ok, white.violations
    assert check_persistent_atomicity(run.history).ok
    assert check_transient_atomicity(run.history).ok


@given(scripts)
@settings(max_examples=40, deadline=None)
def test_stale_read_rejected_by_both_checkers(script):
    run = run_from_script(script)
    assume(len(run.writes) >= 2)
    _, stale_value, stale_tag = run.writes[0]
    assume(stale_value != run.value)
    run.raw_read(2, stale_value, stale_tag)
    white = check_tagged_history(run.history, run.recorder, "persistent")
    assert not white.ok
    assert not check_persistent_atomicity(run.history).ok


@given(scripts)
@settings(max_examples=40, deadline=None)
def test_swapped_write_tags_rejected_by_whitebox(script):
    # Swapping two writes' recorded tags corrupts only the white-box
    # side channel; the history itself stays linearizable, so only the
    # tag checker can (and must) see it.
    run = run_from_script(script)
    assume(len(run.writes) >= 2)
    first, _, _ = run.writes[0]
    last, _, _ = run.writes[-1]
    meta = run.recorder.meta
    meta[first].tag, meta[last].tag = meta[last].tag, meta[first].tag
    white = check_tagged_history(run.history, run.recorder, "persistent")
    assert not white.ok
    assert check_persistent_atomicity(run.history).ok


@given(scripts)
@settings(max_examples=40, deadline=None)
def test_orphan_value_rejected_by_both_under_persistent_only(script):
    # A pending write surfaces through a read after the writer's next
    # invocation carried a smaller tag: the paper's orphan-value
    # anomaly.  Persistent atomicity forbids it, transient allows it --
    # and the two checkers must agree on both verdicts.
    run = run_from_script(script)
    writer, reader = 0, 1
    orphan_tag = Tag(run.next_sn + 10, writer)
    later_tag = Tag(run.next_sn + 5, writer)
    orphan_op = _op(writer)
    run.recorder.record_invoke(orphan_op, writer, "write", "orphan-value")
    run.recorder.record_tag(orphan_op, orphan_tag)
    run.recorder.record_crash(writer)
    run.recorder.record_recovery(writer)
    later_op = _op(writer)
    run.recorder.record_invoke(later_op, writer, "write", "later-value")
    run.recorder.record_reply(later_op, writer, "write")
    run.recorder.record_tag(later_op, later_tag)
    run.raw_read(reader, "orphan-value", orphan_tag)

    white_persistent = check_tagged_history(
        run.history, run.recorder, "persistent"
    )
    assert not white_persistent.ok
    assert any("orphan value" in v for v in white_persistent.violations)
    white_transient = check_tagged_history(
        run.history, run.recorder, "transient"
    )
    assert white_transient.ok, white_transient.violations
    assert not check_persistent_atomicity(run.history).ok
    assert check_transient_atomicity(run.history).ok
