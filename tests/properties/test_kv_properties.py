"""Property-based tests of the sharded KV store.

Two layers of randomized assurance:

* a **stateful sequential** test: Hypothesis drives an arbitrary
  sequence of write/read/crash/recover commands against the store and
  a model dict.  With one sequential client, per-key atomicity
  collapses to "a read returns the model's value", checked exactly --
  through any interleaving of crashes and recoveries that keeps a
  majority up;
* a **concurrent randomized** test: a zipfian closed-loop workload
  with a random crash/recovery schedule running underneath, judged
  afterwards by partitioning the history per key and running the
  paper's atomicity checkers on every projection (the satellite
  guarantee of the whole KV layer).
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.config import ClusterConfig, NetworkConfig
from repro.kv import KVCluster
from repro.sim.failures import RandomCrashPlan
from repro.workloads.kv import run_kv_closed_loop

NUM_PROCESSES = 3
KEYS = ("alpha", "beta", "gamma", "delta")

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# -- stateful sequential test ------------------------------------------------

#: One command of the sequential driver.
commands = st.one_of(
    st.tuples(
        st.just("write"),
        st.sampled_from(KEYS),
        st.integers(min_value=0, max_value=2),  # coordinator preference
    ),
    st.tuples(st.just("read"), st.sampled_from(KEYS), st.integers(0, 2)),
    st.tuples(st.just("crash"), st.just(""), st.integers(0, 2)),
    st.tuples(st.just("recover"), st.just(""), st.integers(0, 2)),
)


@SLOW
@given(
    script=st.lists(commands, min_size=1, max_size=25),
    num_shards=st.sampled_from([1, 2, 4]),
    batch_window=st.sampled_from([0.0, 2e-5]),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_sequential_commands_match_model(script, num_shards, batch_window, seed):
    kv = KVCluster(
        protocol="persistent",
        num_processes=NUM_PROCESSES,
        num_shards=num_shards,
        batch_window=batch_window,
        seed=seed,
    )
    kv.start()
    model = {}
    crashed = set()
    counter = 0
    majority = NUM_PROCESSES // 2 + 1

    def live_pid(preferred):
        live = [p for p in range(NUM_PROCESSES) if p not in crashed]
        return live[preferred % len(live)]

    for kind, key, pid in script:
        if kind == "crash":
            # Keep a majority up so operations terminate.
            if pid not in crashed and len(crashed) + 1 <= NUM_PROCESSES - majority:
                kv.crash(pid)
                crashed.add(pid)
        elif kind == "recover":
            if pid in crashed:
                kv.recover(pid, wait=True, timeout=10.0)
                crashed.discard(pid)
        elif kind == "write":
            counter += 1
            value = f"{key}={counter}"
            kv.write_sync(key, value, pid=live_pid(pid), timeout=30.0)
            model[key] = value
        else:
            result = kv.read_sync(key, pid=live_pid(pid), timeout=30.0)
            assert result == model.get(key), (
                f"read of {key!r} returned {result!r}, model says "
                f"{model.get(key)!r}"
            )

    # The run as a whole must also pass the per-key checkers.
    verdict = kv.check_atomicity()
    assert verdict.ok, verdict.failures


# -- concurrent randomized test ----------------------------------------------


@SLOW
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_shards=st.sampled_from([1, 4]),
    batch_window=st.sampled_from([0.0, 5e-5]),
    read_fraction=st.sampled_from([0.3, 0.7]),
    crashes=st.booleans(),
)
def test_concurrent_zipfian_runs_are_per_key_atomic(
    seed, num_shards, batch_window, read_fraction, crashes
):
    config = ClusterConfig(
        num_processes=NUM_PROCESSES,
        network=NetworkConfig(drop_probability=0.01),
        retransmit_interval=1e-3,
        seed=seed,
    )
    kv = KVCluster(
        protocol="persistent",
        num_shards=num_shards,
        batch_window=batch_window,
        config=config,
    )
    kv.start(timeout=5.0)
    if crashes:
        plan = RandomCrashPlan(
            num_processes=NUM_PROCESSES,
            horizon=0.05,
            seed=seed + 1,
            crash_rate=0.4,
            mean_downtime=0.01,
        )
        kv.install_schedule(plan.generate())
    report = run_kv_closed_loop(
        kv,
        num_clients=6,
        operations_per_client=4,
        read_fraction=read_fraction,
        num_keys=8,
        zipf_s=0.99,
        seed=seed,
        timeout=240.0,
    )
    assert report.completed + report.aborted + report.unissued == 24
    assert report.completed > 0
    verdict = kv.check_atomicity()
    assert verdict.ok, verdict.failures
    for history in kv.per_key_histories().values():
        history.assert_well_formed()
