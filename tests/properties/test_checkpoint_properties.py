"""Property-based tests for the checkpoint/compaction layer.

The safety claim the two-phase checkpoint discipline must uphold: a
crash landed at *any* point of the checkpoint lifecycle -- before the
tentative store, between the tentative and permanent phases, after the
commit, or anywhere else in a random schedule -- never costs the
cluster atomicity.  Either the previous permanent snapshot plus the
intact log suffix restores the process, or the new snapshot does; a
torn checkpoint is indistinguishable from no checkpoint.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster import SimCluster
from repro.common.config import ClusterConfig, NetworkConfig
from repro.history.register_checker import check_tagged_history
from repro.sim import tracing
from repro.sim.failures import RandomCrashPlan
from repro.workloads.generators import run_closed_loop

CHECKPOINT_INTERVAL = 8e-4

#: Every observable point of the two-phase lifecycle a crash can land
#: on (the trigger injector crashes synchronously on the trace event).
CRASH_POINTS = (
    tracing.CKPT_BEGIN,
    tracing.CKPT_TENTATIVE,
    tracing.CKPT_COMMIT,
)


def checkpointing_cluster(seed: int) -> SimCluster:
    config = ClusterConfig(
        num_processes=3,
        network=NetworkConfig(drop_probability=0.05),
        retransmit_interval=1e-3,
        seed=seed,
    )
    cluster = SimCluster(
        protocol="persistent",
        config=config,
        capture_trace=False,
        checkpoint_interval=CHECKPOINT_INTERVAL,
        recovery_scan=True,
    )
    cluster.start(timeout=5.0)
    return cluster


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    point=st.sampled_from(CRASH_POINTS),
    victim=st.integers(0, 2),
    count=st.integers(1, 3),
)
def test_crash_at_any_checkpoint_phase_keeps_history_atomic(
    seed, point, victim, count
):
    cluster = checkpointing_cluster(seed)

    def matches(event, point=point, victim=victim):
        return event.kind == point and event.pid == victim

    cluster.injector.crash_when(matches, victim, count=count)
    cluster.injector.recover_when(matches, victim, count=count, delay=4e-3)
    run_closed_loop(
        cluster,
        operations_per_client=6,
        read_fraction=0.5,
        seed=seed,
        timeout=120.0,
    )
    white = check_tagged_history(cluster.history, cluster.recorder, "persistent")
    assert white.ok, cluster.history.format()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_random_crash_schedules_with_checkpointing_stay_atomic(seed):
    # Crash points chosen by a seeded random plan instead of trace
    # triggers: crashes land mid-scan, mid-replay, between checkpoint
    # ticks -- anywhere in real schedules.
    cluster = checkpointing_cluster(seed)
    plan = RandomCrashPlan(
        num_processes=3,
        horizon=0.25,
        seed=seed + 1,
        crash_rate=0.5,
        mean_downtime=0.02,
    )
    cluster.install_schedule(plan.generate())
    run_closed_loop(
        cluster,
        operations_per_client=4,
        read_fraction=0.5,
        seed=seed,
        timeout=120.0,
    )
    white = check_tagged_history(cluster.history, cluster.recorder, "persistent")
    assert white.ok, cluster.history.format()
