"""Property-based end-to-end tests: random workloads and schedules.

The heavyweight guarantee of the whole library: for *any* seeded random
workload, crash schedule and lossy network within the model's
assumptions, the algorithms' histories satisfy their promised criterion
and the measured causal-log counts respect the paper's bounds.
"""

from hypothesis import given, settings, strategies as st

from repro.common.config import ClusterConfig, NetworkConfig
from repro.cluster import SimCluster
from repro.history.register_checker import check_tagged_history
from repro.sim.failures import RandomCrashPlan
from repro.workloads.generators import run_closed_loop

BOUNDS = {
    "crash-stop": (0, 0),
    "transient": (1, 1),
    "persistent": (2, 1),
    "persistent-fastread": (2, 1),
}


def run_random_cluster(
    protocol,
    seed,
    num_processes=3,
    crashes=False,
    drop=0.0,
    ops_per_client=4,
    read_fraction=0.5,
):
    config = ClusterConfig(
        num_processes=num_processes,
        network=NetworkConfig(drop_probability=drop),
        retransmit_interval=1e-3,
        seed=seed,
    )
    cluster = SimCluster(protocol=protocol, config=config, capture_trace=False)
    cluster.start(timeout=5.0)
    if crashes:
        plan = RandomCrashPlan(
            num_processes=num_processes,
            horizon=0.25,
            seed=seed + 1,
            crash_rate=0.5,
            mean_downtime=0.02,
        )
        cluster.install_schedule(plan.generate())
    run_closed_loop(
        cluster,
        operations_per_client=ops_per_client,
        read_fraction=read_fraction,
        seed=seed,
        timeout=120.0,
    )
    return cluster


@settings(max_examples=15, deadline=None)
@given(
    protocol=st.sampled_from(["crash-stop", "transient", "persistent"]),
    seed=st.integers(0, 10_000),
    read_fraction=st.sampled_from([0.0, 0.3, 0.7, 1.0]),
)
def test_failure_free_workloads_are_atomic(protocol, seed, read_fraction):
    cluster = run_random_cluster(protocol, seed, read_fraction=read_fraction)
    assert cluster.check_atomicity().ok


@settings(max_examples=15, deadline=None)
@given(
    protocol=st.sampled_from(["transient", "persistent", "persistent-fastread"]),
    seed=st.integers(0, 10_000),
)
def test_crashy_workloads_satisfy_the_promised_criterion(protocol, seed):
    cluster = run_random_cluster(protocol, seed, crashes=True)
    verdict = cluster.check_atomicity()
    assert verdict.ok, cluster.history.format()


@settings(max_examples=10, deadline=None)
@given(
    protocol=st.sampled_from(["transient", "persistent"]),
    seed=st.integers(0, 10_000),
)
def test_lossy_crashy_workloads_stay_atomic(protocol, seed):
    cluster = run_random_cluster(protocol, seed, crashes=True, drop=0.1)
    assert cluster.check_atomicity().ok


@settings(max_examples=15, deadline=None)
@given(
    protocol=st.sampled_from(
        ["crash-stop", "transient", "persistent", "persistent-fastread"]
    ),
    seed=st.integers(0, 10_000),
)
def test_causal_log_bounds_hold_under_randomness(protocol, seed):
    cluster = run_random_cluster(
        protocol, seed, crashes=protocol != "crash-stop", drop=0.05
    )
    write_bound, read_bound = BOUNDS[protocol]
    counts = cluster.causal_log_counts()
    assert all(count <= write_bound for count in counts["write"])
    assert all(count <= read_bound for count in counts["read"])


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_white_box_checker_passes_on_larger_runs(seed):
    cluster = run_random_cluster(
        "persistent", seed, num_processes=5, crashes=True, ops_per_client=8
    )
    result = check_tagged_history(cluster.history, cluster.recorder, "persistent")
    assert result.ok, result.violations


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_completed_writes_survive_all_subsequent_failures(seed):
    # Durability: after a write completes, crash ALL processes,
    # recover them, and the value (or a newer one) must be returned.
    cluster = run_random_cluster("persistent", seed, ops_per_client=2)
    handle = cluster.write_sync(0, "durability-probe")
    for pid in range(cluster.config.num_processes):
        if not cluster.node(pid).crashed:
            cluster.crash(pid)
    for pid in range(cluster.config.num_processes):
        cluster.recover(pid)
    cluster.run_until(lambda: all(n.ready for n in cluster.nodes), timeout=5.0)
    assert cluster.read_sync(1) == "durability-probe"
