"""Unit tests for pending-reply placement bounds (completion rules)."""

import math

import pytest

from repro.common.ids import OperationId
from repro.history.completion import (
    PERSISTENT,
    TRANSIENT,
    completion_windows,
    pending_reply_bound,
)
from repro.history.events import Crash, Invoke, Recover, Reply
from repro.history.history import History


def op(pid, seq):
    return OperationId(pid=pid, seq=seq)


def interrupted_write_history():
    """W(a) complete; W(b) pending after a crash; recover; W(c) complete."""
    return History(
        [
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="a"),
            Reply(time=1.0, pid=0, op=op(0, 1), kind="write"),
            Invoke(time=2.0, pid=0, op=op(0, 2), kind="write", value="b"),
            Crash(time=3.0, pid=0),
            Recover(time=4.0, pid=0),
            Invoke(time=5.0, pid=0, op=op(0, 3), kind="write", value="c"),
            Reply(time=6.0, pid=0, op=op(0, 3), kind="write"),
        ]
    )


class TestBounds:
    def test_persistent_bound_is_next_invocation(self):
        history = interrupted_write_history()
        pending = history.pending_operations()[0]
        bound = pending_reply_bound(history.events, pending, PERSISTENT)
        assert bound == 5.0  # index of W(c)'s invocation

    def test_transient_bound_is_next_write_reply(self):
        history = interrupted_write_history()
        pending = history.pending_operations()[0]
        bound = pending_reply_bound(history.events, pending, TRANSIENT)
        assert bound == 6.0  # index of W(c)'s reply

    def test_unbounded_when_process_never_acts_again(self):
        history = History(
            [
                Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="x"),
                Crash(time=1.0, pid=0),
            ]
        )
        pending = history.pending_operations()[0]
        assert pending_reply_bound(history.events, pending, PERSISTENT) == math.inf
        assert pending_reply_bound(history.events, pending, TRANSIENT) == math.inf

    def test_transient_ignores_intervening_reads(self):
        history = History(
            [
                Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="x"),
                Crash(time=1.0, pid=0),
                Recover(time=2.0, pid=0),
                Invoke(time=3.0, pid=0, op=op(0, 2), kind="read"),
                Reply(time=4.0, pid=0, op=op(0, 2), kind="read", result="x"),
            ]
        )
        pending = history.pending_operations()[0]
        # Persistent: bounded by the read's invocation (index 3).
        assert pending_reply_bound(history.events, pending, PERSISTENT) == 3.0
        # Transient: a read reply is not a write reply.
        assert pending_reply_bound(history.events, pending, TRANSIENT) == math.inf

    def test_other_processes_events_do_not_bound(self):
        history = History(
            [
                Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="x"),
                Crash(time=1.0, pid=0),
                Invoke(time=2.0, pid=1, op=op(1, 2), kind="write", value="y"),
                Reply(time=3.0, pid=1, op=op(1, 2), kind="write"),
            ]
        )
        pending = history.pending_operations()[0]
        assert pending_reply_bound(history.events, pending, PERSISTENT) == math.inf

    def test_unknown_criterion_rejected(self):
        history = interrupted_write_history()
        pending = history.pending_operations()[0]
        with pytest.raises(ValueError):
            pending_reply_bound(history.events, pending, "sequential")


class TestWindows:
    def test_yields_all_pending_operations(self):
        history = interrupted_write_history()
        windows = list(completion_windows(history, PERSISTENT))
        assert len(windows) == 1
        record, bound = windows[0]
        assert record.value == "b"
        assert bound == 5.0

    def test_complete_history_yields_nothing(self):
        history = History(
            [
                Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="a"),
                Reply(time=1.0, pid=0, op=op(0, 1), kind="write"),
            ]
        )
        assert list(completion_windows(history, TRANSIENT)) == []
