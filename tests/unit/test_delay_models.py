"""Unit tests for the network and storage latency models."""

import random

import pytest

from repro.common.config import NetworkConfig, StorageConfig
from repro.net.delay import DelayModel
from repro.storage.model import StorageLatencyModel


class TestDelayModel:
    def test_small_message_costs_base_delay(self):
        model = DelayModel(NetworkConfig(base_delay=1e-4, max_jitter=0.0))
        sample = model.sample(0, random.Random(0))
        assert sample.total == pytest.approx(1e-4)

    def test_transmission_grows_linearly_with_size(self):
        model = DelayModel(NetworkConfig(bandwidth=1e6, max_jitter=0.0))
        small = model.sample(1000, random.Random(0))
        large = model.sample(2000, random.Random(0))
        assert large.transmission == pytest.approx(2 * small.transmission)
        assert small.transmission == pytest.approx(1e-3)

    def test_jitter_bounded_by_configuration(self):
        model = DelayModel(NetworkConfig(max_jitter=5e-5))
        rng = random.Random(1)
        for _ in range(100):
            assert 0.0 <= model.sample(10, rng).jitter <= 5e-5

    def test_mean_delay_accounts_for_half_jitter(self):
        config = NetworkConfig(base_delay=1e-4, max_jitter=2e-5, bandwidth=1e9)
        model = DelayModel(config)
        assert model.mean_delay(0) == pytest.approx(1e-4 + 1e-5)

    def test_rejects_negative_size(self):
        model = DelayModel(NetworkConfig())
        with pytest.raises(ValueError):
            model.sample(-1, random.Random(0))

    def test_rejects_oversized_payload(self):
        model = DelayModel(NetworkConfig(max_payload=1024))
        with pytest.raises(ValueError):
            model.sample(2048, random.Random(0))

    def test_drop_decisions_match_probability(self):
        model = DelayModel(NetworkConfig(drop_probability=0.3))
        rng = random.Random(7)
        drops = sum(model.should_drop(rng) for _ in range(10_000))
        assert 0.25 < drops / 10_000 < 0.35

    def test_no_drops_when_probability_zero(self):
        model = DelayModel(NetworkConfig(drop_probability=0.0))
        rng = random.Random(7)
        assert not any(model.should_drop(rng) for _ in range(100))

    def test_duplicates_follow_probability(self):
        model = DelayModel(NetworkConfig(duplicate_probability=0.2))
        rng = random.Random(3)
        dups = sum(model.should_duplicate(rng) for _ in range(10_000))
        assert 0.15 < dups / 10_000 < 0.25


class TestStorageLatencyModel:
    def test_base_latency_for_tiny_log(self):
        model = StorageLatencyModel(StorageConfig(base_latency=2e-4, max_jitter=0.0))
        assert model.sample(1, random.Random(0)) == pytest.approx(
            2e-4 + 1 / StorageConfig().bandwidth
        )

    def test_latency_linear_in_size(self):
        model = StorageLatencyModel(
            StorageConfig(base_latency=0.0, bandwidth=1e6, max_jitter=0.0)
        )
        assert model.sample(5000, random.Random(0)) == pytest.approx(5e-3)

    def test_mean_latency(self):
        config = StorageConfig(base_latency=1e-4, bandwidth=1e6, max_jitter=4e-5)
        model = StorageLatencyModel(config)
        assert model.mean_latency(1000) == pytest.approx(1e-4 + 1e-3 + 2e-5)

    def test_rejects_negative_size(self):
        model = StorageLatencyModel(StorageConfig())
        with pytest.raises(ValueError):
            model.sample(-5, random.Random(0))
