"""Unit tests for process and operation identifiers."""

import threading

from repro.common.ids import OperationId, make_operation_id


class TestOperationIds:
    def test_ids_are_unique(self):
        ids = {make_operation_id(0) for _ in range(100)}
        assert len(ids) == 100

    def test_id_carries_invoking_pid(self):
        assert make_operation_id(3).pid == 3

    def test_ids_are_ordered(self):
        first = make_operation_id(1)
        second = make_operation_id(1)
        assert first < second

    def test_equality_is_structural(self):
        assert OperationId(pid=1, seq=5) == OperationId(pid=1, seq=5)
        assert OperationId(pid=1, seq=5) != OperationId(pid=2, seq=5)

    def test_str_names_process_and_sequence(self):
        assert str(OperationId(pid=2, seq=9)) == "op(p2#9)"

    def test_concurrent_minting_stays_unique(self):
        results = []
        lock = threading.Lock()

        def mint():
            local = [make_operation_id(0) for _ in range(200)]
            with lock:
                results.extend(local)

        threads = [threading.Thread(target=mint) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(results)) == len(results)
