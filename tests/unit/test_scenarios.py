"""Unit: scenario specs, the fault-schedule primitives, the registry.

Each fault primitive gets a focused test arming it on a small cluster
and observing exactly the state change it declares -- crashes and
recoveries at their instants, links blocked then healed, bursts
dropping deterministically, slow links stretching deliveries, triggers
firing synchronously on their trace event.
"""

import pytest

from repro.cluster import SimCluster
from repro.common.errors import ConfigurationError
from repro.scenarios import (
    SCENARIOS,
    CrashAt,
    CrashOnTrace,
    Downtime,
    LossBurst,
    PartitionWindow,
    RollingRestarts,
    Scenario,
    SlowLinks,
    WorkloadPhase,
    get_scenario,
    list_scenarios,
)
from repro.scenarios.faults import victims_of
from repro.scenarios.spec import STORE_KV


def make_cluster(num_processes=3, protocol="persistent", **kwargs):
    cluster = SimCluster(
        protocol=protocol, num_processes=num_processes, seed=9, **kwargs
    )
    cluster.start()
    return cluster


# -- fault primitives --------------------------------------------------------


def test_downtime_crashes_then_recovers():
    cluster = make_cluster()
    Downtime(pid=1, start=1e-3, end=4e-3).arm(cluster)
    cluster.run(duration=2e-3)
    assert cluster.node(1).crashed
    cluster.run(duration=4e-3)
    assert not cluster.node(1).crashed


def test_downtime_validates_window():
    with pytest.raises(ConfigurationError):
        Downtime(pid=0, start=2.0, end=1.0)


def test_crash_at_is_permanent():
    cluster = make_cluster()
    CrashAt(pid=2, time=1e-3).arm(cluster)
    cluster.run(duration=10e-3)
    assert cluster.node(2).crashed


def test_rolling_restarts_staggers_victims():
    cluster = make_cluster()
    fault = RollingRestarts(start=1e-3, interval=4e-3, downtime=2e-3)
    fault.arm(cluster)
    crashed_during_wave = set()
    # Sample between actions: at most one process is down at a time
    # because interval > downtime.
    for _ in range(40):
        cluster.run(duration=0.5e-3)
        down = set(cluster.crashed_processes())
        assert len(down) <= 1
        crashed_during_wave |= down
    assert crashed_during_wave == {0, 1, 2}
    assert not cluster.crashed_processes()


def test_rolling_restarts_victims_sentinel():
    assert victims_of([RollingRestarts()], 3) == {0, 1, 2}
    assert victims_of([RollingRestarts(pids=(1,))], 3) == {1}
    assert victims_of([Downtime(pid=2, start=0, end=1)], 5) == {2}
    assert victims_of([PartitionWindow((0,), (1,), 0.0, 1.0)], 3) == set()


def test_permanent_victims():
    recovered = [
        Downtime(pid=1, start=0, end=1),
        RollingRestarts(),
        CrashOnTrace(kind="send", pid=2, recover_after=1e-3),
    ]
    assert victims_of(recovered, 3, permanent_only=True) == set()
    doomed = [CrashAt(pid=0, time=1e-3), CrashOnTrace(kind="send", pid=2)]
    assert victims_of(doomed, 3, permanent_only=True) == {0, 2}


def test_partition_window_blocks_then_heals():
    cluster = make_cluster()
    PartitionWindow(group_a=(2,), group_b=(0, 1), start=1e-3, end=3e-3).arm(cluster)
    cluster.run(duration=2e-3)
    assert cluster.network.is_blocked(2, 0)
    assert cluster.network.is_blocked(0, 2)
    assert not cluster.network.is_blocked(0, 1)
    cluster.run(duration=2e-3)
    assert not cluster.network.is_blocked(2, 0)
    assert not cluster.network.is_blocked(0, 2)


def test_overlapping_partition_windows_compose():
    cluster = make_cluster()
    PartitionWindow(group_a=(2,), group_b=(0, 1), start=1e-3, end=5e-3).arm(cluster)
    PartitionWindow(group_a=(2,), group_b=(0, 1), start=3e-3, end=8e-3).arm(cluster)
    cluster.run(duration=6e-3)  # first window healed, second still open
    assert cluster.network.is_blocked(2, 0)
    cluster.run(duration=3e-3)  # second window healed too
    assert not cluster.network.is_blocked(2, 0)


def test_overlapping_slow_link_windows_compose():
    cluster = make_cluster()
    SlowLinks(start=1e-3, end=5e-3, extra_delay=1e-3).arm(cluster)
    SlowLinks(start=3e-3, end=8e-3, extra_delay=2e-3).arm(cluster)
    cluster.run(duration=4e-3)  # both windows open: penalties add
    assert cluster.network.link_penalty(0, 1) == pytest.approx(3e-3)
    cluster.run(duration=2e-3)  # first restored, second still open
    assert cluster.network.link_penalty(0, 1) == pytest.approx(2e-3)
    cluster.run(duration=4e-3)
    assert cluster.network.link_penalty(0, 1) == 0.0


def test_partition_window_validates_groups():
    with pytest.raises(ConfigurationError):
        PartitionWindow(group_a=(0,), group_b=(0, 1), start=0.0, end=1.0)
    with pytest.raises(ConfigurationError):
        PartitionWindow(group_a=(), group_b=(1,), start=0.0, end=1.0)


def test_loss_burst_drops_deterministically():
    def dropped_after_burst(seed):
        cluster = make_cluster()
        LossBurst(start=0.0, end=5e-3, probability=0.5, seed=seed).arm(cluster)
        cluster.write_sync(0, "v")
        cluster.run(duration=10e-3)
        return cluster.network.messages_dropped

    assert dropped_after_burst(3) > 0
    assert dropped_after_burst(3) == dropped_after_burst(3)


def test_loss_burst_filter_is_removed_after_window():
    cluster = make_cluster()
    LossBurst(start=0.0, end=2e-3, probability=1.0, seed=1).arm(cluster)
    handle = cluster.write(0, "survivor")
    cluster.run(duration=1e-3)
    before = cluster.network.messages_dropped
    assert before > 0  # the write's rounds were eaten inside the window
    assert not handle.settled
    # Once the window closes the filter is removed: retransmission
    # carries the write through and nothing further drops.
    cluster.run_until(lambda: handle.settled, timeout=2.0)
    assert handle.done
    assert cluster.network.messages_dropped == before


def test_slow_links_applies_and_clears_penalty():
    cluster = make_cluster()
    SlowLinks(start=1e-3, end=4e-3, extra_delay=2e-3).arm(cluster)
    cluster.run(duration=2e-3)
    assert cluster.network.link_penalty(0, 1) == 2e-3
    assert cluster.network.link_penalty(1, 0) == 2e-3
    cluster.run(duration=3e-3)
    assert cluster.network.link_penalty(0, 1) == 0.0


def test_slow_links_stretches_write_latency():
    def write_latency(arm):
        cluster = make_cluster()
        if arm:
            SlowLinks(start=0.0, end=1.0, extra_delay=1e-3).arm(cluster)
            cluster.run(duration=1e-4)  # let the window open
        handle = cluster.write_sync(0, "v")
        return handle.latency

    assert write_latency(True) > write_latency(False) + 1e-3


def test_network_slow_link_validation():
    cluster = make_cluster()
    with pytest.raises(ValueError):
        cluster.network.slow_link(0, 1, -1.0)
    cluster.network.slow_link(0, 1, 5e-4)
    assert cluster.network.link_penalty(0, 1) == 5e-4
    cluster.network.reset_link_speeds()
    assert cluster.network.link_penalty(0, 1) == 0.0


def test_unslow_link_leaves_no_float_residue():
    # Mixed-magnitude add/remove pairs must return the link to exactly
    # zero (float dust below a picosecond is snapped away).
    cluster = make_cluster()
    cluster.network.slow_link(0, 1, 0.1)
    cluster.network.slow_link(0, 1, 0.2)
    cluster.network.unslow_link(0, 1, 0.1)
    cluster.network.unslow_link(0, 1, 0.2)
    assert cluster.network.link_penalty(0, 1) == 0.0


def test_crash_on_trace_fires_synchronously_and_recovers():
    cluster = make_cluster()
    CrashOnTrace(
        kind="store_begin", pid=0, source_pid=0, recover_after=2e-3
    ).arm(cluster)
    # The write's first log at p0 triggers the crash, aborting the op.
    handle = cluster.write(0, "doomed")
    cluster.run_until(lambda: handle.settled, timeout=1.0)
    assert handle.aborted
    assert cluster.node(0).crashed
    cluster.run(duration=5e-3)
    assert not cluster.node(0).crashed


def test_crash_on_trace_validates():
    with pytest.raises(ConfigurationError):
        CrashOnTrace(kind="send", pid=0, count=0)
    with pytest.raises(ConfigurationError):
        CrashOnTrace(kind="send", pid=0, recover_after=0.0)


# -- spec --------------------------------------------------------------------


def test_split_ops_is_exact_and_weighted():
    scenario = Scenario(
        name="t",
        description="t",
        phases=(
            WorkloadPhase(name="a", weight=1.0),
            WorkloadPhase(name="b", weight=2.0),
            WorkloadPhase(name="c", weight=1.0),
        ),
    )
    shares = scenario.split_ops(100)
    assert sum(shares) == 100
    assert shares[1] > shares[0]
    assert all(share >= 1 for share in shares)
    # Tiny budgets still give every phase work.
    assert sum(scenario.split_ops(3)) == 3


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        Scenario(name="x", description="x", phases=())
    with pytest.raises(ConfigurationError):
        Scenario(
            name="x", description="x", store="blob",
            phases=(WorkloadPhase(name="p"),),
        )
    with pytest.raises(ConfigurationError):
        Scenario(
            name="x", description="x", verify="sometimes",
            phases=(WorkloadPhase(name="p"),),
        )
    with pytest.raises(ConfigurationError):
        WorkloadPhase(name="p", read_fraction=1.5)
    with pytest.raises(ConfigurationError):
        WorkloadPhase(name="p", weight=0.0)


# -- registry ----------------------------------------------------------------


def test_library_has_the_advertised_scenarios():
    names = {scenario.name for scenario in list_scenarios()}
    assert len(names) >= 8
    for required in (
        "steady-state",
        "rolling-crash",
        "crash-during-write",
        "partition-heal",
        "recovery-storm",
        "crash-mid-checkpoint",
        "checkpointed-recovery-storm",
        "zipfian-contention",
        "trace-capture",
        "soak-100k",
    ):
        assert required in names
    assert get_scenario("soak-100k").default_ops == 100_000
    kv_scenarios = [s for s in list_scenarios() if s.store == STORE_KV]
    assert kv_scenarios, "the library should cover the KV store"


def test_get_scenario_unknown_name():
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        get_scenario("does-not-exist")


def test_registry_names_match_keys():
    for name, scenario in SCENARIOS.items():
        assert scenario.name == name


def test_scenario_list_plans_fleet_sweeps():
    # The --list table must carry enough to plan a fleet sweep without
    # reading library.py: quick budgets and per-protocol capability
    # notes for every scenario.
    from repro.scenarios.soak import (
        format_scenario_list,
        quick_ops_for,
        scenario_notes,
    )

    listing = format_scenario_list()
    assert "quick ops" in listing
    assert "notes" in listing
    assert "crash faults dropped on crash-stop" in listing
    assert "kv store (8 shards)" in listing
    assert "captures full trace" in listing
    assert "repro fleet" in listing
    for scenario in list_scenarios():
        assert str(quick_ops_for(scenario)) in listing
    # Crash-carrying scenarios are flagged; fault-free ones are not.
    assert "crash" in scenario_notes(get_scenario("rolling-crash"))
    assert "crash" not in scenario_notes(get_scenario("steady-state"))
    assert "crash" not in scenario_notes(get_scenario("loss-burst"))
