"""Unit tests for the checkpoint/compaction layer.

Covers the pure helpers of :mod:`repro.storage.checkpoint`, the
snapshot-aware :class:`~repro.protocol.base.StableView`, the simulated
node's two-phase checkpoint state machine (commit, truncation, torn
crash, scan-delayed recovery, the recovery fast path), and the storage
fault verbs the scenarios arm.
"""

import pytest

from repro.cluster import SimCluster
from repro.protocol.base import Checkpoint, StableView
from repro.scenarios.faults import TornStore
from repro.sim import tracing
from repro.storage import checkpoint as ckpt


def started_cluster(n=3, **kwargs):
    cluster = SimCluster(protocol="persistent", num_processes=n, **kwargs)
    cluster.start()
    return cluster


def run_intervals(cluster, interval, count):
    """Drive the kernel ``count`` checkpoint intervals past now."""
    cluster.kernel.run(until=cluster.kernel.now + count * interval)


INTERVAL = 1e-3


# -- helpers -----------------------------------------------------------------


class TestCheckpointHelpers:
    def test_snapshot_record_round_trip(self):
        record = ckpt.build_snapshot_record(
            3, {"b": (2,), "a": (1,)}, {"a": 10, "b": 20}
        )
        seq, records, sizes = ckpt.load_snapshot(record)
        assert seq == 3
        assert records == {"a": (1,), "b": (2,)}
        assert sizes == {"a": 10, "b": 20}
        # Entries are sorted so equal snapshots serialize identically.
        assert record[1][0][0] == "a"

    def test_load_missing_snapshot(self):
        assert ckpt.load_snapshot(None) == (0, {}, {})

    def test_snapshot_seq(self):
        record = ckpt.build_snapshot_record(7, {}, {})
        assert ckpt.snapshot_seq(record) == 7

    def test_snapshot_store_size_accounts_entries(self):
        empty = ckpt.snapshot_store_size([])
        assert empty == ckpt.SNAPSHOT_OVERHEAD
        two = ckpt.snapshot_store_size([10, 20])
        assert two == ckpt.SNAPSHOT_OVERHEAD + 30 + 2 * ckpt.ENTRY_OVERHEAD

    def test_capturable_keys_filters_by_idle_prefix(self):
        keys = [
            "writing", "written", "reg/writing", "reg/written",
            ckpt.TENTATIVE_KEY, ckpt.PERMANENT_KEY,
        ]
        # Only the default (unprefixed) slot is idle.
        assert ckpt.capturable_keys(keys, [""]) == ["writing", "written"]
        # Only the named slot is idle.
        assert ckpt.capturable_keys(keys, ["reg/"]) == [
            "reg/writing", "reg/written",
        ]
        # Checkpoint bookkeeping keys are never captured.
        assert ckpt.capturable_keys(keys, ["", "reg/"]) == [
            "writing", "written", "reg/writing", "reg/written",
        ]

    def test_is_checkpoint_key(self):
        assert ckpt.is_checkpoint_key(ckpt.TENTATIVE_KEY)
        assert ckpt.is_checkpoint_key(ckpt.PERMANENT_KEY)
        assert not ckpt.is_checkpoint_key("writing")


class TestStableViewSnapshot:
    def test_retrieve_falls_back_to_snapshot(self):
        view = StableView({"live": (1,)}, {"snap": (2,), "live": (9,)})
        assert view.retrieve("live") == (1,)  # live record wins
        assert view.retrieve("snap") == (2,)
        assert view.retrieve("missing") is None

    def test_checkpointed_means_snapshot_only(self):
        view = StableView({"live": (1,)}, {"snap": (2,), "live": (9,)})
        assert view.checkpointed("snap")
        assert not view.checkpointed("live")  # re-logged since capture
        assert not view.checkpointed("missing")

    def test_contains_and_keys_merge(self):
        view = StableView({"a": (1,)}, {"b": (2,)})
        assert "a" in view and "b" in view
        assert set(view.keys()) == {"a", "b"}

    def test_scoped_view_keeps_the_snapshot(self):
        view = StableView(
            {"reg/writing": (1,)}, {"reg/written": (2,)}
        ).scoped("reg/")
        assert view.retrieve("writing") == (1,)
        assert view.retrieve("written") == (2,)
        assert view.checkpointed("written")
        assert not view.checkpointed("writing")


# -- the simulated node's two-phase state machine ----------------------------


class TestSimNodeCheckpoint:
    def test_checkpoint_commits_and_truncates(self):
        cluster = started_cluster(checkpoint_interval=INTERVAL)
        cluster.write_sync(0, "durable")
        run_intervals(cluster, INTERVAL, 3)
        node = cluster.node(0)
        assert node.checkpoints_committed >= 1
        storage = node.storage
        # The captured log records were truncated into the snapshot...
        assert "written" not in storage.records
        assert "writing" not in storage.records
        assert storage.retrieve(ckpt.PERMANENT_KEY) is not None
        assert storage.retrieve(ckpt.TENTATIVE_KEY) is None
        # ...but the protocol still sees them through its StableView.
        view = node._stable_view
        assert view.retrieve("written") is not None
        assert view.checkpointed("written")
        # Compaction reset the log footprint to the live records.
        assert storage.compactions >= 1
        assert storage.log_records == len(storage.records)

    def test_unchanged_state_needs_no_new_checkpoint(self):
        cluster = started_cluster(checkpoint_interval=INTERVAL)
        cluster.write_sync(0, "once")
        run_intervals(cluster, INTERVAL, 3)
        node = cluster.node(0)
        committed = node.checkpoints_committed
        run_intervals(cluster, INTERVAL, 5)
        assert node.checkpoints_committed == committed

    def test_recovery_restores_from_snapshot(self):
        cluster = started_cluster(checkpoint_interval=INTERVAL)
        cluster.write_sync(0, "pre-crash")
        run_intervals(cluster, INTERVAL, 3)
        assert cluster.node(1).checkpoints_committed >= 1
        cluster.crash(1)
        cluster.recover(1, wait=True)
        node = cluster.node(1)
        assert node.recovery_times  # duration recorded
        assert cluster.read_sync(1) == "pre-crash"

    def test_post_snapshot_write_defeats_the_fast_path(self):
        cluster = started_cluster(checkpoint_interval=INTERVAL)
        cluster.write_sync(0, "old")
        run_intervals(cluster, INTERVAL, 3)
        cluster.write_sync(0, "new")  # re-logs writing past the snapshot
        cluster.crash(1)
        cluster.recover(1, wait=True)
        assert cluster.read_sync(1) == "new"

    def test_torn_checkpoint_recovers_from_previous_snapshot(self):
        cluster = started_cluster(checkpoint_interval=INTERVAL)
        TornStore(pid=1).arm(cluster)
        cluster.write_sync(0, "torn")
        run_intervals(cluster, INTERVAL, 3)
        node = cluster.node(1)
        assert node.crashed
        storage = node.storage
        # The crash landed between the phases: tentative durable,
        # permanent absent, nothing truncated.
        assert storage.retrieve(ckpt.TENTATIVE_KEY) is not None
        assert storage.retrieve(ckpt.PERMANENT_KEY) is None
        assert storage.retrieve("written") is not None
        cluster.recover(1, wait=True)
        # The stray tentative was ignored: no snapshot, log intact.
        assert node._ckpt_seq == 0
        assert cluster.read_sync(1) == "torn"
        # The next committed checkpoint supersedes the stray record.
        run_intervals(cluster, INTERVAL, 3)
        assert node.checkpoints_committed >= 1
        assert storage.retrieve(ckpt.TENTATIVE_KEY) is None

    def test_checkpoint_effect_triggers_one(self):
        cluster = started_cluster(checkpoint_interval=INTERVAL)
        cluster.write_sync(0, "scripted")
        node = cluster.node(0)
        node._execute([Checkpoint()], depth=0, op=None, slot=node._slots[None])
        assert node._ckpt_in_progress
        cluster.kernel.run(until=cluster.kernel.now + 5e-4)
        assert node.checkpoints_committed == 1

    def test_interval_must_be_positive(self):
        with pytest.raises(Exception):
            SimCluster(
                protocol="persistent", num_processes=3, checkpoint_interval=0.0
            )

    def test_checkpoint_trace_kinds_are_appended(self):
        # KIND_IDS are positional in the flight-recorder ring encoding;
        # the checkpoint kinds must extend, never reorder, the list.
        assert tracing.ALL_KINDS[-3:] == (
            tracing.CKPT_BEGIN, tracing.CKPT_TENTATIVE, tracing.CKPT_COMMIT,
        )


class TestScanDelayedRecovery:
    def test_recovery_scan_bills_the_log(self):
        plain = started_cluster(seed=9)
        scanned = started_cluster(seed=9, recovery_scan=True)
        for cluster in (plain, scanned):
            cluster.write_sync(0, "x")
            cluster.crash(1)
            cluster.recover(1, wait=True)
        assert scanned.node(1).recovery_times[-1] > plain.node(1).recovery_times[-1]

    def test_checkpointing_bounds_the_scan(self):
        def recovery_time(**kwargs):
            cluster = started_cluster(seed=4, recovery_scan=True, **kwargs)
            for i in range(20):
                cluster.write_sync(0, f"v{i}")
            run_intervals(cluster, INTERVAL, 3)
            cluster.crash(1)
            cluster.recover(1, wait=True)
            return cluster.node(1).recovery_times[-1]

        compacted = recovery_time(checkpoint_interval=INTERVAL)
        unbounded = recovery_time()
        assert compacted < unbounded
