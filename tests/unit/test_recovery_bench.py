"""Unit tests for the recovery-time SLO harness and its bench axis."""

import json

import pytest

from repro.experiments.bench import SCHEMA, load_bench_payload
from repro.experiments.recovery_bench import (
    format_recovery_bench,
    run_recovery_bench,
    run_recovery_point,
    write_recovery_file,
)


@pytest.fixture(scope="module")
def quick_report():
    return run_recovery_bench(quick=True)


class TestSweep:
    def test_quick_sweep_covers_both_arms(self, quick_report):
        assert {row.checkpointing for row in quick_report.rows} == {True, False}
        assert len(quick_report.arm(True)) == len(quick_report.arm(False)) == 2

    def test_checkpointing_flattens_recovery(self, quick_report):
        # The acceptance contrast: with checkpointing the footprint and
        # recovery time stay flat in ops; without, both grow.
        on, off = quick_report.growth(True), quick_report.growth(False)
        assert on == pytest.approx(1.0, rel=0.25)
        assert off > 1.25
        for ops in {row.ops for row in quick_report.rows}:
            with_ckpt = next(
                r for r in quick_report.rows
                if r.ops == ops and r.checkpointing
            )
            without = next(
                r for r in quick_report.rows
                if r.ops == ops and not r.checkpointing
            )
            assert with_ckpt.log_records < without.log_records
            assert with_ckpt.recovery_time_s < without.recovery_time_s
            assert with_ckpt.checkpoints_committed > 0
            assert without.checkpoints_committed == 0

    def test_points_are_deterministic(self):
        first = run_recovery_point(100, True, seed=3)
        second = run_recovery_point(100, True, seed=3)
        assert first.as_dict() == second.as_dict()


class TestRecoveryAxisSchema:
    def test_payload_shape(self, quick_report):
        payload = quick_report.payload()
        assert set(payload) == {
            "quick", "seed", "num_processes", "victim",
            "checkpoint_interval", "rows", "growth",
        }
        for row in payload["rows"]:
            assert set(row) == {
                "ops", "checkpointing", "log_records", "log_bytes",
                "recovery_time_s", "checkpoints_committed", "compactions",
            }
        assert set(payload["growth"]) == {"checkpointing", "no_checkpointing"}

    def test_write_merges_into_existing_engine_file(self, quick_report, tmp_path):
        # A v3 file from an older writer keeps its keys and is
        # re-stamped with the current schema.
        existing = {"schema": "repro-bench/3", "suite": "engine", "engine": {"x": 1}}
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps(existing))
        written = write_recovery_file(quick_report, str(tmp_path))
        payload = load_bench_payload(written)
        assert payload["schema"] == SCHEMA == "repro-bench/4"
        assert payload["engine"] == {"x": 1}
        assert payload["recovery"]["rows"]

    def test_write_creates_missing_engine_file(self, quick_report, tmp_path):
        written = write_recovery_file(quick_report, str(tmp_path))
        payload = load_bench_payload(written)
        assert payload["schema"] == SCHEMA
        assert payload["suite"] == "engine"
        assert payload["recovery"]["checkpoint_interval"] > 0

    def test_format_reports_the_contrast(self, quick_report):
        text = format_recovery_bench(quick_report)
        assert "checkpointing" in text
        assert "recovery-time growth" in text
        assert "ms" in text
