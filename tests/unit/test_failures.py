"""Unit tests for failure schedules and trigger-based injection."""

import pytest

from repro.common.errors import ConfigurationError
from repro.cluster import SimCluster
from repro.sim import tracing
from repro.sim.failures import (
    CrashSchedule,
    FailureAction,
    RandomCrashPlan,
    Trigger,
)


class TestCrashSchedule:
    def test_actions_sorted_by_time(self):
        schedule = CrashSchedule()
        schedule.recover(2.0, 0).crash(1.0, 0)
        assert [a.action for a in schedule.actions] == ["crash", "recover"]

    def test_downtime_builds_a_pair(self):
        schedule = CrashSchedule().downtime(3, 1.0, 2.0)
        assert len(schedule) == 2
        assert schedule.actions[0].pid == 3

    def test_downtime_validates_window(self):
        with pytest.raises(ConfigurationError):
            CrashSchedule().downtime(0, 2.0, 1.0)

    def test_action_validation(self):
        with pytest.raises(ConfigurationError):
            FailureAction(time=1.0, action="explode", pid=0)
        with pytest.raises(ConfigurationError):
            FailureAction(time=-1.0, action="crash", pid=0)

    def test_installed_schedule_executes(self):
        cluster = SimCluster(protocol="persistent", num_processes=3)
        cluster.start()
        cluster.install_schedule(CrashSchedule().downtime(2, 0.001, 0.002))
        cluster.run(duration=0.0015)
        assert cluster.node(2).crashed
        cluster.run_until(lambda: cluster.node(2).ready, timeout=0.1)
        assert cluster.node(2).ready

    def test_redundant_actions_are_skipped(self):
        cluster = SimCluster(protocol="persistent", num_processes=3)
        cluster.start()
        schedule = CrashSchedule().crash(0.001, 1).crash(0.002, 1)
        cluster.install_schedule(schedule)
        cluster.run(duration=0.01)  # second crash must not raise
        assert cluster.node(1).crashed


class TestTriggers:
    def test_crash_fires_on_matching_event(self):
        cluster = SimCluster(protocol="persistent", num_processes=3)
        cluster.start()
        cluster.injector.crash_when(
            lambda e: e.kind == tracing.STORE_END and e.pid == 1, pid=0
        )
        cluster.write(0, "x")
        cluster.run_until(lambda: cluster.node(0).crashed, timeout=1.0)
        assert cluster.node(0).crashed

    def test_count_skips_earlier_matches(self):
        cluster = SimCluster(protocol="persistent", num_processes=3)
        cluster.start()
        trigger = cluster.injector.crash_when(
            lambda e: e.kind == tracing.REPLY and e.pid == 0, pid=0, count=2
        )
        cluster.write_sync(0, "first")
        assert not trigger.fired
        cluster.write_sync(0, "second")
        assert trigger.fired
        assert cluster.node(0).crashed

    def test_trigger_fires_only_once(self):
        trigger = Trigger(predicate=lambda e: True, action="crash", pid=0)
        from repro.sim.tracing import TraceEvent

        event = TraceEvent(time=0.0, kind=tracing.SEND, pid=0)
        assert trigger.matches(event)
        trigger.fired = True
        assert not trigger.matches(event)

    def test_delayed_trigger_action(self):
        cluster = SimCluster(protocol="persistent", num_processes=3)
        cluster.start()
        cluster.injector.crash_when(
            lambda e: e.kind == tracing.REPLY, pid=1, delay=0.005
        )
        cluster.write_sync(0, "x")
        assert not cluster.node(1).crashed
        cluster.run(duration=0.006)
        assert cluster.node(1).crashed

    def test_triggers_fire_instant_precise_without_capture(self):
        # The injector subscribes to the trace lazily (so trigger-less
        # benchmark runs keep the emission fast path); installing a
        # trigger on a capture_trace=False cluster must still fire at
        # the exact instant of the matched event, before the simulator
        # processes anything else.
        cluster = SimCluster(
            protocol="persistent", num_processes=3, capture_trace=False
        )
        cluster.start()
        cluster.injector.crash_when(
            lambda e: e.kind == tracing.STORE_END and e.pid == 1, pid=0
        )
        store_end_times = []
        unsubscribe = cluster.trace.subscribe(
            lambda e: store_end_times.append(e.time) if e.pid == 1 else None,
            kinds=[tracing.STORE_END],
        )
        cluster.write(0, "x")
        cluster.run_until(lambda: cluster.node(0).crashed, timeout=1.0)
        assert cluster.node(0).crashed
        # The crash happened at the very instant of p1's store_end.
        assert cluster.trace.count(tracing.CRASH) == 1
        assert store_end_times and cluster.now == store_end_times[0]
        unsubscribe()

    def test_injector_without_triggers_keeps_fast_path(self):
        cluster = SimCluster(
            protocol="persistent", num_processes=3, capture_trace=False
        )
        cluster.start()
        # Nothing subscribed: every kind stays on the tick-only path.
        assert not cluster.trace.wants(tracing.SEND)
        cluster.injector.crash_when(lambda e: False, pid=0)
        # An installed trigger must see every kind (predicates are opaque).
        assert cluster.trace.wants(tracing.SEND)

    def test_recover_trigger(self):
        cluster = SimCluster(protocol="persistent", num_processes=3)
        cluster.start()
        cluster.crash(2)
        cluster.injector.recover_when(
            lambda e: e.kind == tracing.REPLY and e.pid == 0, pid=2
        )
        cluster.write_sync(0, "x")
        cluster.run_until(lambda: cluster.node(2).ready, timeout=1.0)
        assert cluster.node(2).ready


class TestRandomCrashPlan:
    def test_plans_are_deterministic_per_seed(self):
        plan_a = RandomCrashPlan(5, horizon=1.0, seed=3).generate()
        plan_b = RandomCrashPlan(5, horizon=1.0, seed=3).generate()
        assert [
            (a.time, a.action, a.pid) for a in plan_a.actions
        ] == [(a.time, a.action, a.pid) for a in plan_b.actions]

    def test_concurrent_downtime_bounded_to_minority(self):
        plan = RandomCrashPlan(5, horizon=1.0, seed=1, crash_rate=1.0).generate()
        # Sweep the windows: at no instant are 3+ of 5 processes down.
        events = sorted(
            (a.time, 1 if a.action == "crash" else -1) for a in plan.actions
        )
        down = 0
        for _, delta in events:
            down += delta
            assert down <= 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RandomCrashPlan(0, horizon=1.0)
        with pytest.raises(ConfigurationError):
            RandomCrashPlan(3, horizon=0.0)
        with pytest.raises(ConfigurationError):
            RandomCrashPlan(3, horizon=1.0, crash_rate=1.5)
